"""Shape-adaptive kernel dispatch: python or numpy per call site.

``BENCH_throughput.json`` showed the NumPy backend *losing* to pure
Python at the benchmark's shapes (0.68x on GIFilter at k=20): a
``k x |union terms|`` mat-vec only amortises NumPy's per-call overhead
(restriction dict lookups, array construction, dispatch) once the
member matrix has enough rows, and MCS cover sets at small k are far
below that point.  The crossover is a property of the *shape* of each
call — the number of member rows / cover documents actually involved —
not of the engine configuration, so the right policy is per call, not
per engine.

:class:`AdaptiveKernels` implements ``EngineConfig.backend = "auto"``:
every kernel op measures the shape it was handed and routes it to the
pure-Python backend below the crossover and to NumPy above it.  Both
backends are decision-equivalent (see the package docstring), so mixing
them per call preserves the engine's notification stream bit-for-bit
with respect to either pure backend's decisions.

Crossover thresholds default to values measured on the benchmark
machine (see EXPERIMENTS.md "Auto backend policy") and can be
overridden through ``REPRO_AUTO_MIN_ROWS`` / ``REPRO_AUTO_MIN_COVER``
or the constructor.  :func:`measure_crossover` re-derives them
empirically on the current host.
"""

from __future__ import annotations

import os
from typing import List, Sequence, Tuple

from repro.text.vectors import TermVector

#: Member-matrix rows below which the pure-Python loop wins (measured:
#: NumPy overtakes somewhere past ~30 rows on CPython 3.11 / x86_64;
#: the engine's k=20-30 result sets sit firmly on the Python side).
DEFAULT_MIN_ROWS = 32
#: Total cover documents below which the Python min-reduce wins.  MCS
#: covers hold at most k-1 documents each, so small-k blocks never pay
#: the NumPy packing cost.
DEFAULT_MIN_COVER = 32


def _env_threshold(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        return default


class _AdaptiveEntries:
    """Packed-entries holder: NumPy form built lazily, on first use by a
    call whose shape clears the crossover, then maintained incrementally
    alongside the entry list like the pure NumPy backend would."""

    __slots__ = ("inner",)

    def __init__(self) -> None:
        self.inner = None


class _AdaptiveCovers:
    """Packed-covers holder; built eagerly (covers are immutable between
    MCS rebuilds, so there is no maintenance to defer)."""

    __slots__ = ("inner",)

    def __init__(self, inner) -> None:
        self.inner = inner


class AdaptiveKernels:
    """Per-call python/numpy dispatch on measured operand shape."""

    name = "auto"

    def __init__(
        self,
        python_backend,
        numpy_backend,
        min_rows: int = None,
        min_cover: int = None,
    ) -> None:
        self._python = python_backend
        self._numpy = numpy_backend
        self.min_rows = (
            min_rows
            if min_rows is not None
            else _env_threshold("REPRO_AUTO_MIN_ROWS", DEFAULT_MIN_ROWS)
        )
        self.min_cover = (
            min_cover
            if min_cover is not None
            else _env_threshold("REPRO_AUTO_MIN_COVER", DEFAULT_MIN_COVER)
        )

    # -- result-set kernels ------------------------------------------------

    def pack_entries(self, entries: Sequence) -> _AdaptiveEntries:
        return _AdaptiveEntries()

    def packed_append(
        self, packed: _AdaptiveEntries, entries: Sequence
    ) -> _AdaptiveEntries:
        if packed.inner is not None:
            packed.inner = self._numpy.packed_append(packed.inner, entries)
        return packed

    def packed_replace(
        self, packed: _AdaptiveEntries, entries: Sequence
    ) -> _AdaptiveEntries:
        if packed.inner is not None:
            packed.inner = self._numpy.packed_replace(packed.inner, entries)
        return packed

    def _numpy_entries(self, packed: _AdaptiveEntries, entries: Sequence):
        if packed.inner is None:
            packed.inner = self._numpy.pack_entries(entries)
        return packed.inner

    def similarities_to(
        self, packed: _AdaptiveEntries, entries: Sequence, vector: TermVector
    ) -> List[float]:
        if len(entries) >= self.min_rows:
            return self._numpy.similarities_to(
                self._numpy_entries(packed, entries), entries, vector
            )
        return self._python.similarities_to(None, entries, vector)

    def tail_similarities(
        self, packed: _AdaptiveEntries, entries: Sequence, vector: TermVector
    ) -> List[float]:
        if len(entries) >= self.min_rows:
            return self._numpy.tail_similarities(
                self._numpy_entries(packed, entries), entries, vector
            )
        return self._python.tail_similarities(None, entries, vector)

    def tail_similarity_sum(
        self,
        packed: _AdaptiveEntries,
        entries: Sequence,
        vector: TermVector,
        skip_aw_resident: bool,
    ) -> Tuple[float, int]:
        if len(entries) >= self.min_rows:
            return self._numpy.tail_similarity_sum(
                self._numpy_entries(packed, entries),
                entries,
                vector,
                skip_aw_resident,
            )
        return self._python.tail_similarity_sum(
            None, entries, vector, skip_aw_resident
        )

    # -- group-bound kernels -----------------------------------------------

    def pack_covers(self, covers: Sequence) -> _AdaptiveCovers:
        members = sum(len(cover) for cover in covers)
        if members >= self.min_cover:
            return _AdaptiveCovers(self._numpy.pack_covers(covers))
        return _AdaptiveCovers(None)

    def cover_min_sim_sum(
        self, packed: _AdaptiveCovers, covers: Sequence, vector: TermVector
    ) -> float:
        if packed.inner is not None:
            return self._numpy.cover_min_sim_sum(
                packed.inner, covers, vector
            )
        return self._python.cover_min_sim_sum(None, covers, vector)


def measure_crossover(
    python_backend,
    numpy_backend,
    row_counts: Sequence[int] = (4, 8, 16, 32, 64, 128, 256),
    terms_per_doc: int = 8,
    repeats: int = 200,
) -> int:
    """Empirical row-count crossover on this host.

    Times ``similarities_to`` on synthetic result sets of growing size
    and returns the smallest row count at which NumPy beat Python (or
    the largest probed count plus one if it never did).  Used to
    recalibrate :data:`DEFAULT_MIN_ROWS` — never called on a hot path.
    """
    import time

    class _Entry:
        __slots__ = ("document",)

        def __init__(self, document) -> None:
            self.document = document

    class _Doc:
        __slots__ = ("vector",)

        def __init__(self, vector) -> None:
            self.vector = vector

    def _vector(seed: int) -> TermVector:
        return TermVector(
            {
                f"t{(seed * 7 + i * 13) % (terms_per_doc * 16)}": 1 + (seed + i) % 3
                for i in range(terms_per_doc)
            }
        )

    for rows in row_counts:
        entries = [_Entry(_Doc(_vector(i))) for i in range(rows)]
        probe = _vector(rows + 1)
        timings = {}
        for name, backend in (("python", python_backend), ("numpy", numpy_backend)):
            packed = backend.pack_entries(entries)
            backend.similarities_to(packed, entries, probe)  # warm-up
            start = time.perf_counter()
            for _ in range(repeats):
                backend.similarities_to(packed, entries, probe)
            timings[name] = time.perf_counter() - start
        if timings["numpy"] < timings["python"]:
            return rows
    return max(row_counts) + 1
