"""Shape-adaptive kernel dispatch: python or numpy, committed per batch.

``BENCH_throughput.json`` showed the NumPy backend *losing* to pure
Python at the benchmark's shapes (0.68x on GIFilter at k=20): a
``k x |union terms|`` mat-vec only amortises NumPy's per-call overhead
(restriction dict lookups, array construction, dispatch) once the
member matrix has enough rows, and MCS cover sets at small k are far
below that point.  The first ``auto`` policy re-checked the shape on
*every* kernel call, and the check itself (an extra bound-method frame
plus a ``len`` comparison per op) cost ~9% at small k — auto came in at
0.91x python (ISSUE 6 satellite 1).

The fix: decide once per micro-batch.  ``k`` is fixed for an engine and
the candidate-block population is frozen while a batch runs, so the
winning backend for every result-set op in the batch is known *before*
the batch starts.  :meth:`AdaptiveKernels.begin_batch` classifies the
batch with :func:`choose_batch_mode` and rebinds the hot ops as
*instance attributes* pointing straight at the chosen backend's bound
methods — zero per-call dispatch in the committed modes (the python
backend's ops ignore their ``packed`` argument by contract, so they
accept the adaptive holders unchanged).

Modes (see :func:`choose_batch_mode`):

``numpy``
    ``k`` clears the row crossover: every result-set op in the batch
    runs vectorised (covers keep the per-cover size check — tiny cover
    sets still lose to the Python min-reduce).
``mixed``
    ``k`` below the crossover but the batch carries enough group-filter
    work (``batch size × candidate blocks``) to amortise packed-cover
    reuse: result-set ops commit to Python, cover sets stay
    size-adaptive.
``python``
    Small ``k`` *and* a small batch: everything scalar, including cover
    packing (a packed cover that will be probed a handful of times never
    pays for itself).

Both backends are decision-equivalent (see the package docstring), so
mixing them — per batch or per cover — preserves the engine's
notification stream with respect to either pure backend's decisions.

Crossover thresholds default to values measured on the benchmark
machine (see EXPERIMENTS.md "Auto backend policy") and can be
overridden through ``REPRO_AUTO_MIN_ROWS`` / ``REPRO_AUTO_MIN_COVER`` /
``REPRO_AUTO_MIN_BATCH_WORK`` or the constructor.
:func:`measure_crossover` re-derives the row crossover empirically on
the current host.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.text.vectors import TermVector

#: Member-matrix rows below which the pure-Python loop wins (measured:
#: NumPy overtakes somewhere past ~30 rows on CPython 3.11 / x86_64;
#: the engine's k=20-30 result sets sit firmly on the Python side).
DEFAULT_MIN_ROWS = 32
#: Row crossover for engines *without* the aggregated-weights shortcut
#: (BIRT / IRT).  Their Lemma 6 check runs the full tail-similarity
#: matrix on every candidate instead of the AW dot product, so NumPy
#: amortises much earlier — ``BENCH_throughput.json`` showed auto
#: committing these methods to python mode at k=20 and losing to the
#: fixed numpy backend (ISSUE 9 satellite 1).
DEFAULT_MIN_ROWS_NO_AW = 16
#: Total cover documents below which the Python min-reduce wins.  MCS
#: covers hold at most k-1 documents each, so small-k blocks never pay
#: the NumPy packing cost.
DEFAULT_MIN_COVER = 32
#: ``batch size × candidate blocks`` below which a batch is too small to
#: amortise packed-cover reuse — everything stays scalar.
DEFAULT_MIN_BATCH_WORK = 256
#: Candidate blocks per list below which the flat batch-skip prefilter
#: (ISSUE 9) stays off for the batch.  The NumPy pass reduces over one
#: array element per block, so a list must hold at least a couple of
#: blocks before the pass beats per-block scalar checks; at one block
#: per list (the degenerate shape the standard benchmark settles into)
#: there is no vectorisation width at all and the prefilter is pure
#: overhead.
DEFAULT_MIN_FLAT_BLOCKS = 2


def _env_threshold(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        return default


def choose_batch_mode(
    batch_size: int,
    k: int,
    candidate_blocks: int,
    min_rows: int = DEFAULT_MIN_ROWS,
    min_batch_work: int = DEFAULT_MIN_BATCH_WORK,
    aw_shortcut: bool = True,
    min_rows_no_aw: int = DEFAULT_MIN_ROWS_NO_AW,
) -> str:
    """Classify a micro-batch: ``"numpy"``, ``"mixed"`` or ``"python"``.

    ``k`` decides the result-set ops outright (the member matrix has
    exactly k rows once warm); ``batch_size × candidate_blocks`` meters
    how many group-filter probes the batch will make, i.e. how often a
    packed cover could be reused before the next rebuild.

    ``aw_shortcut`` states whether the engine's Lemma 6 check runs as
    an aggregated-weights dot product (GIFilter / IFilter).  Baseline
    methods without it (BIRT / IRT) pay the full tail-similarity matrix
    per candidate, where NumPy's crossover sits far lower — they commit
    against ``min_rows_no_aw`` instead.
    """
    if k >= (min_rows if aw_shortcut else min_rows_no_aw):
        return "numpy"
    if batch_size * max(candidate_blocks, 1) >= min_batch_work:
        return "mixed"
    return "python"


def choose_flat_commit(
    candidate_blocks: int, min_flat_blocks: int = DEFAULT_MIN_FLAT_BLOCKS
) -> bool:
    """Whether a batch should run the flat block-skip prefilter.

    Orthogonal to :func:`choose_batch_mode`: the prefilter vectorises
    over *blocks*, not result-set rows, so its profitability depends
    only on how many blocks each postings list carries.
    """
    return candidate_blocks >= min_flat_blocks


class _AdaptiveEntries:
    """Packed-entries holder: NumPy form built lazily, on first use by a
    numpy-committed batch, then maintained incrementally alongside the
    entry list like the pure NumPy backend would."""

    __slots__ = ("inner",)

    def __init__(self) -> None:
        self.inner = None


class _AdaptiveCovers:
    """Packed-covers holder; built eagerly (covers are immutable between
    MCS rebuilds, so there is no maintenance to defer).  ``inner`` is
    None when the cover set was packed scalar — the holder stays valid
    across later mode switches because :meth:`cover_min_sim_sum`
    dispatches on it."""

    __slots__ = ("inner",)

    def __init__(self, inner) -> None:
        self.inner = inner


class AdaptiveKernels:
    """Batch-committed python/numpy dispatch (``backend = "auto"``)."""

    name = "auto"
    #: Result sets built for this backend keep an id-keyed AW mirror so
    #: numpy-committed batches can run Lemma 6 as an array dot.
    wants_aw_arrays = True

    def __init__(
        self,
        python_backend,
        numpy_backend,
        min_rows: int = None,
        min_cover: int = None,
        min_batch_work: int = None,
    ) -> None:
        self._python = python_backend
        self._numpy = numpy_backend
        self.min_rows = (
            min_rows
            if min_rows is not None
            else _env_threshold("REPRO_AUTO_MIN_ROWS", DEFAULT_MIN_ROWS)
        )
        self.min_cover = (
            min_cover
            if min_cover is not None
            else _env_threshold("REPRO_AUTO_MIN_COVER", DEFAULT_MIN_COVER)
        )
        self.min_batch_work = (
            min_batch_work
            if min_batch_work is not None
            else _env_threshold(
                "REPRO_AUTO_MIN_BATCH_WORK", DEFAULT_MIN_BATCH_WORK
            )
        )
        self.min_rows_no_aw = _env_threshold(
            "REPRO_AUTO_MIN_ROWS_NO_AW", DEFAULT_MIN_ROWS_NO_AW
        )
        self.min_flat_blocks = _env_threshold(
            "REPRO_FLAT_MIN_BLOCKS", DEFAULT_MIN_FLAT_BLOCKS
        )
        #: Current batch mode; ``"per_call"`` = legacy per-call shape
        #: dispatch through the class methods (no batch declared yet).
        self.mode = "per_call"
        #: Whether the committed batch runs the flat block-skip
        #: prefilter (ISSUE 9); the engine reads this after begin_batch.
        self.flat_committed = choose_flat_commit(0, self.min_flat_blocks)
        # Per-mode hot-op tables.  Instance attributes shadow the class
        # methods, so committing a mode binds each op DIRECTLY to the
        # target backend's bound method — no adaptive frame in between.
        scalar_ops = {
            "similarities_to": python_backend.similarities_to,
            "tail_similarities": python_backend.tail_similarities,
            "tail_similarity_sum": python_backend.tail_similarity_sum,
            "aw_similarity_sum": python_backend.aw_similarity_sum,
        }
        self._mode_tables = {
            "python": dict(scalar_ops, pack_covers=self._pack_covers_scalar),
            "mixed": dict(scalar_ops, pack_covers=self._pack_covers_adaptive),
            "numpy": {
                "similarities_to": self._similarities_to_numpy,
                "tail_similarities": self._tail_similarities_numpy,
                "tail_similarity_sum": self._tail_similarity_sum_numpy,
                "aw_similarity_sum": self._aw_similarity_sum_numpy,
                "pack_covers": self._pack_covers_adaptive,
            },
        }

    # -- batch commitment ---------------------------------------------------

    def begin_batch(
        self,
        batch_size: int,
        k: int,
        candidate_blocks: int,
        aw_shortcut: bool = True,
        min_flat_blocks: Optional[int] = None,
    ) -> str:
        """Commit the coming micro-batch to one dispatch mode.

        Rebinding only happens on a mode *change*, so steady workloads
        pay a dict lookup and three comparisons per batch.

        ``min_flat_blocks`` overrides the instance threshold for the
        flat-prefilter commitment — the adaptive dispatcher is a
        process-wide singleton, so per-engine configuration (the
        ``REPRO_FLAT_MIN_BLOCKS`` override differential tests use) must
        ride in with the call, not the constructor.
        """
        mode = choose_batch_mode(
            batch_size,
            k,
            candidate_blocks,
            self.min_rows,
            self.min_batch_work,
            aw_shortcut,
            self.min_rows_no_aw,
        )
        if mode != self.mode:
            self.mode = mode
            for op_name, impl in self._mode_tables[mode].items():
                setattr(self, op_name, impl)
        self.flat_committed = choose_flat_commit(
            candidate_blocks,
            self.min_flat_blocks
            if min_flat_blocks is None
            else min_flat_blocks,
        )
        return mode

    # -- result-set kernels ------------------------------------------------

    def pack_entries(self, entries: Sequence) -> _AdaptiveEntries:
        return _AdaptiveEntries()

    def packed_append(
        self, packed: _AdaptiveEntries, entries: Sequence
    ) -> _AdaptiveEntries:
        if packed.inner is not None:
            packed.inner = self._numpy.packed_append(packed.inner, entries)
        return packed

    def packed_replace(
        self, packed: _AdaptiveEntries, entries: Sequence
    ) -> _AdaptiveEntries:
        if packed.inner is not None:
            packed.inner = self._numpy.packed_replace(packed.inner, entries)
        return packed

    def _numpy_entries(self, packed: _AdaptiveEntries, entries: Sequence):
        if packed.inner is None:
            packed.inner = self._numpy.pack_entries(entries)
        return packed.inner

    # Committed-numpy forms (no shape check; bound via begin_batch).

    def _similarities_to_numpy(
        self, packed: _AdaptiveEntries, entries: Sequence, vector: TermVector
    ) -> List[float]:
        return self._numpy.similarities_to(
            self._numpy_entries(packed, entries), entries, vector
        )

    def _tail_similarities_numpy(
        self, packed: _AdaptiveEntries, entries: Sequence, vector: TermVector
    ) -> List[float]:
        return self._numpy.tail_similarities(
            self._numpy_entries(packed, entries), entries, vector
        )

    def _tail_similarity_sum_numpy(
        self,
        packed: _AdaptiveEntries,
        entries: Sequence,
        vector: TermVector,
        skip_aw_resident: bool,
    ) -> Tuple[float, int]:
        return self._numpy.tail_similarity_sum(
            self._numpy_entries(packed, entries),
            entries,
            vector,
            skip_aw_resident,
        )

    def _aw_similarity_sum_numpy(self, aw, vector: TermVector) -> float:
        return self._numpy.aw_similarity_sum(aw, vector)

    # Legacy per-call forms (class methods; live until begin_batch runs).

    def similarities_to(
        self, packed: _AdaptiveEntries, entries: Sequence, vector: TermVector
    ) -> List[float]:
        if len(entries) >= self.min_rows:
            return self._numpy.similarities_to(
                self._numpy_entries(packed, entries), entries, vector
            )
        return self._python.similarities_to(None, entries, vector)

    def tail_similarities(
        self, packed: _AdaptiveEntries, entries: Sequence, vector: TermVector
    ) -> List[float]:
        if len(entries) >= self.min_rows:
            return self._numpy.tail_similarities(
                self._numpy_entries(packed, entries), entries, vector
            )
        return self._python.tail_similarities(None, entries, vector)

    def tail_similarity_sum(
        self,
        packed: _AdaptiveEntries,
        entries: Sequence,
        vector: TermVector,
        skip_aw_resident: bool,
    ) -> Tuple[float, int]:
        if len(entries) >= self.min_rows:
            return self._numpy.tail_similarity_sum(
                self._numpy_entries(packed, entries),
                entries,
                vector,
                skip_aw_resident,
            )
        return self._python.tail_similarity_sum(
            None, entries, vector, skip_aw_resident
        )

    def aw_similarity_sum(self, aw, vector: TermVector) -> float:
        return self._python.aw_similarity_sum(aw, vector)

    # -- group-bound kernels -----------------------------------------------

    def _pack_covers_scalar(self, covers: Sequence) -> _AdaptiveCovers:
        return _AdaptiveCovers(None)

    def _pack_covers_adaptive(self, covers: Sequence) -> _AdaptiveCovers:
        members = sum(len(cover) for cover in covers)
        if members >= self.min_cover:
            return _AdaptiveCovers(self._numpy.pack_covers(covers))
        return _AdaptiveCovers(None)

    def pack_covers(self, covers: Sequence) -> _AdaptiveCovers:
        return self._pack_covers_adaptive(covers)

    def cover_min_sim_sum(
        self, packed: _AdaptiveCovers, covers: Sequence, vector: TermVector
    ) -> float:
        # Always dispatches on the holder: a cover packed scalar in one
        # batch stays valid (and scalar) if probed again after a mode
        # switch, because the filtering layer caches packed covers by
        # cover-list identity.
        if packed.inner is not None:
            return self._numpy.cover_min_sim_sum(packed.inner, covers, vector)
        return self._python.cover_min_sim_sum(None, covers, vector)


def measure_crossover(
    python_backend,
    numpy_backend,
    row_counts: Sequence[int] = (4, 8, 16, 32, 64, 128, 256),
    terms_per_doc: int = 8,
    repeats: int = 200,
) -> int:
    """Empirical row-count crossover on this host.

    Times ``similarities_to`` on synthetic result sets of growing size
    and returns the smallest row count at which NumPy beat Python (or
    the largest probed count plus one if it never did).  Used to
    recalibrate :data:`DEFAULT_MIN_ROWS` — never called on a hot path.
    """
    import time

    class _Entry:
        __slots__ = ("document",)

        def __init__(self, document) -> None:
            self.document = document

    class _Doc:
        __slots__ = ("vector",)

        def __init__(self, vector) -> None:
            self.vector = vector

    def _vector(seed: int) -> TermVector:
        return TermVector(
            {
                f"t{(seed * 7 + i * 13) % (terms_per_doc * 16)}": 1 + (seed + i) % 3
                for i in range(terms_per_doc)
            }
        )

    for rows in row_counts:
        entries = [_Entry(_Doc(_vector(i))) for i in range(rows)]
        probe = _vector(rows + 1)
        timings = {}
        for name, backend in (("python", python_backend), ("numpy", numpy_backend)):
            packed = backend.pack_entries(entries)
            backend.similarities_to(packed, entries, probe)  # warm-up
            start = time.perf_counter()
            for _ in range(repeats):
                backend.similarities_to(packed, entries, probe)
            timings[name] = time.perf_counter() - start
        if timings["numpy"] < timings["python"]:
            return rows
    return max(row_counts) + 1
