"""Hot-path scoring kernels with interchangeable backends.

Every piece of per-document arithmetic the engine executes at stream
rate — cosine similarities of a document against a query's k member
vectors (Eq. 6), the direct-similarity tail of the Lemma 6 sum, and the
per-cover minimum similarities of the group bound (Eq. 19) — is routed
through one of two backends sharing a single interface:

``python``
    Pure-Python reference.  Exactly the arithmetic (and float summation
    order) of the original engine, with no dependencies.

``numpy``
    Batched sparse-dot kernels over packed term-id/weight matrices.
    Each :class:`~repro.text.vectors.TermVector` carries an interned id
    array (built once via the shared
    :data:`~repro.text.vocabulary.GLOBAL_VOCABULARY`); a result set's k
    member vectors are packed into one dense ``k × |union terms|``
    matrix so all k similarities are a single mat-vec.

Backends are *decision-equivalent*: floating-point sums may differ in
the last bits (different association order), but every engine decision
is guarded by ``TIE_EPSILON`` so the notification streams are identical
(asserted by ``tests/test_backend_equivalence.py``).

:func:`resolve_backend` maps the ``EngineConfig.backend`` setting
(``"auto" | "python" | "numpy"``) to a backend singleton; ``"auto"``
resolves to the shape-adaptive dispatcher
(:class:`~repro.kernels.adaptive.AdaptiveKernels`) when NumPy is
importable — per call, small operand shapes take the Python loops and
large ones the vectorised path — and to pure Python otherwise.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.kernels.adaptive import AdaptiveKernels, measure_crossover
from repro.kernels.python_backend import PythonKernels

#: Names accepted by ``EngineConfig.backend``.
BACKEND_CHOICES = ("auto", "python", "numpy")

_PYTHON_SINGLETON = PythonKernels()
_NUMPY_SINGLETON: Optional[object] = None
_NUMPY_FAILED = False
_ADAPTIVE_SINGLETON: Optional[AdaptiveKernels] = None


def numpy_available() -> bool:
    """True if the NumPy backend can be constructed in this process."""
    return _load_numpy_backend() is not None


def _load_numpy_backend():
    global _NUMPY_SINGLETON, _NUMPY_FAILED
    if _NUMPY_SINGLETON is None and not _NUMPY_FAILED:
        try:
            from repro.kernels.numpy_backend import NumpyKernels
        except ImportError:
            _NUMPY_FAILED = True
        else:
            _NUMPY_SINGLETON = NumpyKernels()
    return _NUMPY_SINGLETON


def default_kernels() -> PythonKernels:
    """The pure-Python backend (used where no engine config is in play)."""
    return _PYTHON_SINGLETON


def resolve_backend(name: str = "auto"):
    """Return the kernel backend for a config ``backend`` setting.

    ``"auto"`` resolves to the shape-adaptive dispatcher (python below
    the measured crossover shape, numpy above) and silently falls back
    to pure Python when NumPy is not importable; asking for ``"numpy"``
    explicitly without NumPy is a
    :class:`~repro.errors.ConfigurationError`.
    """
    global _ADAPTIVE_SINGLETON
    if name == "python":
        return _PYTHON_SINGLETON
    if name == "numpy":
        backend = _load_numpy_backend()
        if backend is None:
            raise ConfigurationError(
                "backend 'numpy' requested but NumPy is not importable; "
                "install numpy or use backend='auto'/'python'"
            )
        return backend
    if name == "auto":
        backend = _load_numpy_backend()
        if backend is None:
            return _PYTHON_SINGLETON
        if _ADAPTIVE_SINGLETON is None:
            _ADAPTIVE_SINGLETON = AdaptiveKernels(_PYTHON_SINGLETON, backend)
        return _ADAPTIVE_SINGLETON
    raise ConfigurationError(
        f"unknown kernel backend {name!r}; expected one of {BACKEND_CHOICES}"
    )


__all__ = [
    "AdaptiveKernels",
    "BACKEND_CHOICES",
    "PythonKernels",
    "default_kernels",
    "measure_crossover",
    "numpy_available",
    "resolve_backend",
]
