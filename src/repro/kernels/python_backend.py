"""Pure-Python kernel backend.

The reference implementation of the kernel interface: the exact loops
(and float summation order) the engine used before the kernel layer was
introduced, so the ``python`` backend reproduces the original engine
bit-for-bit.  No packing is needed — the ops read the live
:class:`~repro.core.result_set.ResultEntry` rows and
:class:`~repro.core.mcs.CoverSet` documents directly, so ``pack_*``
return ``None`` and every op treats the packed argument as opaque.

The interface (shared with ``numpy_backend``):

``pack_entries(entries)`` / ``pack_covers(covers)``
    Build a backend-specific packed form; invalidated by the caller
    whenever the underlying rows change.
``packed_append(packed, entries)`` / ``packed_replace(packed, entries)``
    Mirror a result-set admit / replace into an existing packed form
    (called after the entry list was mutated; the new member is
    ``entries[-1]``) and return the packed form to keep.
``similarities_to(packed, entries, vector)``
    Cosine of ``vector`` against every entry, oldest first.
``tail_similarities(packed, entries, vector)``
    Cosines against ``entries[1:]`` (the replace path's kept rows).
``tail_similarity_sum(packed, entries, vector, skip_aw_resident)``
    Direct-cosine part of the Lemma 6 similarity sum; returns
    ``(total, count)`` where ``count`` meters the cosines evaluated.
``cover_min_sim_sum(packed, covers, vector)``
    ``Σ_cover min_{d ∈ cover} Sim(vector, d)`` — the MCS part of the
    group similarity bound (Eq. 19).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.text.vectors import TermVector, cosine_similarity


class PythonKernels:
    """Dependency-free reference backend."""

    name = "python"
    #: Pure-python engines never pay for the id-keyed AW mirror.
    wants_aw_arrays = False

    # -- result-set kernels ------------------------------------------------

    def pack_entries(self, entries: Sequence) -> None:
        return None

    def packed_append(self, packed: None, entries: Sequence) -> None:
        return None

    def packed_replace(self, packed: None, entries: Sequence) -> None:
        return None

    def similarities_to(
        self, packed: None, entries: Sequence, vector: TermVector
    ) -> List[float]:
        return [
            cosine_similarity(vector, entry.document.vector)
            for entry in entries
        ]

    def tail_similarities(
        self, packed: None, entries: Sequence, vector: TermVector
    ) -> List[float]:
        return [
            cosine_similarity(vector, entry.document.vector)
            for entry in entries[1:]
        ]

    def tail_similarity_sum(
        self,
        packed: None,
        entries: Sequence,
        vector: TermVector,
        skip_aw_resident: bool,
    ) -> Tuple[float, int]:
        total = 0.0
        count = 0
        if skip_aw_resident:
            for entry in entries[1:]:
                if not entry.aw_resident:
                    total += cosine_similarity(vector, entry.document.vector)
                    count += 1
        else:
            for entry in entries[1:]:
                total += cosine_similarity(vector, entry.document.vector)
                count += 1
        return total, count

    def aw_similarity_sum(self, aw, vector: TermVector) -> float:
        """Lemma 6 aggregated-weight sum — the reference dict walk."""
        return aw.similarity_sum(vector)

    # -- group-bound kernels -----------------------------------------------

    def pack_covers(self, covers: Sequence) -> None:
        return None

    def cover_min_sim_sum(
        self, packed: None, covers: Sequence, vector: TermVector
    ) -> float:
        total = 0.0
        for cover in covers:
            total += min(
                cosine_similarity(vector, document.vector)
                for document in cover
            )
        return total
