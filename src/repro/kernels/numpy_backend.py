"""NumPy kernel backend: batched sparse-dot scoring.

Member vectors of a result set (and the documents of a block's MCS
covers) are packed into a dense ``rows × columns`` matrix of unit
weights (``tf/||d||``).  Columns are assigned on first sight through a
plain dict keyed by the interned term ids of the shared
:data:`~repro.text.vocabulary.GLOBAL_VOCABULARY`; restricting a stream
document to the matrix is then a handful of dict lookups followed by a
single mat-vec.  Cosines follow because both sides are unit-normalised.

The result-set matrix is maintained *incrementally*: a replacement
recycles the evicted entry's row slot (zero it, scatter the new
weights) instead of repacking every member, so the per-replacement cost
is O(new document's terms) rather than O(k × terms).  Entry order is
tracked through a row permutation (``row_of``).  Columns are never
deleted eagerly — an evicted document's columns simply go to zero — and
the matrix is rebuilt from scratch only when the column map has grown
well past the live number of non-zeros.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.text.vectors import TermVector

#: Rebuild a result-set matrix once its column map exceeds this many
#: columns *and* this multiple of the live non-zero count (stale columns
#: accumulate as replacements retire terms).
_REPACK_MIN_COLS = 32
_REPACK_WASTE_FACTOR = 2


def _scatter_all(
    matrix: np.ndarray,
    colmap: dict,
    vectors: Sequence[TermVector],
) -> List[List[int]]:
    """Assign columns and scatter every vector's weights into ``matrix``.

    ``colmap`` is filled in insertion order; returns the per-row column
    lists.  ``matrix`` must be zeroed and large enough.
    """
    flat_cols: List[int] = []
    flat_weights: List[float] = []
    lengths: List[int] = []
    per_row: List[List[int]] = []
    for vector in vectors:
        ids, weights = vector.packed()
        lengths.append(len(ids))
        flat_weights.extend(weights)
        cols: List[int] = []
        for term_id in ids:
            col = colmap.get(term_id)
            if col is None:
                col = len(colmap)
                colmap[term_id] = col
            cols.append(col)
        flat_cols.extend(cols)
        per_row.append(cols)
    if flat_cols:
        rows = np.repeat(np.arange(len(vectors), dtype=np.intp), lengths)
        matrix[rows, np.array(flat_cols, dtype=np.intp)] = flat_weights
    return per_row


def _full_pack(vectors: Sequence[TermVector]) -> Tuple[dict, np.ndarray]:
    """Pack sparse vectors into (column map, exact-size weight matrix)."""
    union: dict = {}
    for vector in vectors:
        for term_id in vector.packed()[0]:
            union[term_id] = True
    matrix = np.zeros((len(vectors), len(union)), dtype=np.float64)
    colmap: dict = {}
    _scatter_all(matrix, colmap, vectors)
    return colmap, matrix


class _PackedEntries:
    """Incrementally-maintained member matrix of one result set.

    ``row_of[i]`` is the physical matrix row of the i-th (oldest-first)
    entry; ``order`` is the same permutation as an index array.  The
    physical rows in use are always exactly ``0..n-1`` (a replacement
    recycles the evicted slot), so row ``r``'s live columns can be kept
    in ``phys_cols[r]`` and eviction zeroes just those cells.  ``nnz``
    tracks the live non-zero count so the staleness check for a full
    rebuild is O(1); matrix capacity doubles on growth to amortise
    reallocation.
    """

    __slots__ = ("colmap", "matrix", "row_of", "phys_cols", "nnz", "order")

    def __init__(self, entries: Sequence) -> None:
        vectors = [entry.document.vector for entry in entries]
        union: dict = {}
        nnz = 0
        for vector in vectors:
            ids = vector.packed()[0]
            nnz += len(ids)
            for term_id in ids:
                union[term_id] = True
        n = len(entries)
        # Column capacity covers the staleness threshold so replacements
        # almost never reallocate: the map is rebuilt in place before it
        # can outgrow the buffer (doc sizes drifting up is the rare
        # exception, handled by doubling in _scatter_row).
        capacity = max(
            _REPACK_WASTE_FACTOR * nnz + 16, len(union), _REPACK_MIN_COLS
        )
        self.matrix = np.zeros((max(n, 1), capacity), dtype=np.float64)
        self.colmap = {}
        self.phys_cols = _scatter_all(self.matrix, self.colmap, vectors)
        self.nnz = nnz
        self.row_of = list(range(n))
        self.order = np.arange(n, dtype=np.intp)

    # -- incremental maintenance ------------------------------------------

    def _scatter_row(self, row: int, vector: TermVector) -> None:
        """Write ``vector``'s unit weights into physical row ``row``."""
        ids, weights = vector.packed()
        colmap = self.colmap
        cols: List[int] = []
        for term_id in ids:
            col = colmap.get(term_id)
            if col is None:
                col = len(colmap)
                colmap[term_id] = col
            cols.append(col)
        capacity = self.matrix.shape[1]
        if len(colmap) > capacity:
            grown = np.zeros(
                (self.matrix.shape[0], max(2 * capacity, len(colmap))),
                dtype=np.float64,
            )
            grown[:, :capacity] = self.matrix
            self.matrix = grown
        if cols:
            self.matrix[row, cols] = weights
        self.phys_cols[row] = cols
        self.nnz += len(cols)

    def append(self, entries: Sequence) -> None:
        """Mirror a result-set admit: ``entries[-1]`` is the new member."""
        row = len(self.row_of)
        if row >= self.matrix.shape[0]:
            grown = np.zeros(
                (max(2 * self.matrix.shape[0], row + 1), self.matrix.shape[1]),
                dtype=np.float64,
            )
            grown[: self.matrix.shape[0]] = self.matrix
            self.matrix = grown
        self.phys_cols.append([])
        self._scatter_row(row, entries[-1].document.vector)
        self.row_of.append(row)
        self.order = np.array(self.row_of, dtype=np.intp)

    def replace(self, entries: Sequence) -> None:
        """Mirror a result-set replace: oldest evicted, newest appended."""
        if (
            len(self.colmap) > _REPACK_MIN_COLS
            and len(self.colmap) > _REPACK_WASTE_FACTOR * max(self.nnz, 1)
        ):
            self._repack_in_place(entries)
            return
        row = self.row_of.pop(0)
        old_cols = self.phys_cols[row]
        if old_cols:
            self.matrix[row, old_cols] = 0.0
        self.nnz -= len(old_cols)
        self._scatter_row(row, entries[-1].document.vector)
        self.row_of.append(row)
        self.order = np.array(self.row_of, dtype=np.intp)

    def _repack_in_place(self, entries: Sequence) -> None:
        """Compact the column map, reusing the existing matrix buffer.

        Every live term already has a (possibly stale) column, so the
        compacted map always fits in the current capacity — no
        allocation, just a zero-fill of the used region and a re-scatter.
        """
        n = len(entries)
        self.matrix[:n, : len(self.colmap)] = 0.0
        self.colmap = {}
        self.phys_cols = _scatter_all(
            self.matrix,
            self.colmap,
            [entry.document.vector for entry in entries],
        )
        self.nnz = sum(len(cols) for cols in self.phys_cols)
        self.row_of = list(range(n))
        self.order = np.arange(n, dtype=np.intp)


class _PackedCovers:
    """Packed cover-member matrix of one block's MCS summary."""

    __slots__ = ("colmap", "matrix", "starts")

    def __init__(self, covers: Sequence) -> None:
        vectors = [
            document.vector for cover in covers for document in cover
        ]
        self.colmap, self.matrix = _full_pack(vectors)
        lengths = [len(cover) for cover in covers]
        self.starts = np.cumsum([0] + lengths[:-1], dtype=np.intp)


def _restrict(colmap: dict, vector: TermVector):
    """``vector``'s (columns, weights) overlapping the packed matrix."""
    ids, weights = vector.packed()
    cols: List[int] = []
    kept: List[float] = []
    for index, term_id in enumerate(ids):
        col = colmap.get(term_id)
        if col is not None:
            cols.append(col)
            kept.append(weights[index])
    return cols, kept


class NumpyKernels:
    """Vectorised backend over packed term-id/weight matrices."""

    name = "numpy"
    #: Ask result sets to mirror their AW tables as id-keyed arrays.
    wants_aw_arrays = True

    # -- result-set kernels ------------------------------------------------

    def pack_entries(self, entries: Sequence) -> _PackedEntries:
        return _PackedEntries(entries)

    def packed_append(
        self, packed: _PackedEntries, entries: Sequence
    ) -> _PackedEntries:
        packed.append(entries)
        return packed

    def packed_replace(
        self, packed: _PackedEntries, entries: Sequence
    ) -> _PackedEntries:
        packed.replace(entries)
        return packed

    def similarities_to(
        self, packed: _PackedEntries, entries: Sequence, vector: TermVector
    ) -> List[float]:
        n = len(entries)
        if n == 0:
            return []
        cols, weights = _restrict(packed.colmap, vector)
        if not cols:
            return [0.0] * n
        if len(cols) == 1:
            sims = packed.matrix[:, cols[0]] * weights[0]
        else:
            sims = packed.matrix[:, cols] @ np.asarray(weights)
        return sims.take(packed.order).tolist()

    def tail_similarities(
        self, packed: _PackedEntries, entries: Sequence, vector: TermVector
    ) -> List[float]:
        n = len(entries)
        if n <= 1:
            return []
        cols, weights = _restrict(packed.colmap, vector)
        if not cols:
            return [0.0] * (n - 1)
        if len(cols) == 1:
            sims = packed.matrix[:, cols[0]] * weights[0]
        else:
            sims = packed.matrix[:, cols] @ np.asarray(weights)
        return sims.take(packed.order[1:]).tolist()

    def tail_similarity_sum(
        self,
        packed: _PackedEntries,
        entries: Sequence,
        vector: TermVector,
        skip_aw_resident: bool,
    ) -> Tuple[float, int]:
        if skip_aw_resident:
            row_of = packed.row_of
            rows = [
                row_of[index]
                for index in range(1, len(entries))
                if not entries[index].aw_resident
            ]
        else:
            rows = packed.row_of[1:]
        count = len(rows)
        if count == 0:
            return 0.0, 0
        cols, weights = _restrict(packed.colmap, vector)
        if not cols:
            return 0.0, count
        if len(cols) == 1:
            sims = packed.matrix[:, cols[0]] * weights[0]
        else:
            sims = packed.matrix[:, cols] @ np.asarray(weights)
        return float(sims.take(rows).sum()), count

    def aw_similarity_sum(self, aw, vector: TermVector) -> float:
        """Lemma 6 aggregated-weight sum over the table's sorted columns.

        Falls back to the dict walk when the table carries no id mirror
        (result sets built for the python backend, or an empty table).
        """
        arrays = aw.arrays()
        if arrays is None:
            return aw.similarity_sum(vector)
        ids, weights = arrays
        vector_ids, vector_weights = vector.packed()
        if not vector_ids:
            return 0.0
        probe = np.asarray(vector_ids, dtype=np.int64)
        positions = np.searchsorted(ids, probe)
        positions = np.minimum(positions, len(ids) - 1)
        hits = ids[positions] == probe
        if not hits.any():
            return 0.0
        return float(
            weights[positions[hits]]
            @ np.asarray(vector_weights, dtype=np.float64)[hits]
        )

    # -- group-bound kernels -----------------------------------------------

    def pack_covers(self, covers: Sequence) -> _PackedCovers:
        return _PackedCovers(covers)

    def cover_min_sim_sum(
        self, packed: _PackedCovers, covers: Sequence, vector: TermVector
    ) -> float:
        if not covers:
            return 0.0
        cols, weights = _restrict(packed.colmap, vector)
        if not cols:
            return 0.0
        if len(cols) == 1:
            sims = packed.matrix[:, cols[0]] * weights[0]
        else:
            sims = packed.matrix[:, cols] @ np.asarray(weights)
        return float(np.minimum.reduceat(sims, packed.starts).sum())
