"""Bidirectional term <-> integer id mapping.

The engine's hot paths key inverted lists by term strings (Python dict
hashing of short interned strings is fast), but workload generators,
serialisation and the index-size accounting of Figure 8 benefit from a
stable dense id space.  :class:`Vocabulary` provides it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional


class Vocabulary:
    """Append-only mapping between terms and dense integer ids."""

    def __init__(self, terms: Optional[Iterable[str]] = None) -> None:
        self._term_to_id: Dict[str, int] = {}
        self._id_to_term: List[str] = []
        if terms is not None:
            for term in terms:
                self.add(term)

    def add(self, term: str) -> int:
        """Intern ``term`` and return its id (existing id if present)."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        term_id = len(self._id_to_term)
        self._term_to_id[term] = term_id
        self._id_to_term.append(term)
        return term_id

    def id_of(self, term: str) -> Optional[int]:
        """Id of ``term`` or None if the term was never interned."""
        return self._term_to_id.get(term)

    def term_of(self, term_id: int) -> str:
        """Term for ``term_id``; raises IndexError for unknown ids."""
        return self._id_to_term[term_id]

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_term)

    def encode(self, tokens: Iterable[str]) -> List[int]:
        """Intern every token and return the id sequence."""
        return [self.add(token) for token in tokens]

    def decode(self, ids: Iterable[int]) -> List[str]:
        """Inverse of :meth:`encode`."""
        return [self._id_to_term[i] for i in ids]

    def tail(self, start: int) -> List[str]:
        """Terms with ids ``>= start``, in id order.

        The sync primitive for replica vocabularies (see
        ``repro.parallel``): a replica that has applied ids ``< start``
        becomes current by appending exactly these terms in order.
        """
        return self._id_to_term[start:]


#: Process-wide vocabulary shared by every :class:`TermVector`'s packed
#: term-id representation (see ``text/vectors.py``).  Ids are opaque
#: labels — sharing one id space across engines is safe and lets packed
#: vectors be compared without re-interning.
GLOBAL_VOCABULARY = Vocabulary()
