"""Text substrate: tokenisation, term vectors, vocabulary, statistics."""

from repro.text.collection_stats import CollectionStatistics
from repro.text.stopwords import ENGLISH_STOPWORDS
from repro.text.tokenizer import DEFAULT_TOKENIZER, Tokenizer, tokenize
from repro.text.vectors import (
    EMPTY_VECTOR,
    TermVector,
    angular_distance,
    angular_similarity,
    cosine_similarity,
    dissimilarity,
)
from repro.text.vocabulary import Vocabulary

__all__ = [
    "CollectionStatistics",
    "DEFAULT_TOKENIZER",
    "EMPTY_VECTOR",
    "ENGLISH_STOPWORDS",
    "TermVector",
    "Tokenizer",
    "Vocabulary",
    "angular_distance",
    "angular_similarity",
    "cosine_similarity",
    "dissimilarity",
    "tokenize",
]
