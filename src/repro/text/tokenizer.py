"""Tokenisation of raw microblog text into index terms.

The tokenizer is intentionally simple and deterministic: lowercase,
extract word characters (keeping ``#hashtags`` and ``@mentions`` as single
terms, as is conventional for tweets), drop stop-words and terms shorter
than a minimum length.  Everything downstream of this module operates on
token sequences, so alternative tokenizers can be swapped in freely.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List, Optional

from repro.text.stopwords import ENGLISH_STOPWORDS

_TOKEN_RE = re.compile(r"[#@]?\w+")
_URL_RE = re.compile(r"https?://\S+|www\.\S+")


class Tokenizer:
    """Convert raw text into a list of index terms.

    Parameters
    ----------
    stopwords:
        Terms to drop.  Defaults to :data:`ENGLISH_STOPWORDS`; pass an
        empty set to keep everything.
    min_length:
        Minimum term length after normalisation (default 2).
    strip_urls:
        Remove URLs before tokenising (default True; URLs are noise for
        keyword subscription matching).
    """

    def __init__(
        self,
        stopwords: Optional[Iterable[str]] = None,
        min_length: int = 2,
        strip_urls: bool = True,
    ) -> None:
        if stopwords is None:
            self._stopwords: FrozenSet[str] = ENGLISH_STOPWORDS
        else:
            self._stopwords = frozenset(w.lower() for w in stopwords)
        self._min_length = min_length
        self._strip_urls = strip_urls

    @property
    def stopwords(self) -> FrozenSet[str]:
        return self._stopwords

    def tokenize(self, text: str) -> List[str]:
        """Return the index terms of ``text`` in order of appearance."""
        if self._strip_urls:
            text = _URL_RE.sub(" ", text)
        tokens = []
        for match in _TOKEN_RE.finditer(text.lower()):
            token = match.group()
            core = token.lstrip("#@")
            if len(core) < self._min_length:
                continue
            if core in self._stopwords:
                continue
            if core.isdigit():
                continue
            tokens.append(token)
        return tokens

    def __call__(self, text: str) -> List[str]:
        return self.tokenize(text)


#: Shared default tokenizer instance.
DEFAULT_TOKENIZER = Tokenizer()


def tokenize(text: str) -> List[str]:
    """Tokenise ``text`` with the default tokenizer."""
    return DEFAULT_TOKENIZER.tokenize(text)
