"""Evolving collection statistics for Jelinek-Mercer smoothing.

``PS(d, w)`` (the formula below Eq. 3) mixes a document's maximum-
likelihood term probability with the *collection* probability
``Num(Coll, w) / |Coll|``.  On a stream the collection grows with every
published document, so the statistics are maintained incrementally here
and shared by every engine in an experiment (keeping their scores
comparable).

Unseen terms get a floor probability of ``1 / (|Coll| + 1)`` so that the
product in ``TRel`` (Eq. 3) never collapses to exactly zero for queries
whose keywords have not been observed yet — the paper's corpus-scale
statistics make this a non-issue, but small synthetic runs need it.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.text.vectors import TermVector


class CollectionStatistics:
    """Term and token counts over every document seen so far."""

    def __init__(self) -> None:
        self._term_counts: Dict[str, int] = {}
        self._total_tokens: int = 0
        self._total_documents: int = 0

    @property
    def total_tokens(self) -> int:
        """``|Coll|`` — total tokens across all observed documents."""
        return self._total_tokens

    @property
    def total_documents(self) -> int:
        return self._total_documents

    @property
    def distinct_terms(self) -> int:
        return len(self._term_counts)

    def add(self, vector: TermVector) -> None:
        """Fold one document's term frequencies into the collection."""
        counts = self._term_counts
        for term, count in vector.items():
            counts[term] = counts.get(term, 0) + count
        self._total_tokens += vector.length
        self._total_documents += 1

    def add_all(self, vectors: Iterable[TermVector]) -> None:
        for vector in vectors:
            self.add(vector)

    def term_count(self, term: str) -> int:
        """``Num(Coll, w)`` — occurrences of ``term`` in the collection."""
        return self._term_counts.get(term, 0)

    def probability(self, term: str) -> float:
        """Collection probability with an unseen-term floor.

        Returns ``Num(Coll, w) / |Coll|`` for observed terms, and
        ``1 / (|Coll| + 1)`` for unobserved ones (also the value before
        any document arrives).
        """
        count = self._term_counts.get(term, 0)
        if count == 0 or self._total_tokens == 0:
            return 1.0 / (self._total_tokens + 1)
        return count / self._total_tokens

    def snapshot(self) -> "CollectionStatistics":
        """Deep copy, useful for freezing scores in tests."""
        clone = CollectionStatistics()
        clone._term_counts = dict(self._term_counts)
        clone._total_tokens = self._total_tokens
        clone._total_documents = self._total_documents
        return clone
