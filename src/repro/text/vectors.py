"""Sparse term-frequency vectors and similarity measures.

A :class:`TermVector` is the system's canonical document representation:
an immutable map ``term -> frequency`` with its Euclidean norm and token
count precomputed, because cosine similarities (Eq. 6) and language-model
scores (Eq. 3) are evaluated millions of times per experiment.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple


class TermVector:
    """Immutable sparse term-frequency vector.

    Attributes
    ----------
    norm:
        Euclidean norm ``sqrt(sum tf^2)`` — the ``||d.v_d||`` of Eq. 20/22.
    length:
        Total token count ``|d.v_d|`` used by the language model.
    """

    __slots__ = ("_tf", "norm", "length", "_packed", "_backend_cache")

    def __init__(self, tf: Mapping[str, int]) -> None:
        cleaned: Dict[str, int] = {}
        for term, count in tf.items():
            if count < 0:
                raise ValueError(f"negative term frequency for {term!r}: {count}")
            if count:
                cleaned[term] = int(count)
        self._tf = cleaned
        self.length = sum(cleaned.values())
        self.norm = math.sqrt(sum(c * c for c in cleaned.values()))
        self._packed: Optional[Tuple[Tuple[int, ...], Tuple[float, ...]]] = None
        self._backend_cache: object = None

    @classmethod
    def from_tokens(cls, tokens: Iterable[str]) -> "TermVector":
        """Build a vector by counting ``tokens``."""
        tf: Dict[str, int] = {}
        for token in tokens:
            tf[token] = tf.get(token, 0) + 1
        return cls(tf)

    @classmethod
    def from_text(cls, text: str) -> "TermVector":
        """Tokenise ``text`` with the default tokenizer and count terms."""
        from repro.text.tokenizer import tokenize

        return cls.from_tokens(tokenize(text))

    # -- mapping-style access ------------------------------------------------

    def frequency(self, term: str) -> int:
        """Term frequency of ``term`` (0 if absent)."""
        return self._tf.get(term, 0)

    def __contains__(self, term: str) -> bool:
        return term in self._tf

    def __iter__(self) -> Iterator[str]:
        return iter(self._tf)

    def __len__(self) -> int:
        """Number of *distinct* terms."""
        return len(self._tf)

    def __bool__(self) -> bool:
        return bool(self._tf)

    def items(self) -> Iterable[Tuple[str, int]]:
        return self._tf.items()

    def terms(self) -> Iterable[str]:
        return self._tf.keys()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TermVector):
            return NotImplemented
        return self._tf == other._tf

    def __hash__(self) -> int:
        return hash(frozenset(self._tf.items()))

    def __repr__(self) -> str:
        preview = dict(sorted(self._tf.items())[:6])
        suffix = ", ..." if len(self._tf) > 6 else ""
        return f"TermVector({preview}{suffix})"

    def __reduce__(self):
        # Pickle only the term frequencies; norms and the packed caches
        # (which may hold backend-specific arrays) are rebuilt on load.
        return (TermVector, (self._tf,))

    # -- packed representation -----------------------------------------------

    def packed(self) -> Tuple[Tuple[int, ...], Tuple[float, ...]]:
        """Interned ``(term_ids, unit_weights)`` arrays, ascending by id.

        Term ids come from the process-wide
        :data:`~repro.text.vocabulary.GLOBAL_VOCABULARY`; weights are
        ``tf/norm`` so a cosine between two vectors is the dot product of
        their aligned weights.  Built once per vector and cached — this
        is the representation the kernel backends operate on.
        """
        packed = self._packed
        if packed is None:
            from repro.text.vocabulary import GLOBAL_VOCABULARY

            norm = self.norm
            if norm == 0.0:
                packed = ((), ())
            else:
                pairs = sorted(
                    (GLOBAL_VOCABULARY.add(term), count)
                    for term, count in self._tf.items()
                )
                packed = (
                    tuple(pair[0] for pair in pairs),
                    tuple(pair[1] / norm for pair in pairs),
                )
            self._packed = packed
        return packed

    # -- geometry -------------------------------------------------------------

    def dot(self, other: "TermVector") -> float:
        """Inner product of raw term frequencies."""
        a, b = self._tf, other._tf
        if len(b) < len(a):
            a, b = b, a
        return float(sum(count * b[term] for term, count in a.items() if term in b))

    def unit_weight(self, term: str) -> float:
        """``tf(term) / norm`` — the per-term weight used by Eq. 20/22."""
        if self.norm == 0.0:
            return 0.0
        return self._tf.get(term, 0) / self.norm


def cosine_similarity(a: TermVector, b: TermVector) -> float:
    """Cosine similarity, the ``Sim`` of Eq. 6 (0 when either is empty)."""
    if a.norm == 0.0 or b.norm == 0.0:
        return 0.0
    return a.dot(b) / (a.norm * b.norm)


def dissimilarity(a: TermVector, b: TermVector) -> float:
    """``d(d_i, d_j) = 1 - Sim(d_i, d_j)`` (Eq. 6)."""
    return 1.0 - cosine_similarity(a, b)


def angular_similarity(a: TermVector, b: TermVector) -> float:
    """Angular similarity ``1 - arccos(cos)/π`` (Appendix A.2).

    Unlike raw cosine this induces a proper distance metric
    (``1 - angular_similarity``), which DisC requires.
    """
    cos = cosine_similarity(a, b)
    cos = max(-1.0, min(1.0, cos))
    return 1.0 - math.acos(cos) / math.pi


def angular_distance(a: TermVector, b: TermVector) -> float:
    """Metric distance ``arccos(cos)/π`` in [0, 1]."""
    return 1.0 - angular_similarity(a, b)


EMPTY_VECTOR = TermVector({})
