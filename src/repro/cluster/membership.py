"""Heartbeat membership: proactive failure detection for the cluster.

The coordinator already fails over *reactively* — a dead primary is
detected by the next op that touches its shard.  The
:class:`MembershipMonitor` adds a heartbeat loop so an idle shard's
death is noticed too: every ``interval`` seconds each shard's primary
and standby answer a ``cluster_stats`` probe; ``miss_threshold``
consecutive misses mark the node dead, which promotes the standby
(primary death) or degrades the shard (standby death).

Failover is serialised with in-flight ops through the per-shard
``asyncio.Lock``: whichever side detects the death first promotes, the
other finds the promotion already done.  The monitor runs on the
cluster's private event loop.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional


class MembershipMonitor:
    """Probe loop over every shard's primary and standby."""

    def __init__(
        self,
        cluster,
        interval: float = 0.25,
        miss_threshold: int = 3,
        probe_timeout: Optional[float] = None,
    ) -> None:
        self._cluster = cluster
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.probe_timeout = (
            probe_timeout if probe_timeout is not None else interval * 2
        )
        #: (shard index, role) -> consecutive missed probes.
        self.misses: Dict[Any, int] = {}
        self.probes = 0
        self.failovers_triggered = 0
        self.degrades_triggered = 0
        self._task: Optional[asyncio.Task] = None
        self._stopped = False

    async def start(self) -> None:
        if self._task is None:
            self._task = asyncio.create_task(self._run())

    async def stop(self) -> None:
        self._stopped = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
            self._task = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "interval": self.interval,
            "miss_threshold": self.miss_threshold,
            "probes": self.probes,
            "failovers_triggered": self.failovers_triggered,
            "degrades_triggered": self.degrades_triggered,
            "misses": {
                f"{shard}:{role}": count
                for (shard, role), count in sorted(self.misses.items())
            },
        }

    async def _run(self) -> None:
        while not self._stopped:
            await asyncio.sleep(self.interval)
            for shard in self._cluster._shards:
                await self._probe(shard, "primary")
                await self._probe(shard, "standby")

    async def _probe(self, shard, role: str) -> None:
        node = shard.primary if role == "primary" else shard.standby
        if node is None:
            return
        self.probes += 1
        key = (shard.index, role)
        try:
            await asyncio.wait_for(
                node.cluster_stats(), self.probe_timeout
            )
        except Exception:
            misses = self.misses.get(key, 0) + 1
            self.misses[key] = misses
            if misses < self.miss_threshold:
                return
            self.misses[key] = 0
            await self._declare_dead(shard, role, node)
        else:
            self.misses[key] = 0

    async def _declare_dead(self, shard, role: str, node) -> None:
        """Act on a confirmed death, serialised with in-flight ops."""
        async with shard.lock:
            if role == "primary":
                if shard.primary is not node:
                    return  # an op already failed the shard over
                if shard.standby is None:
                    return  # nothing to promote; ops will raise NodeDown
                self._cluster._promote(shard)
                self.failovers_triggered += 1
                try:
                    # Catch the fresh primary up so the *next* op starts
                    # from a clean applied offset.
                    await self._cluster._replay(shard, notify=False)
                except (ConnectionError, OSError):
                    pass
            else:
                if shard.standby is not node:
                    return
                self._cluster._degrade(shard)
                self.degrades_triggered += 1
