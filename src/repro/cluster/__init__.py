"""Multi-node cluster tier: TCP coordinator, replicated shard nodes.

The cluster generalises :class:`~repro.distributed.sharded.
ShardedDasEngine` (threads of one process) and :class:`~repro.parallel.
ParallelShardedEngine` (worker processes on one machine) to *network*
nodes: each shard is a full serving stack — :class:`~repro.server.
runtime.ServerRuntime` behind :class:`~repro.server.tcp.NdjsonTcpServer`
— reached over the NDJSON protocol, optionally paired with a standby
replica kept current by streaming the coordinator's op journal.  See
DESIGN.md §13 for the architecture and the failover state machine.
"""

from repro.cluster.coordinator import ClusterEngine, NodeClient, ShardState
from repro.cluster.launcher import NodeProcess, launch_cluster
from repro.cluster.membership import MembershipMonitor
from repro.cluster.node import run_node

__all__ = [
    "ClusterEngine",
    "MembershipMonitor",
    "NodeClient",
    "NodeProcess",
    "ShardState",
    "launch_cluster",
    "run_node",
]
