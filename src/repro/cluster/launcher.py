"""Spawn node processes and wire a coordinator over them.

:class:`NodeProcess` launches ``python -m repro.experiments.cli node``
as a real OS process (the chaos suite SIGKILLs these — a worker thread
would not die convincingly), parses the ``node listening on HOST:PORT``
ready line for the ephemeral port, and exposes ``kill``/``stop``.

:func:`launch_cluster` is the one-call bring-up used by the ``repro
cluster`` command, the benches and the tests: N primaries, optionally
one standby each, and a connected :class:`~repro.cluster.coordinator.
ClusterEngine` in front.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from typing import List, Optional, Sequence, Tuple

import repro
from repro.cluster.coordinator import ClusterEngine
from repro.errors import NodeDownError

Address = Tuple[str, int]


def _node_env() -> dict:
    """Child env with ``src`` on PYTHONPATH regardless of install mode."""
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src if not existing else src + os.pathsep + existing
    )
    return env


class NodeProcess:
    """One node subprocess plus its parsed listen address."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        method: str = "GIFilter",
        k: int = 30,
        extra_args: Sequence[str] = (),
    ) -> None:
        self._cmd = [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "node",
            "--host",
            host,
            "--port",
            str(port),
            "--method",
            method,
            "--k",
            str(k),
            *extra_args,
        ]
        self.process: Optional[subprocess.Popen] = None
        self.address: Optional[Address] = None

    def start(self) -> Address:
        """Spawn the node and block until it prints its ready line."""
        self.process = subprocess.Popen(
            self._cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=_node_env(),
            text=True,
        )
        while True:
            line = self.process.stdout.readline()
            if not line:
                self.process.wait()
                raise NodeDownError(
                    f"node exited (rc={self.process.returncode}) before "
                    f"reporting its address"
                )
            line = line.strip()
            if line.startswith("node listening on "):
                host, _, port = line[len("node listening on "):].rpartition(
                    ":"
                )
                self.address = (host, int(port))
                return self.address

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL — the crash the failover machinery must survive."""
        if self.alive:
            self.process.send_signal(signal.SIGKILL)
        self.process.wait()

    def stop(self, timeout: float = 5.0) -> None:
        if self.process is None:
            return
        if self.alive:
            self.process.terminate()
            try:
                self.process.wait(timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        if self.process.stdout is not None:
            self.process.stdout.close()


def launch_cluster(
    n_nodes: int,
    replicas: int = 0,
    method: str = "GIFilter",
    k: int = 30,
    routing: str = "round_robin",
    replica_lag: int = 8,
    journal_dir: Optional[str] = None,
) -> Tuple[ClusterEngine, List[NodeProcess], List[Optional[NodeProcess]]]:
    """Bring up primaries (+ optional standbys) and a coordinator.

    ``replicas`` is 0 (no standbys) or 1 (one standby per shard).  The
    caller owns all three returns: close the engine first, then stop the
    processes.
    """
    if replicas not in (0, 1):
        raise ValueError(f"replicas must be 0 or 1, got {replicas}")
    primaries: List[NodeProcess] = []
    standbys: List[Optional[NodeProcess]] = []
    try:
        for _ in range(n_nodes):
            node = NodeProcess(method=method, k=k)
            node.start()
            primaries.append(node)
            if replicas:
                standby = NodeProcess(method=method, k=k)
                standby.start()
                standbys.append(standby)
            else:
                standbys.append(None)
        engine = ClusterEngine(
            [node.address for node in primaries],
            standbys=(
                [node.address for node in standbys] if replicas else None
            ),
            routing=routing,
            replica_lag=replica_lag,
            journal_dir=journal_dir,
        )
    except BaseException:
        for node in primaries + [s for s in standbys if s is not None]:
            node.stop()
        raise
    return engine, primaries, standbys
