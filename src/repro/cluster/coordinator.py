"""The cluster coordinator: journal-first replication over NDJSON TCP.

:class:`ClusterEngine` is the network generalisation of
:class:`~repro.distributed.sharded.ShardedDasEngine`: N shard *nodes*
(each a full serving stack reached over TCP), queries routed to one
shard, documents broadcast to all shards, per-shard notification
streams merged document-major / shard-minor — so cluster results are
identical to the single-process engine's (the differential tests
compare them byte for byte).

Every state-changing op follows one discipline (DESIGN.md §13):

1. validate coordinator-side (the coordinator is the single sequencer
   for query ids and document ids, so ordering violations are caught
   *before* anything is journaled);
2. append the op to the shard's :class:`~repro.persistence.journal.
   OpJournal` — the journal entry, not the TCP send, is the acceptance
   record;
3. ship the journal suffix to the shard primary via the ``replicate``
   op and read the per-entry results (notification id-triples) back.

Because acceptance precedes transmission, a primary that dies mid-op
loses nothing: failover promotes the standby and the normal catch-up
replay (``entries_since(standby.applied)``) re-applies every accepted
op, including the in-flight one, on the new primary — zero accepted-op
loss, and the replay recomputes the lost reply's notifications on an
engine that is byte-identical by construction.

Standby replicas are driven lazily through the *same* ``replicate`` op
with ``notify=false``; the journal is truncated to the slowest
consumer's applied offset, so memory stays bounded.  One known edge: in
*degraded* mode (no standby) a connection that drops after the primary
applied an op but before its reply arrives loses that op's notification
triples — state stays consistent (the op is applied and journaled), but
that single publish's pushes cannot be reconstructed without a replica.

The engine facade is synchronous (it slots in anywhere a
:class:`~repro.core.engine.DasEngine` does, including behind a
:class:`~repro.server.runtime.ServerRuntime`); internally it owns a
private asyncio loop on a daemon thread where all node I/O runs.
"""

from __future__ import annotations

import asyncio
import os
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.events import Notification
from repro.core.query import DasQuery
from repro.errors import (
    ConfigurationError,
    DocumentOrderError,
    DuplicateQueryError,
    NodeDownError,
    QueryOrderError,
    ReplicationError,
    ReproError,
    UnknownQueryError,
)
from repro.metrics.instrumentation import Counters
from repro.persistence.checkpoint import CHECKPOINT_VERSION
from repro.persistence.journal import (
    OpJournal,
    publish_entry,
    subscribe_entry,
    unsubscribe_entry,
)
from repro.server.protocol import document_payload
from repro.server.tcp import NdjsonTcpClient
from repro.stream.document import Document
from repro.telemetry import merge_snapshots
from repro.text.vectors import TermVector

#: Routing policies the coordinator supports.  ``least_loaded`` needs
#: per-op posting counts, which would cost a network round trip per
#: subscribe; route by hash if stable assignment matters.
CLUSTER_ROUTING_POLICIES = ("round_robin", "hash")

Address = Tuple[str, int]


class NodeClient:
    """One node connection plus the coordinator's view of its progress.

    ``applied`` is the coordinator-tracked journal offset the node has
    applied; it is advanced from ``replicate`` replies and refreshed
    from ``cluster_stats`` when the tracked value goes stale (e.g. a
    reply was lost to a reconnect).
    """

    def __init__(self, address: Address, client: NdjsonTcpClient) -> None:
        self.address = address
        self.client = client
        self.applied = 0

    @classmethod
    async def connect(
        cls, address: Address, jitter_seed: int = 0
    ) -> "NodeClient":
        client = await NdjsonTcpClient.connect(
            address[0],
            address[1],
            reconnect=True,
            jitter_seed=jitter_seed,
        )
        return cls(address, client)

    async def replicate(
        self, offset: int, entries: Sequence[Any], notify: bool
    ) -> Dict[str, Any]:
        return await self.client.request(
            {
                "op": "replicate",
                "offset": offset,
                "entries": list(entries),
                "notify": notify,
            }
        )

    async def cluster_stats(self, checkpoint: bool = False) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "cluster_stats"}
        if checkpoint:
            payload["checkpoint"] = True
        return await self.client.request(payload)

    async def handoff(self, payload: Dict, offset: int) -> Dict[str, Any]:
        return await self.client.request(
            {"op": "handoff", "checkpoint": payload, "offset": offset}
        )

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return await self.client.request(payload)

    async def close(self) -> None:
        try:
            await self.client.close()
        except Exception:
            pass

    def as_dict(self) -> Dict[str, Any]:
        return {
            "address": list(self.address),
            "applied": self.applied,
            "connection": self.client.connection_stats(),
        }


class ShardState:
    """One shard: primary + optional standby + the replication journal."""

    def __init__(
        self,
        index: int,
        primary: NodeClient,
        standby: Optional[NodeClient],
        journal: OpJournal,
    ) -> None:
        self.index = index
        self.primary = primary
        self.standby = standby
        self.journal = journal
        #: Serialises ops, standby flushes and failover per shard.
        self.lock = asyncio.Lock()
        self.failovers = 0


class ClusterEngine:
    """Engine facade over N replicated shard nodes (the coordinator)."""

    #: Per-op attempts: initial send, one failover/reconnect retry, and
    #: one final retry after the reconnect client gave up dialing.
    MAX_ATTEMPTS = 3

    def __init__(
        self,
        nodes: Sequence[Address],
        standbys: Optional[Sequence[Optional[Address]]] = None,
        routing: str = "round_robin",
        replica_lag: int = 8,
        journal_dir: Optional[str] = None,
    ) -> None:
        if not nodes:
            raise ConfigurationError("a cluster needs at least one node")
        if routing not in CLUSTER_ROUTING_POLICIES:
            raise ConfigurationError(
                f"unknown routing {routing!r}; expected one of "
                f"{CLUSTER_ROUTING_POLICIES}"
            )
        if standbys is not None and len(standbys) != len(nodes):
            raise ConfigurationError(
                "standbys must align with nodes (use None for shards "
                "without a replica)"
            )
        if replica_lag < 1:
            raise ConfigurationError(
                f"replica_lag must be >= 1, got {replica_lag}"
            )
        self.routing = routing
        self._replica_lag = replica_lag
        self._assignment: Dict[int, int] = {}
        self._next_round_robin = 0
        #: Coordinator-side mirror of published documents, by id, used
        #: to rebuild Notification/result objects from wire id-triples.
        self._documents: Dict[int, Document] = {}
        self._last_query_id: Optional[int] = None
        self._last_doc_id: Optional[int] = None
        self._now = 0.0
        self._failovers = 0
        self._degraded = 0
        self._closed = False
        self.membership = None
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-cluster",
            daemon=True,
        )
        self._thread.start()
        try:
            self._shards: List[ShardState] = self._call(
                self._connect_all(list(nodes), standbys, journal_dir)
            )
        except BaseException:
            self._stop_loop()
            raise

    # -- loop plumbing ------------------------------------------------------

    def _call(self, coro):
        """Run a coroutine on the private loop; block for its result."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)

    async def _connect_all(
        self,
        nodes: List[Address],
        standbys: Optional[Sequence[Optional[Address]]],
        journal_dir: Optional[str],
    ) -> List[ShardState]:
        shards = []
        for index, address in enumerate(nodes):
            primary = await NodeClient.connect(address, jitter_seed=index)
            standby = None
            if standbys is not None and standbys[index] is not None:
                standby = await NodeClient.connect(
                    standbys[index], jitter_seed=1000 + index
                )
            path = (
                os.path.join(journal_dir, f"shard-{index}.journal")
                if journal_dir is not None
                else None
            )
            shards.append(
                ShardState(index, primary, standby, OpJournal(path))
            )
        return shards

    # -- introspection ------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def query_count(self) -> int:
        return len(self._assignment)

    def shard_of(self, query_id: int) -> int:
        shard = self._assignment.get(query_id)
        if shard is None:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        return shard

    def query_id_floor(self) -> int:
        last = self._last_query_id
        return 0 if last is None else last + 1

    def doc_id_floor(self) -> int:
        last = self._last_doc_id
        return 0 if last is None else last + 1

    def clock_now(self) -> float:
        return self._now

    def cluster_stats(self) -> Dict[str, Any]:
        """Coordinator-side membership/replication view (no network)."""
        return {
            "nodes": self.n_shards,
            "routing": self.routing,
            "queries": len(self._assignment),
            "documents_mirrored": len(self._documents),
            "failovers": self._failovers,
            "degraded": self._degraded,
            "membership": (
                self.membership.as_dict()
                if self.membership is not None
                else None
            ),
            "shards": [
                {
                    "index": shard.index,
                    "primary": shard.primary.as_dict(),
                    "standby": (
                        shard.standby.as_dict()
                        if shard.standby is not None
                        else None
                    ),
                    "journal": {
                        "base": shard.journal.base,
                        "end": shard.journal.end,
                        "retained": len(shard.journal),
                    },
                    "failovers": shard.failovers,
                }
                for shard in self._shards
            ],
        }

    # -- replication core ---------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise NodeDownError("cluster engine is closed")

    async def _replay(self, shard: ShardState, notify: bool) -> Optional[List]:
        """Ship everything the current primary has not applied yet.

        Returns the per-entry results for the replayed suffix, or None
        when the primary was already caught up (possible only when a
        previous reply was lost).  A stale tracked offset is refreshed
        once from the node's authoritative ``cluster_stats``.
        """
        node = shard.primary
        entries = shard.journal.entries_since(node.applied)
        try:
            reply = await node.replicate(node.applied, entries, notify)
        except ReplicationError:
            stats = await node.cluster_stats()
            node.applied = int(stats["node"]["applied_offset"])
            entries = shard.journal.entries_since(node.applied)
            if not entries:
                return None
            reply = await node.replicate(node.applied, entries, notify)
        node.applied = int(reply["offset"])
        return reply["results"]

    def _promote(self, shard: ShardState) -> None:
        """Fail the shard over to its standby (caller holds shard.lock)."""
        dead = shard.primary
        shard.primary = shard.standby
        shard.standby = None
        shard.failovers += 1
        self._failovers += 1
        asyncio.ensure_future(dead.close())

    def _degrade(self, shard: ShardState) -> None:
        """Drop a dead standby; the shard keeps serving unreplicated."""
        standby = shard.standby
        shard.standby = None
        self._degraded += 1
        asyncio.ensure_future(standby.close())

    async def _apply_locked(
        self, shard: ShardState, notify: bool
    ) -> Optional[Any]:
        """Drive the journal tail onto a live primary, failing over as
        needed; returns the newest entry's result."""
        last_error: Optional[Exception] = None
        for _attempt in range(self.MAX_ATTEMPTS):
            try:
                results = await self._replay(shard, notify)
            except (ConnectionError, OSError) as exc:
                last_error = exc
                if shard.standby is not None:
                    self._promote(shard)
                continue
            await self._flush_standby(shard)
            return results[-1] if results else None
        raise NodeDownError(
            f"shard {shard.index}: primary unreachable and no standby "
            f"left to promote"
        ) from last_error

    async def _apply(
        self, shard: ShardState, entry: List[Any], notify: bool = True
    ) -> Optional[Any]:
        """Journal one op (acceptance), then drive it onto the shard."""
        async with shard.lock:
            shard.journal.append(entry)
            return await self._apply_locked(shard, notify)

    async def _flush_standby(
        self, shard: ShardState, force: bool = False
    ) -> None:
        """Stream the journal tail to the standby once lag ≥ threshold.

        After a successful flush the journal is truncated to the slowest
        consumer's offset.  A standby that stops answering is dropped
        (degraded mode) — truncation then stops at the primary's offset,
        so a replacement standby can still be seeded via ``handoff``.
        """
        standby = shard.standby
        if standby is None:
            shard.journal.truncate_to(shard.primary.applied)
            return
        lag = shard.journal.end - standby.applied
        if lag <= 0 or (not force and lag < self._replica_lag):
            return
        entries = shard.journal.entries_since(standby.applied)
        try:
            reply = await standby.replicate(
                standby.applied, entries, notify=False
            )
            standby.applied = int(reply["offset"])
        except ReplicationError:
            try:
                stats = await standby.cluster_stats()
                standby.applied = int(stats["node"]["applied_offset"])
            except (ConnectionError, OSError):
                self._degrade(shard)
            return
        except (ConnectionError, OSError, ReproError):
            self._degrade(shard)
            return
        shard.journal.truncate_to(
            min(shard.primary.applied, standby.applied)
        )

    def flush_replication(self) -> None:
        """Force every standby up to date (tests, pre-shutdown barrier)."""
        self._check_open()
        self._call(self._flush_all())

    def sever(self, shard_index: int) -> None:
        """Drop the TCP connection to a shard's primary (chaos harness).

        Simulates a transient network partition: the node process stays
        alive, so the reconnecting client dials back with backoff and
        the next op waits out the blip instead of failing over.
        """
        self._check_open()
        client = self._shards[shard_index].primary.client
        self._loop.call_soon_threadsafe(client.abort_connection)

    async def _flush_all(self) -> None:
        for shard in self._shards:
            async with shard.lock:
                await self._flush_standby(shard, force=True)

    # -- routing ------------------------------------------------------------

    def _route(self, query: DasQuery) -> int:
        if self.routing == "round_robin":
            shard = self._next_round_robin
            self._next_round_robin = (shard + 1) % self.n_shards
            return shard
        return query.query_id % self.n_shards

    # -- engine facade ------------------------------------------------------

    def subscribe(self, query: DasQuery) -> List[Document]:
        self._check_open()
        if query.query_id in self._assignment:
            raise DuplicateQueryError(
                f"query {query.query_id} already subscribed"
            )
        if (
            self._last_query_id is not None
            and query.query_id <= self._last_query_id
        ):
            # The coordinator is the id sequencer: reject out-of-order
            # ids *before* journaling, so journal replay never fails.
            raise QueryOrderError(
                f"query id {query.query_id} is not greater than "
                f"{self._last_query_id}"
            )
        return self._call(self._subscribe_async(query))

    async def _subscribe_async(self, query: DasQuery) -> List[Document]:
        shard_index = self._route(query)
        shard = self._shards[shard_index]
        options: Dict[str, Any] = {}
        if query.location is not None:
            options["location"] = list(query.location)
        if query.window is not None:
            options["window"] = query.window
        result = await self._apply(
            shard, subscribe_entry(query.query_id, query.terms, options)
        )
        self._assignment[query.query_id] = shard_index
        self._last_query_id = query.query_id
        if result is None:
            reply = await shard.primary.request(
                {"op": "results", "query_id": query.query_id}
            )
            result = [int(p["doc_id"]) for p in reply["results"]]
        return [self._documents[doc_id] for doc_id in result]

    def unsubscribe(self, query_id: int) -> None:
        self._check_open()
        shard_index = self.shard_of(query_id)
        self._call(
            self._apply(
                self._shards[shard_index], unsubscribe_entry(query_id)
            )
        )
        del self._assignment[query_id]

    def publish(self, document: Document) -> List[Notification]:
        return self.publish_batch([document])

    def publish_batch(
        self, documents: Iterable[Document]
    ) -> List[Notification]:
        """Broadcast a batch to every shard; merge in document order.

        One journal entry per shard carries the full batch (explicit
        ids and timestamps, so replay is exact); the per-shard
        notification id-triples come back in the ``replicate`` reply
        and are interleaved document-major / shard-minor against the
        coordinator's document mirror — the same merge as
        :meth:`ShardedDasEngine.publish_batch`, hence identical output.
        """
        self._check_open()
        docs = list(documents)
        if not docs:
            return []
        for document in docs:
            if (
                self._last_doc_id is not None
                and document.doc_id <= self._last_doc_id
            ):
                raise DocumentOrderError(
                    f"document id {document.doc_id} is not greater than "
                    f"{self._last_doc_id}"
                )
            if document.created_at < self._now:
                raise DocumentOrderError(
                    f"document {document.doc_id} timestamp "
                    f"{document.created_at} precedes {self._now}"
                )
            self._last_doc_id = document.doc_id
            self._now = document.created_at
        for document in docs:
            self._documents[document.doc_id] = document
        entry = publish_entry(
            [document_payload(document) for document in docs]
        )
        per_shard = self._call(self._broadcast_publish(entry))
        merged: List[Notification] = []
        positions = [0] * len(per_shard)
        documents_by_id = self._documents
        for document in docs:
            doc_id = document.doc_id
            for index, stream in enumerate(per_shard):
                position = positions[index]
                while (
                    position < len(stream) and stream[position][1] == doc_id
                ):
                    query_id, _, replaced_id = stream[position]
                    merged.append(
                        Notification(
                            query_id,
                            document,
                            documents_by_id[replaced_id]
                            if replaced_id is not None
                            else None,
                        )
                    )
                    position += 1
                positions[index] = position
        return merged

    async def _broadcast_publish(self, entry: List[Any]) -> List[List]:
        results = await asyncio.gather(
            *[self._apply(shard, entry) for shard in self._shards]
        )
        # A lost-reply edge (degraded shard, see module docstring) can
        # surface as None: state is applied, triples are unavailable.
        return [result if result is not None else [] for result in results]

    def results(self, query_id: int) -> List[Document]:
        self._check_open()
        return self._call(self._results_async(query_id))

    async def _results_async(self, query_id: int) -> List[Document]:
        shard = self._shards[self.shard_of(query_id)]
        async with shard.lock:
            last_error: Optional[Exception] = None
            for _attempt in range(self.MAX_ATTEMPTS):
                try:
                    await self._replay(shard, notify=False)
                    reply = await shard.primary.request(
                        {"op": "results", "query_id": query_id}
                    )
                except (ConnectionError, OSError) as exc:
                    last_error = exc
                    if shard.standby is not None:
                        self._promote(shard)
                    continue
                return [
                    self._documents[int(p["doc_id"])]
                    for p in reply["results"]
                ]
            raise NodeDownError(
                f"shard {shard.index}: primary unreachable and no "
                f"standby left to promote"
            ) from last_error

    # -- observability ------------------------------------------------------

    @property
    def counters(self) -> Counters:
        """Aggregated engine counters across shard primaries."""
        self._check_open()
        total = Counters()
        for node_stats in self._call(self._gather_node_stats()):
            shard_counters = Counters()
            shard_counters.load(node_stats["counters"])
            total = total + shard_counters
        # docs_published is per-shard (broadcast); report logical docs.
        total.docs_published //= self.n_shards
        return total

    def telemetry_snapshot(self) -> Optional[Dict]:
        """Coordinator-side merge of per-node telemetry (PR 5 algebra)."""
        self._check_open()
        snapshots = [
            node_stats["telemetry"]
            for node_stats in self._call(self._gather_node_stats())
        ]
        snapshots = [s for s in snapshots if s is not None]
        if not snapshots:
            return None
        return merge_snapshots(snapshots)

    async def _gather_node_stats(self) -> List[Dict]:
        async def one(shard: ShardState) -> Dict:
            async with shard.lock:
                reply = await shard.primary.cluster_stats()
                return reply["node"]

        return list(
            await asyncio.gather(*[one(shard) for shard in self._shards])
        )

    # -- persistence --------------------------------------------------------

    def checkpoint(self) -> Dict:
        """Fan out checkpoints to every primary; combine as a sharded
        dict, byte-compatible with :func:`~repro.persistence.checkpoint.
        checkpoint_sharded` — a cluster can be restored in-process, in
        worker processes, or on fresh nodes (:meth:`from_checkpoint`)."""
        self._check_open()
        payloads = self._call(self._gather_checkpoints())
        return {
            "version": CHECKPOINT_VERSION,
            "sharded": True,
            "routing": self.routing,
            "assignment": {
                str(query_id): shard
                for query_id, shard in sorted(self._assignment.items())
            },
            "next_round_robin": self._next_round_robin,
            "shards": payloads,
        }

    async def _gather_checkpoints(self) -> List[Dict]:
        async def one(shard: ShardState) -> Dict:
            async with shard.lock:
                # Checkpoint the *journal-consistent* state: flush the
                # primary first so the payload reflects every accepted op.
                await self._replay(shard, notify=False)
                reply = await shard.primary.cluster_stats(checkpoint=True)
                return reply["checkpoint"]

        return list(
            await asyncio.gather(*[one(shard) for shard in self._shards])
        )

    @classmethod
    def from_checkpoint(
        cls,
        payload: Dict,
        nodes: Sequence[Address],
        standbys: Optional[Sequence[Optional[Address]]] = None,
        **kwargs: Any,
    ) -> "ClusterEngine":
        """Seat a sharded checkpoint onto fresh nodes via ``handoff``.

        Accepts payloads from :meth:`checkpoint`,
        :func:`~repro.persistence.checkpoint.checkpoint_sharded` and
        :meth:`~repro.parallel.ParallelShardedEngine.checkpoint` — any
        deployment's file brings up any other deployment.
        """
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version!r} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        if not payload.get("sharded"):
            raise ValueError(
                "expected a sharded checkpoint (single-engine payloads "
                "serve through one node directly)"
            )
        shard_payloads = payload["shards"]
        if len(shard_payloads) != len(nodes):
            raise ConfigurationError(
                f"checkpoint has {len(shard_payloads)} shards but "
                f"{len(nodes)} nodes were given"
            )
        engine = cls(
            nodes,
            standbys=standbys,
            routing=payload["routing"],
            **kwargs,
        )
        engine._assignment = {
            int(query_id): int(shard)
            for query_id, shard in payload["assignment"].items()
        }
        engine._next_round_robin = int(payload["next_round_robin"])
        engine._last_query_id = (
            max(engine._assignment) if engine._assignment else None
        )
        for shard_payload in shard_payloads:
            engine._now = max(engine._now, float(shard_payload["now"]))
            for record in shard_payload["documents"]:
                doc_id = int(record["id"])
                if doc_id not in engine._documents:
                    engine._documents[doc_id] = Document(
                        doc_id,
                        TermVector(
                            {t: int(c) for t, c in record["tf"].items()}
                        ),
                        float(record["t"]),
                        record.get("text"),
                    )
        if engine._documents:
            engine._last_doc_id = max(engine._documents)
        engine._call(engine._handoff_all(shard_payloads))
        return engine

    async def _handoff_all(self, shard_payloads: List[Dict]) -> None:
        for shard, shard_payload in zip(self._shards, shard_payloads):
            async with shard.lock:
                await shard.primary.handoff(
                    shard_payload, shard.journal.end
                )
                shard.primary.applied = shard.journal.end
                if shard.standby is not None:
                    await shard.standby.handoff(
                        shard_payload, shard.journal.end
                    )
                    shard.standby.applied = shard.journal.end

    # -- membership ---------------------------------------------------------

    def start_membership(
        self, interval: float = 0.25, miss_threshold: int = 3
    ) -> "Any":
        """Start the heartbeat loop (proactive failure detection)."""
        from repro.cluster.membership import MembershipMonitor

        self._check_open()
        if self.membership is not None:
            return self.membership
        monitor = MembershipMonitor(
            self, interval=interval, miss_threshold=miss_threshold
        )
        self.membership = monitor
        self._call(monitor.start())
        return monitor

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._call(self._close_async())
        except Exception:
            pass
        self._stop_loop()
        for shard in self._shards:
            shard.journal.close()

    async def _close_async(self) -> None:
        if self.membership is not None:
            await self.membership.stop()
        for shard in self._shards:
            await shard.primary.close()
            if shard.standby is not None:
                await shard.standby.close()

    def __enter__(self) -> "ClusterEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
