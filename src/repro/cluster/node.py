"""One cluster node: a full serving stack plus the replication ops.

A node is nothing cluster-specific — it is the standard
:class:`~repro.server.runtime.ServerRuntime` behind
:class:`~repro.server.tcp.NdjsonTcpServer`; the coordinator drives it
through the ``replicate``/``handoff``/``cluster_stats`` protocol ops
the runtime already implements.  Keeping the node generic means any
running ``repro serve`` instance can be adopted as a cluster node.

``run_node`` is the blocking entry point used by ``repro node`` and by
:class:`~repro.cluster.launcher.NodeProcess`; it prints exactly one
``node listening on HOST:PORT`` line once the socket is bound, which
the launcher parses for ephemeral ports.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.config import EngineConfig, ServerConfig
from repro.core.engine import DasEngine
from repro.server.runtime import ServerRuntime
from repro.server.tcp import NdjsonTcpServer


async def serve_node(
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[EngineConfig] = None,
    server_config: Optional[ServerConfig] = None,
) -> None:
    """Run one node until cancelled."""
    engine = DasEngine(config if config is not None else EngineConfig())
    if server_config is None:
        # Nodes are driven by one coordinator connection; the inline
        # matcher removes the executor handoff from the replicate path.
        server_config = ServerConfig(host=host, port=port)
    runtime = ServerRuntime(engine, server_config)
    await runtime.start()
    server = NdjsonTcpServer(runtime, host, port)
    bound_host, bound_port = await server.start()
    print(f"node listening on {bound_host}:{bound_port}", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
        await runtime.stop()


def run_node(
    host: str = "127.0.0.1",
    port: int = 0,
    method: str = "GIFilter",
    k: int = 30,
) -> int:
    """Blocking node entry point (the ``repro node`` command)."""
    engine_config = DasEngine.for_method(method, k=k).config
    try:
        asyncio.run(serve_node(host, port, config=engine_config))
    except KeyboardInterrupt:
        pass
    return 0
