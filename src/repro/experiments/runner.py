"""Experiment runner: drive an engine through a workload and measure.

``run_method`` is the basic building block used by every figure: load
history, subscribe the query set (timed — Figures 4(b), 5(b), 7(b)),
publish a settle-in segment, then publish the measured segment with
per-document timing and counter deltas.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.metrics.instrumentation import Counters
from repro.experiments.workload import Workload


@dataclass
class MethodRun:
    """Measurements of one engine over one workload."""

    method: str
    #: Mean wall-clock milliseconds per published document (measured
    #: segment only).
    doc_ms: float
    #: Mean wall-clock milliseconds per query insertion.
    insert_ms: float
    #: Work counters accumulated over the measured segment.
    counters: Counters
    #: Per-interval mean doc-processing ms (Figure 4's time axis).
    interval_doc_ms: List[float] = field(default_factory=list)
    #: Structural index report at the end of the run (None for engines
    #: without an index_size_report).
    index_report: Optional[Dict[str, int]] = None

    @property
    def blocks_skipped_ratio(self) -> float:
        total = self.counters.blocks_skipped + self.counters.blocks_visited
        return self.counters.blocks_skipped / total if total else 0.0


def run_method(
    workload: Workload,
    engine_factory: Callable[[], object],
    method_label: str,
    n_intervals: int = 4,
) -> MethodRun:
    """Run one engine through the workload's three stream segments."""
    engine = engine_factory()
    for document in workload.history:
        engine.publish(document)

    insert_start = time.perf_counter()
    for query in workload.queries:
        engine.subscribe(query)
    insert_seconds = time.perf_counter() - insert_start

    for document in workload.settle:
        engine.publish(document)

    counters_before = engine.counters.snapshot()
    measured = workload.measure
    interval_doc_ms: List[float] = []
    interval_size = max(1, len(measured) // n_intervals)
    total_seconds = 0.0
    for start in range(0, len(measured), interval_size):
        chunk = measured[start : start + interval_size]
        chunk_start = time.perf_counter()
        for document in chunk:
            engine.publish(document)
        chunk_seconds = time.perf_counter() - chunk_start
        total_seconds += chunk_seconds
        interval_doc_ms.append(1000.0 * chunk_seconds / len(chunk))

    counters = engine.counters.delta(counters_before)
    index_report = None
    if hasattr(engine, "index_size_report"):
        index_report = engine.index_size_report()
    return MethodRun(
        method=method_label,
        doc_ms=1000.0 * total_seconds / max(1, len(measured)),
        insert_ms=1000.0 * insert_seconds / max(1, len(workload.queries)),
        counters=counters,
        interval_doc_ms=interval_doc_ms,
        index_report=index_report,
    )


def run_das_methods(
    workload: Workload,
    methods: Sequence[str],
    n_intervals: int = 4,
) -> Dict[str, MethodRun]:
    """Run each DAS method (IRT/BIRT/IFilter/GIFilter) on the workload."""
    return {
        method: run_method(
            workload, lambda m=method: workload.make_engine(m), method, n_intervals
        )
        for method in methods
    }
