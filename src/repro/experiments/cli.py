"""Command-line interface: regenerate any of the paper's figures.

Usage::

    python -m repro.experiments.cli list
    python -m repro.experiments.cli run fig6 fig10
    python -m repro.experiments.cli run all --scale tiny --out results/
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Sequence

from repro.experiments import sweeps
from repro.experiments.workload import WorkloadSpec


def _single(fn):
    return lambda spec: [fn(spec)]


def _pair(fn):
    return lambda spec: list(fn(spec))


def _triple(fn):
    return lambda spec: list(fn(spec))


#: figure key -> (description, runner returning a list of result objects)
FIGURES: Dict[str, tuple] = {
    "fig4": ("doc processing & insertion over time (LQD)", _pair(sweeps.time_effect)),
    "fig5": ("effect of # query keywords", _pair(sweeps.query_keywords)),
    "fig6": ("effect of k", _single(sweeps.result_count)),
    "fig7": ("scaling # queries (+ fig8 index size)", _triple(sweeps.query_scale)),
    "tab6": ("user study proxies", lambda spec: [sweeps.user_study(spec)]),
    "fig9": ("vs DisC / MSInc on SQD", _pair(sweeps.other_systems)),
    "fig10": ("effect of block size", _single(sweeps.block_size)),
    "fig11": ("effect of arrival rate", _pair(sweeps.arrival_rate)),
    "fig12": ("effect of alpha", _single(sweeps.alpha_effect)),
    "fig13": ("effect of decaying scale", _single(sweeps.decay_scale)),
    "fig14": ("effect of Phi_max", _single(sweeps.phi_max)),
    "fig15": ("effect of delta_s", _single(sweeps.delta_s)),
    "fig16": ("effect of # document terms", _single(sweeps.doc_terms)),
    "fig17": ("scalability on SQD", _single(sweeps.sqd_scale)),
    "fig18": ("DisC window size", _single(sweeps.window_size)),
    "abl-bound": ("ablation: group bound mode", _single(sweeps.bound_mode_ablation)),
    "abl-aw": ("ablation: aggregated weights", _single(sweeps.agg_weights_ablation)),
    "abl-init": ("ablation: init strategy", _single(sweeps.init_strategy_ablation)),
}

SCALES: Dict[str, WorkloadSpec] = {
    "micro": WorkloadSpec(
        n_queries=300, n_history=500, n_settle=40, n_measure=50, k=10
    ),
    "tiny": sweeps.TINY,
    "small": sweeps.SMALL,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables/figures of Chen & Cong, SIGMOD 2015.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available figures")

    run = commands.add_parser("run", help="run one or more figures")
    run.add_argument(
        "figures",
        nargs="+",
        help="figure keys (see `list`), or 'all'",
    )
    run.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="tiny",
        help="workload scale (default: tiny)",
    )
    run.add_argument(
        "--out",
        default=None,
        help="directory to write tables to (default: stdout only)",
    )
    return parser


def run_figures(
    keys: Sequence[str], scale: str, out_dir: str = None
) -> List[str]:
    """Run the requested figures; return the rendered tables."""
    if "all" in keys:
        keys = list(FIGURES)
    unknown = [key for key in keys if key not in FIGURES]
    if unknown:
        raise SystemExit(
            f"unknown figure(s): {', '.join(unknown)} "
            f"(available: {', '.join(FIGURES)})"
        )
    spec = SCALES[scale]
    rendered: List[str] = []
    for key in keys:
        _description, runner = FIGURES[key]
        for result in runner(spec):
            table = result.format_table()
            rendered.append(table)
            print(table)
            print()
            if out_dir:
                os.makedirs(out_dir, exist_ok=True)
                name = getattr(result, "figure", key)
                name = (
                    str(name)
                    .lower()
                    .replace(" ", "")
                    .replace("(", "_")
                    .replace(")", "")
                    or key
                )
                with open(os.path.join(out_dir, f"{name}.txt"), "w") as handle:
                    handle.write(table + "\n")
    return rendered


def main(argv: Sequence[str] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(key) for key in FIGURES)
        for key, (description, _runner) in FIGURES.items():
            print(f"{key:<{width}}  {description}")
        return 0
    run_figures(args.figures, args.scale, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
