"""Command-line interface: regenerate figures, or serve the engine.

Usage::

    python -m repro.experiments.cli list
    python -m repro.experiments.cli run fig6 fig10
    python -m repro.experiments.cli run all --scale tiny --out results/
    python -m repro.experiments.cli serve --port 8765 --method GIFilter
    python -m repro.experiments.cli metrics --port 8765
    python -m repro.experiments.cli simulate --seed 42
    python -m repro.experiments.cli simulate --seed 7 --plan 'engine.doc@5:raise'
    python -m repro.experiments.cli node --port 0
    python -m repro.experiments.cli cluster --nodes 2 --replicas 1
    python -m repro.experiments.cli simulate --cluster-nodes 2
    python -m repro.experiments.cli serve --eventlog-dir /var/lib/repro
    python -m repro.experiments.cli simulate --scenario kill9-load
    python -m repro.experiments.cli dlq --dir /var/lib/repro
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
from typing import Dict, List, Sequence

from repro.config import METHOD_CONFIGS, SLOW_CONSUMER_POLICIES
from repro.experiments import sweeps
from repro.experiments.workload import WorkloadSpec


def _single(fn):
    return lambda spec: [fn(spec)]


def _pair(fn):
    return lambda spec: list(fn(spec))


def _triple(fn):
    return lambda spec: list(fn(spec))


#: figure key -> (description, runner returning a list of result objects)
FIGURES: Dict[str, tuple] = {
    "fig4": ("doc processing & insertion over time (LQD)", _pair(sweeps.time_effect)),
    "fig5": ("effect of # query keywords", _pair(sweeps.query_keywords)),
    "fig6": ("effect of k", _single(sweeps.result_count)),
    "fig7": ("scaling # queries (+ fig8 index size)", _triple(sweeps.query_scale)),
    "tab6": ("user study proxies", lambda spec: [sweeps.user_study(spec)]),
    "fig9": ("vs DisC / MSInc on SQD", _pair(sweeps.other_systems)),
    "fig10": ("effect of block size", _single(sweeps.block_size)),
    "fig11": ("effect of arrival rate", _pair(sweeps.arrival_rate)),
    "fig12": ("effect of alpha", _single(sweeps.alpha_effect)),
    "fig13": ("effect of decaying scale", _single(sweeps.decay_scale)),
    "fig14": ("effect of Phi_max", _single(sweeps.phi_max)),
    "fig15": ("effect of delta_s", _single(sweeps.delta_s)),
    "fig16": ("effect of # document terms", _single(sweeps.doc_terms)),
    "fig17": ("scalability on SQD", _single(sweeps.sqd_scale)),
    "fig18": ("DisC window size", _single(sweeps.window_size)),
    "abl-bound": ("ablation: group bound mode", _single(sweeps.bound_mode_ablation)),
    "abl-aw": ("ablation: aggregated weights", _single(sweeps.agg_weights_ablation)),
    "abl-init": ("ablation: init strategy", _single(sweeps.init_strategy_ablation)),
}

SCALES: Dict[str, WorkloadSpec] = {
    "micro": WorkloadSpec(
        n_queries=300, n_history=500, n_settle=40, n_measure=50, k=10
    ),
    "tiny": sweeps.TINY,
    "small": sweeps.SMALL,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables/figures of Chen & Cong, SIGMOD 2015.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available figures")

    run = commands.add_parser("run", help="run one or more figures")
    run.add_argument(
        "figures",
        nargs="+",
        help="figure keys (see `list`), or 'all'",
    )
    run.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="tiny",
        help="workload scale (default: tiny)",
    )
    run.add_argument(
        "--out",
        default=None,
        help="directory to write tables to (default: stdout only)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the NDJSON-over-TCP pub/sub server",
        description=(
            "Start the asyncio serving runtime around a DAS engine and "
            "expose it as newline-delimited JSON over TCP "
            "(subscribe/unsubscribe/publish/results/stats)."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8765, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--method",
        choices=sorted(METHOD_CONFIGS),
        default="GIFilter",
        help="engine method (default: GIFilter)",
    )
    serve.add_argument(
        "--k", type=int, default=30, help="results per query (default: 30)"
    )
    serve.add_argument(
        "--mode",
        choices=("decay", "window", "spatial"),
        default="decay",
        help=(
            "ranking/expiry strategy (DESIGN.md §16): decay-diversity "
            "(the paper), count-based sliding window (subscribe option "
            "'window'), or spatial-keyword (subscribe/publish option "
            "'location') (default: decay)"
        ),
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="engine shards; > 1 serves a ShardedDasEngine (default: 1)",
    )
    serve.add_argument(
        "--parallel-workers",
        type=int,
        default=0,
        help=(
            "run the engine as N shard worker processes "
            "(ParallelShardedEngine); overrides --shards (default: 0 = "
            "in-process)"
        ),
    )
    serve.add_argument(
        "--policy",
        choices=SLOW_CONSUMER_POLICIES,
        default="block",
        help="slow-consumer policy for subscriber sessions (default: block)",
    )
    serve.add_argument(
        "--ingest-capacity",
        type=int,
        default=1024,
        help="bound of the publish ingestion queue (default: 1024)",
    )
    serve.add_argument(
        "--outbound-capacity",
        type=int,
        default=64,
        help="bound of each subscriber delivery queue (default: 64)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="cap on the adaptive micro-batch size (default: 64)",
    )
    serve.add_argument(
        "--eventlog-dir",
        default=None,
        help=(
            "enable the durability tier: write-ahead event log, replay "
            "recovery, resume/ack/dlq ops (default: disabled)"
        ),
    )
    serve.add_argument(
        "--eventlog-fsync",
        choices=("always", "batch", "never"),
        default="always",
        help="event-log fsync policy (default: always)",
    )
    serve.add_argument(
        "--eventlog-segment-entries",
        type=int,
        default=512,
        help="entries per event-log segment file (default: 512)",
    )
    serve.add_argument(
        "--eventlog-checkpoint-every",
        type=int,
        default=0,
        help=(
            "checkpoint + truncate the log every N appends "
            "(default: 0 = never; recovery replays the whole log)"
        ),
    )
    serve.add_argument(
        "--outbox-capacity",
        type=int,
        default=256,
        help=(
            "retained notifications per durable subscriber before the "
            "oldest is dead-lettered (default: 256)"
        ),
    )
    serve.add_argument(
        "--dlq-max-attempts",
        type=int,
        default=3,
        help=(
            "redeliveries before a notification is dead-lettered "
            "(default: 3)"
        ),
    )
    serve.add_argument(
        "--throttle-rate",
        type=float,
        default=0.0,
        help=(
            "per-client publish token-bucket refill rate per second "
            "(default: 0 = unthrottled)"
        ),
    )
    serve.add_argument(
        "--throttle-burst",
        type=int,
        default=8,
        help="token-bucket burst capacity (default: 8)",
    )

    node = commands.add_parser(
        "node",
        help="run one cluster shard node",
        description=(
            "Start a single shard node: a DAS engine behind the serving "
            "runtime and NDJSON TCP, driven by a cluster coordinator "
            "through the replicate/handoff/cluster_stats ops.  Prints "
            "'node listening on HOST:PORT' once bound."
        ),
    )
    node.add_argument("--host", default="127.0.0.1", help="bind address")
    node.add_argument(
        "--port", type=int, default=0, help="bind port (default: ephemeral)"
    )
    node.add_argument(
        "--method",
        choices=sorted(METHOD_CONFIGS),
        default="GIFilter",
        help="engine method (default: GIFilter)",
    )
    node.add_argument(
        "--k", type=int, default=30, help="results per query (default: 30)"
    )

    cluster = commands.add_parser(
        "cluster",
        help="run a multi-node cluster behind one coordinator endpoint",
        description=(
            "Launch N shard node processes (plus optional standby "
            "replicas), connect a coordinator that partitions queries, "
            "fans publishes out, journals every accepted op and fails "
            "over to standbys, and expose the whole cluster as one "
            "NDJSON TCP endpoint."
        ),
    )
    cluster.add_argument("--host", default="127.0.0.1", help="bind address")
    cluster.add_argument(
        "--port", type=int, default=8765, help="bind port (0 = ephemeral)"
    )
    cluster.add_argument(
        "--nodes", type=int, default=2, help="shard nodes (default: 2)"
    )
    cluster.add_argument(
        "--replicas",
        type=int,
        choices=(0, 1),
        default=1,
        help="standby replicas per shard (default: 1)",
    )
    cluster.add_argument(
        "--method",
        choices=sorted(METHOD_CONFIGS),
        default="GIFilter",
        help="engine method on every node (default: GIFilter)",
    )
    cluster.add_argument(
        "--k", type=int, default=30, help="results per query (default: 30)"
    )
    cluster.add_argument(
        "--routing",
        choices=("round_robin", "hash"),
        default="round_robin",
        help="query routing policy (default: round_robin)",
    )
    cluster.add_argument(
        "--replica-lag",
        type=int,
        default=8,
        help="journal entries a standby may trail before a flush (default: 8)",
    )
    cluster.add_argument(
        "--journal-dir",
        default=None,
        help="directory for write-ahead journal files (default: in-memory)",
    )

    metrics = commands.add_parser(
        "metrics",
        help="scrape a running server's metrics (Prometheus text)",
        description=(
            "Connect to a running serve instance, issue one 'metrics' "
            "request, and print the Prometheus text exposition: engine "
            "work counters, per-stage latency histograms, span "
            "accounting, and filtering-effectiveness gauges."
        ),
    )
    metrics.add_argument(
        "--host", default="127.0.0.1", help="server address"
    )
    metrics.add_argument(
        "--port", type=int, default=8765, help="server port (default: 8765)"
    )

    simulate = commands.add_parser(
        "simulate",
        help="run the deterministic fault-injection harness",
        description=(
            "Run seeded chaos simulations against the serving runtime with "
            "per-op invariant checking (result-set size, Lemma 1 replacement "
            "ordering, filtering-bound soundness, oracle equivalence, "
            "crash-recovery replay).  Output is a JSON report that is "
            "byte-for-byte identical across invocations with the same "
            "arguments."
        ),
    )
    simulate.add_argument(
        "--seed", type=int, default=0, help="simulation seed (default: 0)"
    )
    simulate.add_argument(
        "--ops",
        type=int,
        default=80,
        help="operations per scenario (default: 80)",
    )
    simulate.add_argument(
        "--mode",
        choices=("decay", "window", "spatial"),
        default="decay",
        help=(
            "engine ranking/expiry mode the chaos run exercises: 'decay' "
            "(the paper's recency-decayed DR score), 'window' (count-based "
            "sliding window with re-selection on expiry) or 'spatial' "
            "(grid-pruned spatial-keyword scoring); default: decay"
        ),
    )
    simulate.add_argument(
        "--plan",
        default=None,
        help=(
            "run one scenario with this fault plan instead of the default "
            "suite, e.g. 'engine.doc@5:raise; consumer.pull@2:stall(4)'"
        ),
    )
    simulate.add_argument(
        "--parallel-workers",
        type=int,
        default=0,
        help=(
            "instead of the default suite, run the worker-crash scenarios "
            "against a ParallelShardedEngine with N worker processes"
        ),
    )
    simulate.add_argument(
        "--cluster-nodes",
        type=int,
        default=0,
        help=(
            "instead of the default suite, run the node-kill/partition "
            "scenarios against a live N-node cluster (real processes)"
        ),
    )
    simulate.add_argument(
        "--scenario",
        choices=("kill9-load",),
        default=None,
        help=(
            "instead of the default suite, run one named chaos "
            "scenario; 'kill9-load' SIGKILLs a real serve process "
            "under publish load and proves zero accepted-op loss "
            "from the event log"
        ),
    )
    simulate.add_argument(
        "--kills",
        type=int,
        default=2,
        help="SIGKILL/restart cycles for --scenario kill9-load (default: 2)",
    )
    simulate.add_argument(
        "--report",
        default=None,
        help="also write the JSON report to this path",
    )

    dlq = commands.add_parser(
        "dlq",
        help="inspect a server's dead-letter queue offline",
        description=(
            "Read the dead-letter segment of an event-log directory "
            "(no server required) and print per-reason/per-subscriber "
            "counts plus the newest entries."
        ),
    )
    dlq.add_argument(
        "--dir",
        required=True,
        help="event-log directory (the serve --eventlog-dir value)",
    )
    dlq.add_argument(
        "--limit",
        type=int,
        default=10,
        help="newest entries to print in full (default: 10)",
    )
    return parser


def build_serve_runtime(args):
    """Build the (runtime, tcp server) pair for the ``serve`` command."""
    from repro.config import ServerConfig
    from repro.core.engine import DasEngine
    from repro.distributed import ShardedDasEngine
    from repro.server import NdjsonTcpServer, ServerRuntime

    parallel_workers = getattr(args, "parallel_workers", 0)
    mode = getattr(args, "mode", "decay")
    if parallel_workers > 1:
        # The runtime wraps the fresh engine into worker processes and
        # owns their lifecycle (ServerConfig.parallel_workers).
        engine = DasEngine.for_method(args.method, k=args.k, mode=mode)
    elif args.shards > 1:
        base = DasEngine.for_method(args.method, k=args.k, mode=mode)
        engine = ShardedDasEngine(args.shards, base.config)
    else:
        engine = DasEngine.for_method(args.method, k=args.k, mode=mode)
    config = ServerConfig(
        ingest_capacity=args.ingest_capacity,
        outbound_capacity=args.outbound_capacity,
        max_batch_size=args.max_batch,
        slow_consumer_policy=args.policy,
        host=args.host,
        port=args.port,
        parallel_workers=parallel_workers if parallel_workers > 1 else 0,
        eventlog_dir=getattr(args, "eventlog_dir", None),
        eventlog_fsync=getattr(args, "eventlog_fsync", "always"),
        eventlog_segment_entries=getattr(
            args, "eventlog_segment_entries", 512
        ),
        eventlog_checkpoint_every=getattr(
            args, "eventlog_checkpoint_every", 0
        ),
        outbox_capacity=getattr(args, "outbox_capacity", 256),
        dlq_max_attempts=getattr(args, "dlq_max_attempts", 3),
        throttle_rate=getattr(args, "throttle_rate", 0.0),
        throttle_burst=getattr(args, "throttle_burst", 8),
    )
    runtime = ServerRuntime(engine, config)
    return runtime, NdjsonTcpServer(runtime)


async def _serve(args) -> None:
    runtime, server = build_serve_runtime(args)
    await runtime.start()
    host, port = await server.start()
    print(f"serving {args.method} (k={args.k}) on {host}:{port}", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
        await runtime.stop()


def run_serve(args) -> int:
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    return 0


def run_node(args) -> int:
    from repro.cluster import run_node as node_main

    return node_main(
        host=args.host, port=args.port, method=args.method, k=args.k
    )


async def _cluster_serve(args, engine) -> None:
    from repro.config import ServerConfig
    from repro.server import NdjsonTcpServer, ServerRuntime

    runtime = ServerRuntime(
        engine, ServerConfig(host=args.host, port=args.port)
    )
    await runtime.start()
    server = NdjsonTcpServer(runtime)
    host, port = await server.start()
    print(
        f"cluster serving {args.nodes} nodes "
        f"(replicas={args.replicas}) on {host}:{port}",
        flush=True,
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
        await runtime.stop()


def run_cluster(args) -> int:
    from repro.cluster import launch_cluster

    engine, primaries, standbys = launch_cluster(
        args.nodes,
        replicas=args.replicas,
        method=args.method,
        k=args.k,
        routing=args.routing,
        replica_lag=args.replica_lag,
        journal_dir=args.journal_dir,
    )
    engine.start_membership()
    try:
        asyncio.run(_cluster_serve(args, engine))
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        engine.close()
        for node in primaries + [s for s in standbys if s is not None]:
            node.stop()
    return 0


async def _metrics(args) -> str:
    from repro.server import NdjsonTcpClient

    client = await NdjsonTcpClient.connect(args.host, args.port)
    try:
        return await client.metrics()
    finally:
        await client.close()


def run_metrics(args) -> int:
    text = asyncio.run(_metrics(args))
    print(text, end="" if text.endswith("\n") else "\n")
    return 0


def run_simulate(args) -> int:
    """Run the fault-injection harness; exit non-zero on any violation."""
    import json

    from repro.simulation import (
        SimulationHarness,
        run_default_suite,
        run_parallel_crash_suite,
    )
    from repro.simulation.harness import default_engine_config

    mode = getattr(args, "mode", "decay")
    engine_config = None
    if mode != "decay":
        # Small strategy-mode engine mirroring the decay default's scale:
        # a 16-document window / 4x4 grid keeps expiries and cell skips
        # frequent within an 80-op schedule.
        engine_config = default_engine_config(
            mode=mode, window_size=16, spatial_cells=4
        )

    if getattr(args, "scenario", None) == "kill9-load":
        from repro.simulation.eventlog import run_kill9_suite

        report = run_kill9_suite(
            args.seed, ops=args.ops, kills=args.kills
        )
    elif getattr(args, "cluster_nodes", 0) > 0:
        from repro.simulation.cluster import run_cluster_crash_suite

        report = run_cluster_crash_suite(
            args.seed, ops=args.ops, nodes=args.cluster_nodes
        )
    elif getattr(args, "parallel_workers", 0) > 0:
        report = run_parallel_crash_suite(
            args.seed, ops=args.ops, workers=args.parallel_workers
        )
    elif args.plan is not None:
        report = SimulationHarness(
            args.seed,
            ops=args.ops,
            fault_plan=args.plan,
            engine_config=engine_config,
        ).run()
    else:
        report = run_default_suite(
            args.seed, ops=args.ops, engine_config=engine_config
        )
    text = json.dumps(report, sort_keys=True, indent=2)
    print(text)
    if args.report:
        directory = os.path.dirname(args.report)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.report, "w") as handle:
            handle.write(text + "\n")
    return 0 if report["ok"] else 1


def run_dlq(args) -> int:
    """Offline DLQ inspection: counts plus the newest entries."""
    import json

    from repro.eventlog import read_dlq

    entries = read_dlq(args.dir)
    by_reason: Dict[str, int] = {}
    by_subscriber: Dict[str, int] = {}
    for entry in entries:
        by_reason[entry["reason"]] = by_reason.get(entry["reason"], 0) + 1
        by_subscriber[entry["subscriber"]] = (
            by_subscriber.get(entry["subscriber"], 0) + 1
        )
    print(
        json.dumps(
            {
                "directory": args.dir,
                "entries": len(entries),
                "by_reason": by_reason,
                "by_subscriber": by_subscriber,
                "newest": entries[-max(0, args.limit) :]
                if args.limit > 0
                else [],
            },
            sort_keys=True,
            indent=2,
        )
    )
    return 0


def run_figures(
    keys: Sequence[str], scale: str, out_dir: str = None
) -> List[str]:
    """Run the requested figures; return the rendered tables."""
    if "all" in keys:
        keys = list(FIGURES)
    unknown = [key for key in keys if key not in FIGURES]
    if unknown:
        raise SystemExit(
            f"unknown figure(s): {', '.join(unknown)} "
            f"(available: {', '.join(FIGURES)})"
        )
    spec = SCALES[scale]
    rendered: List[str] = []
    for key in keys:
        _description, runner = FIGURES[key]
        for result in runner(spec):
            table = result.format_table()
            rendered.append(table)
            print(table)
            print()
            if out_dir:
                os.makedirs(out_dir, exist_ok=True)
                name = getattr(result, "figure", key)
                name = (
                    str(name)
                    .lower()
                    .replace(" ", "")
                    .replace("(", "_")
                    .replace(")", "")
                    or key
                )
                with open(os.path.join(out_dir, f"{name}.txt"), "w") as handle:
                    handle.write(table + "\n")
    return rendered


def main(argv: Sequence[str] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(key) for key in FIGURES)
        for key, (description, _runner) in FIGURES.items():
            print(f"{key:<{width}}  {description}")
        return 0
    if args.command == "serve":
        return run_serve(args)
    if args.command == "node":
        return run_node(args)
    if args.command == "cluster":
        return run_cluster(args)
    if args.command == "metrics":
        return run_metrics(args)
    if args.command == "simulate":
        return run_simulate(args)
    if args.command == "dlq":
        return run_dlq(args)
    run_figures(args.figures, args.scale, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
