"""Standard experimental workload (Section 8.2, scaled).

One place defines the corpus, query sets and engine construction used by
every figure's benchmark, so parameter sweeps vary exactly one knob
against a common baseline.  Scales are chosen for pure Python: thousands
of queries instead of millions, hundreds of measured documents instead
of hours of stream — DESIGN.md §2 records the substitution.

The corpus parameters were calibrated so the synthetic stream matches
the statistics the filtering techniques are sensitive to in the paper's
Twitter dataset: ~1-2 % of random document pairs share a term, head
terms appear in ~7 % of documents, documents carry 4-16 terms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.baselines import DiscEngine, MsIncEngine, NaiveEngine
from repro.config import GroupBoundMode
from repro.core.engine import DasEngine
from repro.core.query import DasQuery
from repro.stream.document import Document
from repro.workloads.corpus import SyntheticTweetCorpus
from repro.workloads.queries import lqd_queries, sqd_queries

#: The four streaming DAS methods, in the paper's usual plotting order.
DAS_METHODS = ("IRT", "BIRT", "IFilter", "GIFilter")


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs of one experiment run (paper's Table 5, scaled)."""

    n_queries: int = 4000
    n_history: int = 4000
    n_settle: int = 200
    n_measure: int = 200
    k: int = 30
    alpha: float = 0.3
    block_size: int = 64
    delta_s: float = 0.5
    phi_max: int = -1  # UNLIMITED
    smoothing_lambda: float = 0.3
    min_query_terms: int = 1
    max_query_terms: int = 5
    #: decay value retained over the whole measured horizon ("decaying
    #: scale" of Section 8.3).
    decay_scale: float = 0.5
    query_set: str = "lqd"  # or "sqd"
    vocab_size: int = 30000
    n_topics: int = 300
    doc_length: tuple = (4, 16)
    term_exponent: float = 0.7
    topic_exponent: float = 0.8
    noise_ratio: float = 0.3
    seed: int = 2015
    #: Eq. 19 estimator mode for GIFilter benches (the paper's verbatim
    #: estimator; the library default is the provably safe STRICT).
    group_bound_mode: GroupBoundMode = GroupBoundMode.PAPER

    def evolve(self, **changes) -> "WorkloadSpec":
        return replace(self, **changes)

    @property
    def horizon(self) -> float:
        """Stream duration in seconds (1 document per second)."""
        return float(self.n_history + self.n_settle + self.n_measure)


@dataclass
class Workload:
    """Materialised documents and queries for one spec."""

    spec: WorkloadSpec
    corpus: SyntheticTweetCorpus
    history: List[Document]
    settle: List[Document]
    measure: List[Document]
    queries: List[DasQuery]

    def make_engine(self, method: str) -> DasEngine:
        """A DAS engine configured for ``method`` under this spec."""
        spec = self.spec
        overrides = dict(
            k=spec.k,
            alpha=spec.alpha,
            block_size=spec.block_size,
            delta_s=spec.delta_s,
            phi_max=spec.phi_max,
            smoothing_lambda=spec.smoothing_lambda,
            group_bound_mode=spec.group_bound_mode,
        )
        engine = DasEngine.for_method(method, **overrides)
        return DasEngine(
            engine.config.with_decay_scale(spec.decay_scale, spec.horizon)
        )

    def make_naive(self) -> NaiveEngine:
        spec = self.spec
        from repro.config import EngineConfig

        config = EngineConfig(
            k=spec.k,
            alpha=spec.alpha,
            smoothing_lambda=spec.smoothing_lambda,
            use_blocks=False,
            use_group_filter=False,
            use_agg_weights=False,
        ).with_decay_scale(spec.decay_scale, spec.horizon)
        return NaiveEngine(config)

    def make_disc(
        self,
        radius: float = 0.45,
        window_size: int = 2000,
        refresh_every: int = 100,
        algorithm: str = "basic",
    ) -> DiscEngine:
        return DiscEngine(
            radius=radius,
            window_size=window_size,
            refresh_every=refresh_every,
            algorithm=algorithm,
        )

    def make_msinc(self) -> MsIncEngine:
        spec = self.spec
        from repro.config import EngineConfig

        config = EngineConfig(
            k=spec.k,
            alpha=spec.alpha,
            smoothing_lambda=spec.smoothing_lambda,
            use_blocks=False,
            use_group_filter=False,
            use_agg_weights=False,
        ).with_decay_scale(spec.decay_scale, spec.horizon)
        return MsIncEngine(config)


def build_workload(spec: Optional[WorkloadSpec] = None) -> Workload:
    """Generate the corpus, stream segments and query set for a spec."""
    spec = spec if spec is not None else WorkloadSpec()
    corpus = SyntheticTweetCorpus(
        vocab_size=spec.vocab_size,
        n_topics=spec.n_topics,
        doc_length=spec.doc_length,
        term_exponent=spec.term_exponent,
        topic_exponent=spec.topic_exponent,
        noise_ratio=spec.noise_ratio,
        seed=spec.seed,
    )
    history = corpus.documents(spec.n_history)
    settle = corpus.documents(
        spec.n_settle, first_id=spec.n_history, start_time=float(spec.n_history)
    )
    measure_start = spec.n_history + spec.n_settle
    measure = corpus.documents(
        spec.n_measure, first_id=measure_start, start_time=float(measure_start)
    )
    if spec.query_set == "lqd":
        queries = lqd_queries(
            corpus,
            spec.n_queries,
            min_terms=spec.min_query_terms,
            max_terms=spec.max_query_terms,
        )
    elif spec.query_set == "sqd":
        queries = sqd_queries(
            corpus.trending_terms(per_topic=2),
            spec.n_queries,
            min_terms=spec.min_query_terms,
            max_terms=spec.max_query_terms,
        )
    else:
        raise ValueError(f"unknown query_set {spec.query_set!r}")
    return Workload(
        spec=spec,
        corpus=corpus,
        history=history,
        settle=settle,
        measure=measure,
        queries=queries,
    )
