"""Parameter sweeps reproducing every table and figure of Section 8.

Each function regenerates one figure/table at a configurable scale.  The
``TINY`` spec keeps the whole suite runnable in minutes of pure Python;
``SMALL`` is roughly 4x larger for overnight runs.  DESIGN.md §4 maps
figures to these functions; EXPERIMENTS.md records measured shapes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.disc import tune_radius
from repro.config import GroupBoundMode
from repro.experiments.results import FigureResult, UserStudyResult
from repro.experiments.runner import MethodRun, run_das_methods, run_method
from repro.experiments.workload import DAS_METHODS, Workload, WorkloadSpec, build_workload
from repro.metrics.quality import (
    QualityReport,
    evaluate_result_set,
    mean_report,
    user_study_table,
)

#: Scaled-down default spec for the benchmark suite (pure Python).
TINY = WorkloadSpec(
    n_queries=1500, n_history=2000, n_settle=100, n_measure=100, k=20
)
#: A larger spec for longer runs.
SMALL = WorkloadSpec(
    n_queries=6000, n_history=6000, n_settle=300, n_measure=300, k=30
)


def _merge(into: Dict[str, Dict], fresh: Dict[str, Dict]) -> None:
    for method, values in fresh.items():
        into.setdefault(method, {}).update(values)


def _sims_per_doc(run: MethodRun) -> float:
    return run.counters.sim_evaluations / max(1, run.counters.docs_published)


def _evals_per_doc(run: MethodRun) -> float:
    return run.counters.queries_evaluated / max(1, run.counters.docs_published)


def work_companions(
    figure: str,
    param_name: str,
    values: Sequence,
    runs_by_value: Dict[object, Dict[str, MethodRun]],
) -> List[FigureResult]:
    """Deterministic work-counter tables attached to a wall-clock figure."""
    sims: Dict[str, Dict[object, float]] = {}
    evals: Dict[str, Dict[object, float]] = {}
    skips: Dict[str, Dict[object, float]] = {}
    for value, runs in runs_by_value.items():
        _merge(sims, {m: {value: _sims_per_doc(r)} for m, r in runs.items()})
        _merge(evals, {m: {value: _evals_per_doc(r)} for m, r in runs.items()})
        _merge(
            skips,
            {
                m: {value: 100.0 * r.blocks_skipped_ratio}
                for m, r in runs.items()
            },
        )
    return [
        FigureResult(
            figure=f"{figure} [work]",
            title="similarity evaluations per document",
            param_name=param_name,
            param_values=list(values),
            series=sims,
            unit="sims/doc",
        ),
        FigureResult(
            figure=f"{figure} [work]",
            title="queries evaluated per document",
            param_name=param_name,
            param_values=list(values),
            series=evals,
            unit="evals/doc",
        ),
        FigureResult(
            figure=f"{figure} [work]",
            title="blocks skipped by group filtering",
            param_name=param_name,
            param_values=list(values),
            series=skips,
            unit="% of blocks",
        ),
    ]


def _sweep(
    base: WorkloadSpec,
    param_name: str,
    values: Sequence,
    spec_for,
    methods: Sequence[str] = DAS_METHODS,
    measure=lambda run: run.doc_ms,
    unit: str = "ms/doc",
    figure: str = "",
    title: str = "",
    notes: str = "",
) -> FigureResult:
    """Generic sweep: rebuild the workload per value, run all methods."""
    series: Dict[str, Dict[object, float]] = {}
    runs_by_value: Dict[object, Dict[str, MethodRun]] = {}
    for value in values:
        workload = build_workload(spec_for(base, value))
        runs = run_das_methods(workload, methods)
        runs_by_value[value] = runs
        _merge(
            series,
            {method: {value: measure(run)} for method, run in runs.items()},
        )
    return FigureResult(
        figure=figure,
        title=title,
        param_name=param_name,
        param_values=list(values),
        series=series,
        unit=unit,
        notes=notes,
        companions=work_companions(figure, param_name, values, runs_by_value),
    )


# -- Figure 4: time effect -----------------------------------------------------


def time_effect(
    spec: WorkloadSpec = TINY, n_intervals: int = 6
) -> Tuple[FigureResult, FigureResult]:
    """Figure 4(a, b): doc-processing and insertion cost over time."""
    workload = build_workload(spec)
    runs = run_das_methods(workload, DAS_METHODS, n_intervals=n_intervals)
    intervals = list(range(1, n_intervals + 1))
    doc_series = {
        method: {
            i: run.interval_doc_ms[i - 1]
            for i in intervals
            if i - 1 < len(run.interval_doc_ms)
        }
        for method, run in runs.items()
    }
    insert_series = {
        method: {i: run.insert_ms for i in intervals}
        for method, run in runs.items()
    }
    fig_a = FigureResult(
        figure="Figure 4(a)",
        title="Document processing over time (LQD)",
        param_name="interval",
        param_values=intervals,
        series=doc_series,
        companions=work_companions(
            "Figure 4(a)", "segment", ["measured"], {"measured": runs}
        ),
    )
    fig_b = FigureResult(
        figure="Figure 4(b)",
        title="Query insertion over time (LQD)",
        param_name="interval",
        param_values=intervals,
        series=insert_series,
        unit="ms/query",
        notes="insertion cost is flat over time; reported per interval",
    )
    return fig_a, fig_b


# -- Figure 5: number of query keywords ---------------------------------------


def query_keywords(
    spec: WorkloadSpec = TINY, values: Sequence[int] = (1, 3, 5, 8)
) -> Tuple[FigureResult, FigureResult]:
    """Figure 5(a, b): effect of |q.ψ| on processing and insertion."""
    doc_series: Dict[str, Dict[object, float]] = {}
    insert_series: Dict[str, Dict[object, float]] = {}
    runs_by_value: Dict[object, Dict[str, MethodRun]] = {}
    for value in values:
        workload = build_workload(
            spec.evolve(min_query_terms=1, max_query_terms=value)
        )
        runs = run_das_methods(workload, DAS_METHODS)
        runs_by_value[value] = runs
        _merge(doc_series, {m: {value: r.doc_ms} for m, r in runs.items()})
        _merge(insert_series, {m: {value: r.insert_ms} for m, r in runs.items()})
    fig_a = FigureResult(
        figure="Figure 5(a)",
        title="Effect of # query keywords on document processing",
        param_name="max |q.psi|",
        param_values=list(values),
        series=doc_series,
        companions=work_companions(
            "Figure 5(a)", "max |q.psi|", values, runs_by_value
        ),
    )
    fig_b = FigureResult(
        figure="Figure 5(b)",
        title="Effect of # query keywords on query insertion",
        param_name="max |q.psi|",
        param_values=list(values),
        series=insert_series,
        unit="ms/query",
    )
    return fig_a, fig_b


# -- Figure 6: number of maintained results ------------------------------------


def result_count(
    spec: WorkloadSpec = TINY, values: Sequence[int] = (5, 10, 20, 30)
) -> FigureResult:
    """Figure 6: effect of k on document processing."""
    return _sweep(
        spec,
        "k",
        values,
        lambda base, k: base.evolve(k=k),
        figure="Figure 6",
        title="Effect of # maintained results (k)",
    )


# -- Figures 7-8: number of indexed queries ------------------------------------


def query_scale(
    spec: WorkloadSpec = TINY,
    values: Sequence[int] = (500, 1000, 2000, 4000),
) -> Tuple[FigureResult, FigureResult, FigureResult]:
    """Figures 7(a, b) and 8: scaling the number of indexed queries."""
    doc_series: Dict[str, Dict[object, float]] = {}
    insert_series: Dict[str, Dict[object, float]] = {}
    size_series: Dict[str, Dict[object, float]] = {}
    runs_by_value: Dict[object, Dict[str, MethodRun]] = {}
    for value in values:
        workload = build_workload(spec.evolve(n_queries=value))
        runs = run_das_methods(workload, DAS_METHODS)
        runs_by_value[value] = runs
        _merge(doc_series, {m: {value: r.doc_ms} for m, r in runs.items()})
        _merge(insert_series, {m: {value: r.insert_ms} for m, r in runs.items()})
        _merge(
            size_series,
            {
                m: {value: (r.index_report or {}).get("approx_bytes", 0) / 1e6}
                for m, r in runs.items()
            },
        )
    fig_a = FigureResult(
        figure="Figure 7(a)",
        title="Document processing vs # indexed queries",
        param_name="# queries",
        param_values=list(values),
        series=doc_series,
        companions=work_companions(
            "Figure 7(a)", "# queries", values, runs_by_value
        ),
    )
    fig_b = FigureResult(
        figure="Figure 7(b)",
        title="Query insertion vs # indexed queries",
        param_name="# queries",
        param_values=list(values),
        series=insert_series,
        unit="ms/query",
    )
    fig_c = FigureResult(
        figure="Figure 8",
        title="Index size vs # indexed queries",
        param_name="# queries",
        param_values=list(values),
        series=size_series,
        unit="MB (approx)",
    )
    return fig_a, fig_b, fig_c


# -- Table 6: user study ---------------------------------------------------------


def user_study(
    spec: Optional[WorkloadSpec] = None,
    n_queries: int = 50,
    snapshots: int = 3,
    k: int = 5,
) -> UserStudyResult:
    """Table 6: quality proxies for GIFilter/MSInc (α=0.3, 0.7) and DisC.

    Mirrors Section 8.4.1: trending-topic queries, result sets recorded
    at several timestamps, rated per aspect.  Ratings are automatic
    proxies rescaled to 1-5 across methods (DESIGN.md §2).
    """
    # "We generate 50 subscription queries by choosing 50 trending topics
    # as query keywords": one topic per query.
    base = (spec if spec is not None else TINY).evolve(
        query_set="sqd",
        n_queries=n_queries,
        k=k,
        min_query_terms=1,
        max_query_terms=1,
    )
    workload = build_workload(base)
    reports: Dict[str, List[QualityReport]] = {}

    def record(label, engine, scorer, decay, now):
        for query in workload.queries:
            documents = engine.results(query.query_id)
            if not documents:
                continue
            reports.setdefault(label, []).append(
                evaluate_result_set(query.terms, documents, scorer, decay, now)
            )

    snapshot_points = [
        len(workload.measure) * (i + 1) // snapshots for i in range(snapshots)
    ]

    def drive(label, engine, scorer, decay):
        for document in workload.history:
            engine.publish(document)
        for query in workload.queries:
            engine.subscribe(query)
        for document in workload.settle:
            engine.publish(document)
        for index, document in enumerate(workload.measure, start=1):
            engine.publish(document)
            if index in snapshot_points:
                record(label, engine, scorer, decay, engine.clock.now)

    for alpha in (0.3, 0.7):
        engine = Workload(
            spec=base.evolve(alpha=alpha),
            corpus=workload.corpus,
            history=workload.history,
            settle=workload.settle,
            measure=workload.measure,
            queries=workload.queries,
        ).make_engine("GIFilter")
        drive(f"GIFilter a={alpha}", engine, engine.scorer, engine.decay)

        msinc = Workload(
            spec=base.evolve(alpha=alpha),
            corpus=workload.corpus,
            history=workload.history,
            settle=workload.settle,
            measure=workload.measure,
            queries=workload.queries,
        ).make_msinc()
        drive(f"MSInc a={alpha}", msinc, msinc._scorer, msinc._decay)

    # DisC: tune the radius so queries return ~k results (Sec 8.4.1).
    # Tuning must happen on per-query candidate pools (documents sharing
    # a keyword), not random documents — cross-topic distances are nearly
    # uniform and would push the radius to a degenerate value.
    radii = []
    recent = workload.history[-800:]
    for query in workload.queries:
        matched = [
            document
            for document in recent
            if any(term in document.vector for term in query.terms)
        ][:80]
        if len(matched) >= 2 * k:
            radii.append(tune_radius(matched, target_size=k, algorithm="greedy"))
        if len(radii) >= 8:
            break
    radii.sort()
    radius = radii[len(radii) // 2] if radii else 0.45
    disc = workload.make_disc(radius=radius, algorithm="greedy")
    reference = workload.make_engine("GIFilter")
    drive("DisC", disc, reference.scorer, reference.decay)

    means = {label: mean_report(rs) for label, rs in reports.items()}
    raw = {
        label: {
            "Relevance": report.relevance,
            "Recency": report.recency,
            "Range of Int.": report.range_of_interests,
        }
        for label, report in means.items()
    }
    return UserStudyResult(table=user_study_table(means), raw=raw)


# -- Figure 9: comparison with DisC / MSInc -------------------------------------


def other_systems(
    spec: Optional[WorkloadSpec] = None,
) -> Tuple[FigureResult, FigureResult]:
    """Figure 9(a, b): efficiency vs DisC and MSInc on SQD."""
    if spec is None:
        base = TINY.evolve(query_set="sqd", n_queries=max(200, TINY.n_queries // 4))
    else:
        base = spec.evolve(query_set="sqd")
    workload = build_workload(base)
    runs = run_das_methods(workload, DAS_METHODS)
    runs["DisC"] = run_method(workload, workload.make_disc, "DisC")
    runs["MSInc"] = run_method(workload, workload.make_msinc, "MSInc")
    label = base.n_queries
    fig_a = FigureResult(
        figure="Figure 9(a)",
        title="Document processing vs other diversity-aware systems (SQD)",
        param_name="# queries",
        param_values=[label],
        series={m: {label: r.doc_ms} for m, r in runs.items()},
        notes="DisC amortises periodic re-evaluation over documents",
        companions=work_companions(
            "Figure 9(a)", "# queries", [label], {label: runs}
        ),
    )
    fig_b = FigureResult(
        figure="Figure 9(b)",
        title="Query insertion vs other diversity-aware systems (SQD)",
        param_name="# queries",
        param_values=[label],
        series={m: {label: r.insert_ms} for m, r in runs.items()},
        unit="ms/query",
    )
    return fig_a, fig_b


# -- Figure 10: block size -------------------------------------------------------


def block_size(
    spec: WorkloadSpec = TINY,
    values: Sequence[int] = (16, 64, 256, 1024),
) -> FigureResult:
    """Figure 10: effect of the number of postings per block."""
    return _sweep(
        spec,
        "p_max",
        values,
        lambda base, p: base.evolve(block_size=p),
        methods=("BIRT", "IFilter", "GIFilter"),
        figure="Figure 10",
        title="Effect of block size (postings per block)",
    )


# -- Figure 11: arrival rate -----------------------------------------------------


def arrival_rate(
    spec: WorkloadSpec = TINY,
    values: Sequence[int] = (25, 50, 100, 200),
) -> Tuple[FigureResult, FigureResult]:
    """Figure 11(a, b): total per-minute cost vs arrival rates.

    Processing cost per document is rate-independent, so the per-minute
    cost is rate × per-doc cost; the figure reports the measured total
    time of publishing `rate` documents (a) and inserting `rate` queries
    (b).
    """
    workload = build_workload(spec)
    doc_series: Dict[str, Dict[object, float]] = {}
    insert_series: Dict[str, Dict[object, float]] = {}
    runs = run_das_methods(workload, DAS_METHODS)
    for value in values:
        _merge(
            doc_series,
            {m: {value: r.doc_ms * value / 1000.0} for m, r in runs.items()},
        )
        _merge(
            insert_series,
            {m: {value: r.insert_ms * value / 1000.0} for m, r in runs.items()},
        )
    fig_a = FigureResult(
        figure="Figure 11(a)",
        title="Total document-processing time per minute vs arrival rate",
        param_name="docs/minute",
        param_values=list(values),
        series=doc_series,
        unit="s/minute",
    )
    fig_b = FigureResult(
        figure="Figure 11(b)",
        title="Total query-insertion time per minute vs arrival rate",
        param_name="queries/minute",
        param_values=list(values),
        series=insert_series,
        unit="s/minute",
    )
    return fig_a, fig_b


# -- Figure 12: alpha ------------------------------------------------------------


def alpha_effect(
    spec: WorkloadSpec = TINY,
    values: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
) -> FigureResult:
    """Figure 12: effect of the relevance/diversity trade-off α."""
    return _sweep(
        spec,
        "alpha",
        values,
        lambda base, a: base.evolve(alpha=a),
        figure="Figure 12",
        title="Effect of alpha (relevance weight)",
    )


# -- Figure 13: decaying scale ----------------------------------------------------


def decay_scale(
    spec: WorkloadSpec = TINY,
    values: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
) -> FigureResult:
    """Figure 13: effect of the recency decaying scale."""
    return _sweep(
        spec,
        "decay scale",
        values,
        lambda base, s: base.evolve(decay_scale=s),
        figure="Figure 13",
        title="Effect of the decaying scale",
    )


# -- Figure 14: phi_max -----------------------------------------------------------


def phi_max(
    spec: WorkloadSpec = TINY,
    values: Sequence[int] = (2_000, 10_000, 50_000, -1),
) -> FigureResult:
    """Figure 14: effect of the aggregated-weight memory budget."""
    return _sweep(
        spec,
        "phi_max entries",
        values,
        lambda base, p: base.evolve(phi_max=p),
        methods=("IFilter", "GIFilter"),
        figure="Figure 14",
        title="Effect of Phi_max (AW summary budget; -1 = unlimited)",
    )


# -- Figure 15: delta_s -----------------------------------------------------------


def delta_s(
    spec: WorkloadSpec = TINY,
    values: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
) -> FigureResult:
    """Figure 15: effect of the MCS rebuild threshold δ_s."""
    return _sweep(
        spec,
        "delta_s",
        values,
        lambda base, d: base.evolve(delta_s=d),
        methods=("GIFilter",),
        figure="Figure 15",
        title="Effect of delta_s (MCS rebuild threshold)",
    )


# -- Figure 16: distinct document terms ---------------------------------------------


def doc_terms(
    spec: WorkloadSpec = TINY,
    values: Sequence[int] = (5, 10, 15, 20),
) -> FigureResult:
    """Figure 16: effect of the number of distinct document terms."""
    return _sweep(
        spec,
        "# doc terms",
        values,
        lambda base, n: base.evolve(doc_length=(max(2, n - 2), n + 2)),
        figure="Figure 16",
        title="Effect of # distinct document terms",
    )


# -- Figure 17: SQD scalability ------------------------------------------------------


def sqd_scale(
    spec: WorkloadSpec = TINY,
    values: Sequence[int] = (250, 500, 1000, 2000),
) -> FigureResult:
    """Figure 17: scalability on the SQD query set."""
    return _sweep(
        spec.evolve(query_set="sqd"),
        "# queries",
        values,
        lambda base, n: base.evolve(n_queries=n),
        figure="Figure 17",
        title="Scalability on SQD",
    )


# -- Figure 18: DisC window size -------------------------------------------------------


def window_size(
    spec: Optional[WorkloadSpec] = None,
    values: Sequence[int] = (250, 500, 1000, 2000),
) -> FigureResult:
    """Figure 18: DisC runtime vs sliding window size |W_f|."""
    base = (spec if spec is not None else TINY).evolve(
        query_set="sqd", n_queries=200
    )
    workload = build_workload(base)
    series: Dict[str, Dict[object, float]] = {"DisC": {}}
    for value in values:
        run = run_method(
            workload,
            lambda v=value: workload.make_disc(window_size=v),
            "DisC",
        )
        series["DisC"][value] = run.doc_ms
    return FigureResult(
        figure="Figure 18",
        title="DisC: effect of sliding window size |W_f|",
        param_name="|W_f|",
        param_values=list(values),
        series=series,
    )


# -- Ablations (DESIGN.md §5) ------------------------------------------------------------


def bound_mode_ablation(spec: WorkloadSpec = TINY) -> FigureResult:
    """PAPER vs STRICT group bound: pruning power and result divergence."""
    series: Dict[str, Dict[object, float]] = {}
    divergence = 0
    results_by_mode = {}
    for mode in (GroupBoundMode.PAPER, GroupBoundMode.STRICT):
        workload = build_workload(spec.evolve(group_bound_mode=mode))
        run = run_method(
            workload, lambda: workload.make_engine("GIFilter"), mode.value
        )
        skipped = run.counters.blocks_skipped
        visited = run.counters.blocks_visited
        series[mode.value] = {
            "ms/doc": run.doc_ms,
            "skip%": 100.0 * skipped / max(1, skipped + visited),
        }
    return FigureResult(
        figure="Ablation A1",
        title="Group bound mode: Eq. 19 verbatim (paper) vs strict",
        param_name="metric",
        param_values=["ms/doc", "skip%"],
        series=series,
        unit="mixed",
    )


def init_strategy_ablation(spec: WorkloadSpec = TINY) -> FigureResult:
    """Result-bootstrap strategies (DESIGN.md §6): recent / relevant / greedy.

    Measures subscription cost and the post-settle match rate — a weaker
    bootstrap leaves weak thresholds, so more stream documents displace
    results.
    """
    from repro.core.engine import DasEngine

    workload = build_workload(spec)
    series: Dict[str, Dict[object, float]] = {}
    for strategy in ("recent", "relevant", "greedy"):
        base_engine = workload.make_engine("GIFilter")
        engine = DasEngine(base_engine.config, init_strategy=strategy)
        run = run_method(workload, lambda e=engine: e, strategy)
        series[strategy] = {
            "insert ms/q": run.insert_ms,
            "matches/doc": run.counters.matches
            / max(1, run.counters.docs_published),
            "ms/doc": run.doc_ms,
        }
    return FigureResult(
        figure="Ablation A3",
        title="Result-set initialisation strategy",
        param_name="metric",
        param_values=["insert ms/q", "matches/doc", "ms/doc"],
        series=series,
        unit="mixed",
    )


def agg_weights_ablation(spec: WorkloadSpec = TINY) -> FigureResult:
    """Aggregated term weights on/off at fixed block structure."""
    workload = build_workload(spec)
    runs = {
        "BIRT (no AW)": run_method(
            workload, lambda: workload.make_engine("BIRT"), "BIRT"
        ),
        "IFilter (AW)": run_method(
            workload, lambda: workload.make_engine("IFilter"), "IFilter"
        ),
    }
    series = {
        label: {
            "ms/doc": run.doc_ms,
            "sims/doc": run.counters.sim_evaluations
            / max(1, run.counters.docs_published),
        }
        for label, run in runs.items()
    }
    return FigureResult(
        figure="Ablation A2",
        title="Aggregated term weight summaries on/off",
        param_name="metric",
        param_values=["ms/doc", "sims/doc"],
        series=series,
        unit="mixed",
    )
