"""Result containers and table formatting for experiment sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

Number = Union[int, float]


@dataclass
class FigureResult:
    """One reproduced table/figure: series of values per method.

    ``series`` maps a method label to ``{parameter value: measurement}``;
    ``unit`` names the measurement (e.g. ``"ms/doc"``).
    """

    figure: str
    title: str
    param_name: str
    param_values: List[Number]
    series: Dict[str, Dict[Number, float]]
    unit: str = "ms/doc"
    notes: str = ""
    #: Machine-independent companion tables (work counters) rendered
    #: alongside the wall-clock series — pure-Python wall time is noisy
    #: at benchmark scale, counters are deterministic.
    companions: List["FigureResult"] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the paper-style rows (methods × parameter values)."""
        header_cells = [f"{self.param_name:>14s}"] + [
            f"{value!s:>10s}" for value in self.param_values
        ]
        lines = [
            f"== {self.figure}: {self.title} [{self.unit}] ==",
            " ".join(header_cells),
        ]
        for method, values in self.series.items():
            cells = [f"{method:>14s}"]
            for param in self.param_values:
                value = values.get(param)
                cells.append("         -" if value is None else f"{value:10.3f}")
            lines.append(" ".join(cells))
        if self.notes:
            lines.append(f"   note: {self.notes}")
        for companion in self.companions:
            lines.append("")
            lines.append(companion.format_table())
        return "\n".join(lines)

    def ratio(self, method_a: str, method_b: str) -> Dict[Number, float]:
        """Per-parameter ratio ``method_a / method_b`` (shape checks)."""
        out = {}
        for param in self.param_values:
            a = self.series[method_a].get(param)
            b = self.series[method_b].get(param)
            if a is not None and b not in (None, 0):
                out[param] = a / b
        return out


@dataclass
class UserStudyResult:
    """Table 6: method -> aspect -> 1-5 rating."""

    table: Dict[str, Dict[str, float]]
    raw: Dict[str, Dict[str, float]] = field(default_factory=dict)

    ASPECTS = ("Relevance", "Recency", "Range of Int.", "Overall")

    def format_table(self) -> str:
        lines = [
            "== Table 6: User Study (automatic proxies, 1-5 rescaled) ==",
            f"{'Method':>18s} " + " ".join(f"{a:>14s}" for a in self.ASPECTS),
        ]
        for method, row in self.table.items():
            cells = " ".join(f"{row[a]:14.1f}" for a in self.ASPECTS)
            lines.append(f"{method:>18s} {cells}")
        if self.raw:
            lines.append("-- raw aspect values --")
            aspects = ("Relevance", "Recency", "Range of Int.")
            lines.append(
                f"{'Method':>18s} " + " ".join(f"{a:>14s}" for a in aspects)
            )
            for method, row in self.raw.items():
                cells = " ".join(f"{row[a]:14.4f}" for a in aspects)
                lines.append(f"{method:>18s} {cells}")
        return "\n".join(lines)
