"""Experiment harness: workload specs, runner, per-figure sweeps."""

from repro.experiments.results import FigureResult, UserStudyResult
from repro.experiments.runner import MethodRun, run_das_methods, run_method
from repro.experiments.workload import (
    DAS_METHODS,
    Workload,
    WorkloadSpec,
    build_workload,
)

__all__ = [
    "DAS_METHODS",
    "FigureResult",
    "MethodRun",
    "UserStudyResult",
    "Workload",
    "WorkloadSpec",
    "build_workload",
    "run_das_methods",
    "run_method",
]
