"""Subscriber-facing delivery layer.

The core engine returns notifications from ``publish``; a real
publish/subscribe deployment pushes them to subscriber callbacks or
mailboxes.  This module adds that delivery surface without touching the
engine:

* :class:`Subscription` — a handle binding a DAS query to a delivery
  target and exposing the live result set;
* :class:`Mailbox` — a bounded per-subscriber queue for pull-style
  consumers;
* callback delivery with error isolation (a failing subscriber callback
  never breaks the publishing path).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.core.events import Notification
from repro.core.query import DasQuery
from repro.stream.document import Document

DeliveryCallback = Callable[[Notification], None]


class Mailbox:
    """Bounded FIFO of undelivered notifications for one subscriber.

    When the mailbox overflows, the *oldest* notifications are dropped —
    in a top-k freshness system the newest updates are the valuable ones.
    Dropped counts are tracked so consumers can detect lag.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._items: Deque[Notification] = deque(maxlen=capacity)
        self.dropped = 0
        self._capacity = capacity

    @property
    def capacity(self) -> int:
        return self._capacity

    def push(self, notification: Notification) -> None:
        if len(self._items) == self._capacity:
            self.dropped += 1
        self._items.append(notification)

    def drain(self) -> List[Notification]:
        """Remove and return all pending notifications, oldest first."""
        items = list(self._items)
        self._items.clear()
        return items

    def __len__(self) -> int:
        return len(self._items)


class Subscription:
    """A subscriber's handle on one standing DAS query."""

    def __init__(
        self,
        query: DasQuery,
        service: "object",
        callback: Optional[DeliveryCallback] = None,
        mailbox: Optional[Mailbox] = None,
    ) -> None:
        self.query = query
        self._service = service
        self.callback = callback
        self.mailbox = mailbox
        self.active = True
        self.delivered = 0
        self.callback_errors = 0

    @property
    def query_id(self) -> int:
        return self.query.query_id

    def deliver(self, notification: Notification) -> None:
        """Route one notification to the callback and/or mailbox."""
        if not self.active:
            return
        self.delivered += 1
        if self.mailbox is not None:
            self.mailbox.push(notification)
        if self.callback is not None:
            try:
                self.callback(notification)
            except Exception:
                # Subscriber code must not break the publish path; the
                # error count surfaces the problem to monitoring.
                self.callback_errors += 1

    def results(self) -> List[Document]:
        """Live result set, newest first."""
        return self._service.results(self.query_id)

    def cancel(self) -> None:
        """Unsubscribe; the handle becomes inert."""
        if self.active:
            self._service.unsubscribe(self.query_id)
            self.active = False

    def __repr__(self) -> str:
        state = "active" if self.active else "cancelled"
        return f"Subscription(query={self.query_id}, {state})"
