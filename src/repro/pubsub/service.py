"""PublishSubscribeService: the delivery wrapper around a DAS engine.

Binds subscriber callbacks/mailboxes to DAS queries, routes the engine's
notifications to them on every publish, and auto-assigns query ids so
application code never manages the (strictly increasing) id space.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.core.engine import DasEngine
from repro.core.events import Notification
from repro.core.query import DasQuery
from repro.errors import UnknownQueryError
from repro.pubsub.subscriber import DeliveryCallback, Mailbox, Subscription
from repro.stream.document import Document


class PublishSubscribeService:
    """Callback/mailbox delivery on top of any DAS engine."""

    def __init__(self, engine: Optional[DasEngine] = None) -> None:
        self._engine = engine if engine is not None else DasEngine.for_method(
            "GIFilter"
        )
        self._subscriptions: Dict[int, Subscription] = {}
        self._next_query_id = 0
        self._next_auto_doc_id = 0

    @property
    def engine(self) -> DasEngine:
        return self._engine

    @property
    def subscription_count(self) -> int:
        return len(self._subscriptions)

    # -- subscribing -------------------------------------------------------

    def subscribe(
        self,
        keywords: Union[str, Iterable[str]],
        callback: Optional[DeliveryCallback] = None,
        mailbox_capacity: Optional[int] = None,
    ) -> Subscription:
        """Create a standing subscription.

        ``keywords`` may be a raw string (tokenised) or an iterable of
        terms.  Provide ``callback`` for push delivery, a
        ``mailbox_capacity`` for pull delivery, or both.  The initial
        result set (bootstrapped from the document history) is delivered
        as warm-up notifications.
        """
        query_id = max(self._next_query_id, self._engine_floor())
        if isinstance(keywords, str):
            query = DasQuery.from_text(query_id, keywords)
        else:
            query = DasQuery(query_id, keywords)
        self._next_query_id = query_id + 1
        mailbox = (
            Mailbox(mailbox_capacity) if mailbox_capacity is not None else None
        )
        subscription = Subscription(
            query, self, callback=callback, mailbox=mailbox
        )
        initial = self._engine.subscribe(query)
        self._subscriptions[query_id] = subscription
        for document in reversed(initial):  # oldest first, like the stream
            subscription.deliver(Notification(query_id, document, None))
        return subscription

    def _engine_floor(self) -> int:
        last = self._engine._last_query_id
        return 0 if last is None else last + 1

    def unsubscribe(self, query_id: int) -> None:
        subscription = self._subscriptions.pop(query_id, None)
        if subscription is None:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        subscription.active = False
        self._engine.unsubscribe(query_id)

    def results(self, query_id: int) -> List[Document]:
        return self._engine.results(query_id)

    # -- publishing ------------------------------------------------------------

    def publish(self, document: Document) -> List[Notification]:
        """Publish one document and deliver its notifications."""
        notifications = self._engine.publish(document)
        for notification in notifications:
            subscription = self._subscriptions.get(notification.query_id)
            if subscription is not None:
                subscription.deliver(notification)
        return notifications

    def publish_batch(
        self, documents: Iterable[Document]
    ) -> List[Notification]:
        """Publish a micro-batch and deliver its notifications.

        Delivery order matches sequential :meth:`publish` calls — the
        engine's batched pipeline guarantees an identical notification
        stream.
        """
        notifications = self._engine.publish_batch(documents)
        for notification in notifications:
            subscription = self._subscriptions.get(notification.query_id)
            if subscription is not None:
                subscription.deliver(notification)
        return notifications

    def publish_text(
        self, text: str, created_at: Optional[float] = None
    ) -> List[Notification]:
        """Convenience: tokenise raw text and publish it."""
        return self.publish_texts([text], created_at=created_at)

    def publish_texts(
        self, texts: Iterable[str], created_at: Optional[float] = None
    ) -> List[Notification]:
        """Tokenise raw texts and publish them as one micro-batch.

        Ids are allocated up front for the whole batch (a service-owned
        counter, floored by the engine's store), so auto-assigned ids can
        never collide with each other or with documents the caller
        published directly.
        """
        timestamp = (
            created_at if created_at is not None else self._engine.clock.now
        )
        documents = [
            Document.from_text(self._next_doc_id(), text, timestamp)
            for text in texts
        ]
        return self.publish_batch(documents)

    def _next_doc_id(self) -> int:
        last = getattr(self._engine.store, "_last_id", None)
        floor = 0 if last is None else last + 1
        doc_id = max(self._next_auto_doc_id, floor)
        self._next_auto_doc_id = doc_id + 1
        return doc_id
