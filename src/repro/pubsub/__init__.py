"""Delivery layer: subscriptions, mailboxes, the pub/sub service."""

from repro.pubsub.service import PublishSubscribeService
from repro.pubsub.subscriber import Mailbox, Subscription

__all__ = ["Mailbox", "PublishSubscribeService", "Subscription"]
