"""MSInc: incremental max-sum streaming diversification (Appendix A.3).

Minack et al.'s approach maintains, per query, a set ``S`` of at most
``k`` items and processes each arriving item incrementally: while the
set is under-full the item is added; otherwise the algorithm considers
every exchange ``S ∪ {d_n} \\ {x}`` and keeps the variant with the best
max-sum objective (the same α-blend of relevance+recency and pairwise
dissimilarity as the DAS score, so results are comparable).

Like DisC it was designed for a *single* query: every subscription pays
O(k²) per matching document with no shared work, which is exactly why
Figure 9 shows it an order of magnitude slower than GIFilter.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import EngineConfig
from repro.core.events import Notification
from repro.core.filtering import TIE_EPSILON
from repro.core.query import DasQuery
from repro.errors import DuplicateQueryError, UnknownQueryError
from repro.metrics.instrumentation import Counters
from repro.scoring.diversity import dr_score
from repro.scoring.recency import ExponentialDecay
from repro.scoring.relevance import LanguageModelScorer
from repro.stream.clock import SimulationClock
from repro.stream.document import Document
from repro.text.collection_stats import CollectionStatistics


class MsIncEngine:
    """Per-query incremental max-sum diversification over the stream."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        clock: Optional[SimulationClock] = None,
        stats: Optional[CollectionStatistics] = None,
        counters: Optional[Counters] = None,
    ) -> None:
        self._config = config if config is not None else EngineConfig()
        self._clock = clock if clock is not None else SimulationClock()
        self._stats = stats if stats is not None else CollectionStatistics()
        self._scorer = LanguageModelScorer(
            self._stats, self._config.smoothing_lambda
        )
        self._decay = ExponentialDecay(self._config.decay_base)
        self._queries: Dict[int, DasQuery] = {}
        self._results: Dict[int, List[Document]] = {}
        self.counters = counters if counters is not None else Counters()

    method_name = "MSInc"

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def clock(self) -> SimulationClock:
        return self._clock

    @property
    def query_count(self) -> int:
        return len(self._queries)

    def subscribe(self, query: DasQuery) -> List[Document]:
        if query.query_id in self._queries:
            raise DuplicateQueryError(f"query {query.query_id} already subscribed")
        self._queries[query.query_id] = query
        self._results[query.query_id] = []
        self.counters.queries_subscribed += 1
        return []

    def unsubscribe(self, query_id: int) -> None:
        if query_id not in self._queries:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        del self._queries[query_id]
        del self._results[query_id]

    def results(self, query_id: int) -> List[Document]:
        documents = self._results.get(query_id)
        if documents is None:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        return sorted(documents, key=lambda d: d.doc_id, reverse=True)

    def current_dr(self, query_id: int) -> float:
        query = self._queries[query_id]
        return dr_score(
            query.terms,
            self._results[query_id],
            self._scorer,
            self._decay,
            self._clock.now,
            self._config.alpha,
            self._config.k,
        )

    def publish(self, document: Document) -> List[Notification]:
        if document.created_at > self._clock.now:
            self._clock.advance_to(document.created_at)
        self._stats.add(document.vector)
        self.counters.docs_published += 1
        notifications: List[Notification] = []
        now = self._clock.now
        config = self._config
        vector = document.vector
        for query_id, query in self._queries.items():
            if not any(term in vector for term in query.terms):
                continue
            self.counters.queries_evaluated += 1
            current = self._results[query_id]
            if len(current) < config.k:
                current.append(document)
                self.counters.matches += 1
                notifications.append(Notification(query_id, document, None))
                continue
            objective = dr_score(
                query.terms, current, self._scorer, self._decay, now,
                config.alpha, config.k,
            )
            best_objective = objective
            best_out: Optional[int] = None
            extended = current + [document]
            for out_index in range(len(current)):
                variant = [
                    d for i, d in enumerate(extended) if i != out_index
                ]
                value = dr_score(
                    query.terms, variant, self._scorer, self._decay, now,
                    config.alpha, config.k,
                )
                if value > best_objective + TIE_EPSILON:
                    best_objective = value
                    best_out = out_index
            if best_out is not None:
                removed = current[best_out]
                current.pop(best_out)
                current.append(document)
                self.counters.matches += 1
                notifications.append(
                    Notification(query_id, document, removed)
                )
        return notifications
