"""Brute-force oracles for the strategy modes (DESIGN.md §16).

Same role as :class:`repro.baselines.naive.NaiveEngine` plays for the
decay mode: hopeless at scale, correct by construction.  The optimised
strategy paths inside :class:`~repro.core.engine.DasEngine` — the
incremental promotion-on-expiry bookkeeping of the window mode, the grid
pruning of the spatial mode — must produce byte-identical result sets to
a full re-rank over all live candidates.

Both oracles intentionally share the *scoring* helpers with the engine
(:func:`repro.core.filtering.spatial_score` and friends,
``LanguageModelScorer.trel``) so any divergence the differential tier
catches is in the maintenance logic under test, never float noise.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.config import EngineConfig
from repro.core.events import Notification
from repro.core.filtering import (
    TIE_EPSILON,
    spatial_proximity,
    spatial_score,
)
from repro.core.query import DasQuery
from repro.core.strategies import effective_window
from repro.errors import (
    ConfigurationError,
    DuplicateQueryError,
    UnknownQueryError,
)
from repro.metrics.instrumentation import Counters
from repro.scoring.relevance import LanguageModelScorer
from repro.stream.clock import SimulationClock
from repro.stream.document import Document
from repro.stream.document_store import DocumentStore
from repro.text.collection_stats import CollectionStatistics


class _OracleBase:
    """Shared plumbing: clock, statistics, store, counters."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        clock: Optional[SimulationClock] = None,
        stats: Optional[CollectionStatistics] = None,
        store: Optional[DocumentStore] = None,
        counters: Optional[Counters] = None,
    ) -> None:
        self._config = config if config is not None else EngineConfig()
        self._clock = clock if clock is not None else SimulationClock()
        self._stats = stats if stats is not None else CollectionStatistics()
        self._scorer = LanguageModelScorer(
            self._stats, self._config.smoothing_lambda
        )
        self._store = (
            store
            if store is not None
            else DocumentStore(self._config.store_capacity)
        )
        self._queries: Dict[int, DasQuery] = {}
        self.counters = counters if counters is not None else Counters()

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def clock(self) -> SimulationClock:
        return self._clock

    @property
    def store(self) -> DocumentStore:
        return self._store

    @property
    def query_count(self) -> int:
        return len(self._queries)

    def _ingest(self, document: Document) -> None:
        if document.created_at > self._clock.now:
            self._clock.advance_to(document.created_at)
        self._stats.add(document.vector)
        self._store.add(document)
        self.counters.docs_published += 1


class WindowOracle(_OracleBase):
    """Reference sliding-window engine: re-rank live candidates on read.

    Scores are cached at first encounter exactly like the engine path —
    the re-rank is over *which* candidates are alive and how they order,
    never a re-score — so byte-identity is meaningful.
    """

    method_name = "WindowOracle"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._seq = 0
        #: (seq, doc_id), oldest first, at most ``window_size`` entries.
        self._live = deque()
        #: query id -> {doc_id: (score, seq)} of every encountered match.
        self._scores: Dict[int, Dict[int, Tuple[float, int]]] = {}

    def subscribe(self, query: DasQuery) -> List[Document]:
        if query.query_id in self._queries:
            raise DuplicateQueryError(
                f"query {query.query_id} already subscribed"
            )
        window = effective_window(query, self._config.window_size)
        horizon = self._seq - window
        cached: Dict[int, Tuple[float, int]] = {}
        for seq, doc_id in self._live:
            if seq <= horizon:
                continue
            document = self._store.get(doc_id)
            if any(term in document.vector for term in query.terms):
                cached[doc_id] = (
                    self._scorer.trel(query.terms, document.vector),
                    seq,
                )
        self._queries[query.query_id] = query
        self._scores[query.query_id] = cached
        self.counters.queries_subscribed += 1
        return self.results(query.query_id)

    def unsubscribe(self, query_id: int) -> None:
        if query_id not in self._queries:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        del self._queries[query_id]
        del self._scores[query_id]

    def publish(self, document: Document) -> List[Notification]:
        self._ingest(document)
        self._seq += 1
        seq = self._seq
        self._live.append((seq, document.doc_id))
        self._store.pin(document.doc_id)
        while len(self._live) > self._config.window_size:
            _seq, old_id = self._live.popleft()
            self._store.unpin(old_id)
        vector = document.vector
        notifications: List[Notification] = []
        k = self._config.k
        for query_id, query in self._queries.items():
            cached = self._scores[query_id]
            horizon = seq - effective_window(
                query, self._config.window_size
            )
            prev_top = self._ranked(cached, k)
            expired = {
                doc_id: key
                for doc_id, key in cached.items()
                if key[1] <= horizon
            }
            for doc_id in expired:
                del cached[doc_id]
            mid_top = self._ranked(cached, k)
            # The maintained result set is always the top-k of the live
            # candidates, so promotions after expiry are exactly the
            # re-rank's new entrants: expired members (oldest first) pair
            # with promoted candidates (best first).
            expired_members = sorted(
                (doc_id for doc_id in prev_top if doc_id in expired),
                key=lambda doc_id: expired[doc_id][1],
            )
            promoted = [d for d in mid_top if d not in prev_top]
            for expired_id, promoted_id in zip(expired_members, promoted):
                notifications.append(
                    Notification(
                        query_id,
                        self._store.get(promoted_id),
                        self._store.get(expired_id),
                    )
                )
            if not vector or not any(t in vector for t in query.terms):
                continue
            self.counters.queries_evaluated += 1
            cached[document.doc_id] = (
                self._scorer.trel(query.terms, vector),
                seq,
            )
            new_top = self._ranked(cached, k)
            if document.doc_id in new_top:
                displaced = [d for d in mid_top if d not in new_top]
                notifications.append(
                    Notification(
                        query_id,
                        document,
                        self._store.get(displaced[0]) if displaced else None,
                    )
                )
        return notifications

    @staticmethod
    def _ranked(
        cached: Dict[int, Tuple[float, int]], k: int
    ) -> List[int]:
        return sorted(cached, key=lambda doc_id: cached[doc_id], reverse=True)[
            :k
        ]

    def _top(self, query_id: int) -> List[Tuple[int, Tuple[float, int]]]:
        query = self._queries.get(query_id)
        if query is None:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        horizon = self._seq - effective_window(
            query, self._config.window_size
        )
        cached = self._scores[query_id]
        for doc_id in [
            doc_id
            for doc_id, (_score, seq) in cached.items()
            if seq <= horizon
        ]:
            del cached[doc_id]
        ranked = sorted(
            cached.items(), key=lambda item: item[1], reverse=True
        )
        return ranked[: self._config.k]

    def results(self, query_id: int) -> List[Document]:
        return [
            self._store.get(doc_id) for doc_id, _key in self._top(query_id)
        ]

    def current_dr(self, query_id: int) -> float:
        return sum(key[0] for _doc_id, key in self._top(query_id))


class SpatialOracle(_OracleBase):
    """Reference spatial-keyword engine: every query checked, no grid."""

    method_name = "SpatialOracle"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: query id -> {doc_id: score}, members only.
        self._scores: Dict[int, Dict[int, float]] = {}
        #: query id -> member doc ids, best first by (score, doc_id).
        self._results: Dict[int, List[int]] = {}

    def _score(self, query: DasQuery, document: Document) -> float:
        trel = self._scorer.trel(query.terms, document.vector)
        proximity = spatial_proximity(query.location, document.location)
        return spatial_score(
            proximity, trel, self._config.spatial_weight
        )

    def subscribe(self, query: DasQuery) -> List[Document]:
        if query.query_id in self._queries:
            raise DuplicateQueryError(
                f"query {query.query_id} already subscribed"
            )
        if query.location is None:
            raise ConfigurationError(
                f"query {query.query_id}: spatial mode requires a "
                "query location"
            )
        x, y = query.location
        if not (0.0 <= x <= 1.0 and 0.0 <= y <= 1.0):
            raise ConfigurationError(
                f"query {query.query_id} location {query.location} is "
                "outside the unit square"
            )
        seeds = self._store.recent_matching(
            query.terms, self._config.init_scan_limit
        )
        scores = {
            document.doc_id: self._score(query, document)
            for document in seeds
        }
        result = sorted(
            scores, key=lambda doc_id: (scores[doc_id], doc_id), reverse=True
        )[: self._config.k]
        self._queries[query.query_id] = query
        self._scores[query.query_id] = {
            doc_id: scores[doc_id] for doc_id in result
        }
        self._results[query.query_id] = result
        for doc_id in result:
            self._store.pin(doc_id)
        self.counters.queries_subscribed += 1
        return [self._store.get(doc_id) for doc_id in result]

    def unsubscribe(self, query_id: int) -> None:
        if query_id not in self._queries:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        del self._queries[query_id]
        del self._scores[query_id]
        for doc_id in self._results.pop(query_id):
            self._store.unpin(doc_id)

    def publish(self, document: Document) -> List[Notification]:
        self._ingest(document)
        notifications: List[Notification] = []
        vector = document.vector
        if not vector:
            return notifications
        for query_id, query in self._queries.items():
            if not any(term in vector for term in query.terms):
                continue
            self.counters.queries_evaluated += 1
            score = self._score(query, document)
            scores = self._scores[query_id]
            result = self._results[query_id]
            if len(result) < self._config.k:
                scores[document.doc_id] = score
                result.append(document.doc_id)
                result.sort(
                    key=lambda doc_id: (scores[doc_id], doc_id),
                    reverse=True,
                )
                self._store.pin(document.doc_id)
                self.counters.matches += 1
                notifications.append(Notification(query_id, document, None))
                continue
            worst_id = result[-1]
            if score > scores[worst_id] + TIE_EPSILON:
                del scores[worst_id]
                scores[document.doc_id] = score
                result[-1] = document.doc_id
                result.sort(
                    key=lambda doc_id: (scores[doc_id], doc_id),
                    reverse=True,
                )
                self._store.unpin(worst_id)
                self._store.pin(document.doc_id)
                self.counters.matches += 1
                notifications.append(
                    Notification(
                        query_id, document, self._store.get(worst_id)
                    )
                )
        return notifications

    def results(self, query_id: int) -> List[Document]:
        result = self._results.get(query_id)
        if result is None:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        return [self._store.get(doc_id) for doc_id in result]

    def current_dr(self, query_id: int) -> float:
        result = self._results.get(query_id)
        if result is None:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        scores = self._scores[query_id]
        return sum(scores[doc_id] for doc_id in result)
