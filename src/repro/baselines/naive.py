"""Straightforward DAS processing (Section 3's strawman).

For every published document and every subscribed query the naive engine
recomputes the replacement decision from first principles — O(k²) per
query — with no inverted file, no bounds, and no summaries.  It is
hopeless at scale but *by construction* correct, which makes it the
oracle the optimised engines are tested against: given the same stream,
GIFilter/IFilter/BIRT/IRT must produce exactly the same result sets.

One semantic shared with the optimised engines (and the paper's query
result tables, Table 3): ``TRel(q, d)`` is computed against the
collection statistics at the moment the document enters the result set
and cached — only the decay factor ``T(d)`` changes afterwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import EngineConfig
from repro.core.events import Notification
from repro.core.filtering import TIE_EPSILON
from repro.core.initializer import select_initial_documents
from repro.core.query import DasQuery
from repro.errors import DuplicateQueryError, UnknownQueryError
from repro.metrics.instrumentation import Counters
from repro.scoring.recency import ExponentialDecay
from repro.scoring.relevance import LanguageModelScorer
from repro.stream.clock import SimulationClock
from repro.stream.document import Document
from repro.stream.document_store import DocumentStore
from repro.text.collection_stats import CollectionStatistics
from repro.text.vectors import dissimilarity


class _Result:
    """One result document plus its cached text relevance."""

    __slots__ = ("document", "trel")

    def __init__(self, document: Document, trel: float) -> None:
        self.document = document
        self.trel = trel


class NaiveEngine:
    """Reference DAS engine: full ``DR`` recomputation per query."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        clock: Optional[SimulationClock] = None,
        stats: Optional[CollectionStatistics] = None,
        store: Optional[DocumentStore] = None,
        counters: Optional[Counters] = None,
        init_strategy: str = "relevant",
    ) -> None:
        self._config = config if config is not None else EngineConfig()
        self._clock = clock if clock is not None else SimulationClock()
        self._stats = stats if stats is not None else CollectionStatistics()
        self._scorer = LanguageModelScorer(
            self._stats, self._config.smoothing_lambda
        )
        self._decay = ExponentialDecay(self._config.decay_base)
        self._store = (
            store
            if store is not None
            else DocumentStore(self._config.store_capacity)
        )
        self._queries: Dict[int, DasQuery] = {}
        #: query id -> result rows, oldest first.
        self._results: Dict[int, List[_Result]] = {}
        self._init_strategy = init_strategy
        self.counters = counters if counters is not None else Counters()

    method_name = "Naive"

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def clock(self) -> SimulationClock:
        return self._clock

    @property
    def store(self) -> DocumentStore:
        return self._store

    @property
    def query_count(self) -> int:
        return len(self._queries)

    # -- subscription -------------------------------------------------------

    def subscribe(self, query: DasQuery) -> List[Document]:
        if query.query_id in self._queries:
            raise DuplicateQueryError(f"query {query.query_id} already subscribed")
        seeds = select_initial_documents(
            self._store,
            query.terms,
            self._config.k,
            self._config.init_scan_limit,
            strategy=self._init_strategy,
            scorer=self._scorer,
            decay=self._decay,
            now=self._clock.now,
            alpha=self._config.alpha,
        )
        rows = [
            _Result(document, self._scorer.trel(query.terms, document.vector))
            for document in seeds
        ]
        self._queries[query.query_id] = query
        self._results[query.query_id] = rows
        for document in seeds:
            self._store.pin(document.doc_id)
        self.counters.queries_subscribed += 1
        return list(reversed(seeds))

    def unsubscribe(self, query_id: int) -> None:
        if query_id not in self._queries:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        del self._queries[query_id]
        for row in self._results.pop(query_id):
            self._store.unpin(row.document.doc_id)

    def results(self, query_id: int) -> List[Document]:
        rows = self._results.get(query_id)
        if rows is None:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        return [row.document for row in reversed(rows)]

    def current_dr(self, query_id: int) -> float:
        query = self._queries[query_id]
        if query is None:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        return self._dr(self._results[query_id], self._clock.now)

    # -- scoring ---------------------------------------------------------------

    def _dr(self, rows: List[_Result], now: float) -> float:
        """``DR`` (Eq. 1) over result rows with cached TRel values."""
        config = self._config
        relevance = sum(
            row.trel * self._decay.at(row.document.created_at, now)
            for row in rows
        )
        coeff = 2.0 / (config.k - 1) if config.k > 1 else 0.0
        pairwise = 0.0
        for i in range(len(rows)):
            vec_i = rows[i].document.vector
            for j in range(i + 1, len(rows)):
                pairwise += dissimilarity(vec_i, rows[j].document.vector)
        return config.alpha * relevance + (1.0 - config.alpha) * coeff * pairwise

    # -- document processing ------------------------------------------------------

    def publish(self, document: Document) -> List[Notification]:
        if document.created_at > self._clock.now:
            self._clock.advance_to(document.created_at)
        self._stats.add(document.vector)
        self._store.add(document)
        self.counters.docs_published += 1
        notifications: List[Notification] = []
        now = self._clock.now
        config = self._config
        vector = document.vector
        new_trel_cache: Optional[float] = None
        for query_id, query in self._queries.items():
            if not any(term in vector for term in query.terms):
                continue
            self.counters.queries_evaluated += 1
            rows = self._results[query_id]
            trel_new = self._scorer.trel(query.terms, vector)
            if len(rows) < config.k:
                rows.append(_Result(document, trel_new))
                self._store.pin(document.doc_id)
                self.counters.matches += 1
                notifications.append(Notification(query_id, document, None))
                continue
            candidate = rows[1:] + [_Result(document, trel_new)]
            dr_before = self._dr(rows, now)
            dr_after = self._dr(candidate, now)
            if dr_after > dr_before + TIE_EPSILON:
                evicted = rows[0].document
                self._results[query_id] = candidate
                self._store.unpin(evicted.doc_id)
                self._store.pin(document.doc_id)
                self.counters.matches += 1
                notifications.append(
                    Notification(query_id, document, evicted)
                )
        return notifications
