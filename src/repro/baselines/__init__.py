"""Baselines: the naive oracle, IRT/BIRT, DisC and MSInc.

IRT and BIRT share the DAS engine machinery (they are configuration
points of :class:`~repro.core.engine.DasEngine`); the factories here give
them first-class names matching Appendix A.1.
"""

from repro.baselines.disc import (
    DiscEngine,
    basic_disc,
    greedy_disc,
    tune_radius,
)
from repro.baselines.msinc import MsIncEngine
from repro.baselines.naive import NaiveEngine
from repro.core.engine import DasEngine


def IrtEngine(**config_overrides) -> DasEngine:
    """Inverted file plus query result tables (Appendix A.1)."""
    return DasEngine.for_method("IRT", **config_overrides)


def BirtEngine(**config_overrides) -> DasEngine:
    """Block-based inverted file plus query result tables (Appendix A.1)."""
    return DasEngine.for_method("BIRT", **config_overrides)


__all__ = [
    "BirtEngine",
    "DiscEngine",
    "IrtEngine",
    "MsIncEngine",
    "NaiveEngine",
    "basic_disc",
    "greedy_disc",
    "tune_radius",
]
