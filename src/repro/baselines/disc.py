"""DisC diversity over a sliding window (Appendix A.2).

Drosou & Pitoura's *Dissimilar-and-Covering* subset: given candidates
``P``, select ``S ⊆ P`` such that every candidate is similar (within
radius ``r`` of the angular distance metric) to some member of ``S`` and
no two members are similar to each other.  The paper extends DisC to
standing queries by re-running it per query over a sliding window of the
last ``|W_f|`` stream documents at a fixed refresh period.

Two construction algorithms are provided, as in the original work:

* ``BasicDisC`` — scan candidates in arrival order, select every
  candidate not yet covered (greedy maximal independent set);
* ``GreedyDisC`` — repeatedly select the uncovered candidate covering the
  most uncovered candidates (better quality, slower).

DisC has no ``k`` parameter; :func:`tune_radius` fine-tunes ``r`` so the
average result size matches a target, mirroring Section 8.4.1.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from repro.core.events import Notification
from repro.core.query import DasQuery
from repro.errors import DuplicateQueryError, UnknownQueryError
from repro.metrics.instrumentation import Counters
from repro.stream.clock import SimulationClock
from repro.stream.document import Document
from repro.text.vectors import angular_distance

ALGORITHMS = ("basic", "greedy")


def basic_disc(
    candidates: Sequence[Document], radius: float, counters: Optional[Counters] = None
) -> List[Document]:
    """BasicDisC: arrival-order greedy dissimilar-and-covering subset."""
    selected: List[Document] = []
    covered = [False] * len(candidates)
    for i, candidate in enumerate(candidates):
        if covered[i]:
            continue
        selected.append(candidate)
        covered[i] = True
        for j in range(len(candidates)):
            if not covered[j]:
                if counters is not None:
                    counters.sim_evaluations += 1
                if angular_distance(candidate.vector, candidates[j].vector) <= radius:
                    covered[j] = True
    return selected


def greedy_disc(
    candidates: Sequence[Document], radius: float, counters: Optional[Counters] = None
) -> List[Document]:
    """GreedyDisC: pick the uncovered candidate covering the most others."""
    n = len(candidates)
    if n == 0:
        return []
    # Neighbourhoods under the similarity radius (including self).
    neighbours: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        neighbours[i].append(i)
        for j in range(i + 1, n):
            if counters is not None:
                counters.sim_evaluations += 1
            if angular_distance(candidates[i].vector, candidates[j].vector) <= radius:
                neighbours[i].append(j)
                neighbours[j].append(i)
    uncovered = set(range(n))
    selected: List[Document] = []
    while uncovered:
        best = max(
            uncovered, key=lambda i: sum(1 for j in neighbours[i] if j in uncovered)
        )
        selected.append(candidates[best])
        uncovered -= set(neighbours[best])
    return selected


class DiscEngine:
    """Standing DisC queries over a sliding window of the text stream."""

    def __init__(
        self,
        radius: float = 0.35,
        window_size: int = 2000,
        refresh_every: int = 200,
        algorithm: str = "basic",
        max_candidates: int = 500,
        clock: Optional[SimulationClock] = None,
        counters: Optional[Counters] = None,
    ) -> None:
        if not 0.0 <= radius <= 1.0:
            raise ValueError(f"radius must be in [0, 1], got {radius}")
        if window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {window_size}")
        if refresh_every < 1:
            raise ValueError(f"refresh_every must be >= 1, got {refresh_every}")
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        self.radius = radius
        self.window_size = window_size
        self.refresh_every = refresh_every
        self.algorithm = algorithm
        self.max_candidates = max_candidates
        self._clock = clock if clock is not None else SimulationClock()
        self._window: Deque[Document] = deque(maxlen=window_size)
        self._queries: Dict[int, DasQuery] = {}
        self._results: Dict[int, List[Document]] = {}
        self._since_refresh = 0
        self.counters = counters if counters is not None else Counters()

    method_name = "DisC"

    @property
    def clock(self) -> SimulationClock:
        return self._clock

    @property
    def query_count(self) -> int:
        return len(self._queries)

    def subscribe(self, query: DasQuery) -> List[Document]:
        if query.query_id in self._queries:
            raise DuplicateQueryError(f"query {query.query_id} already subscribed")
        self._queries[query.query_id] = query
        self._results[query.query_id] = self._compute(query)
        self.counters.queries_subscribed += 1
        return list(self._results[query.query_id])

    def unsubscribe(self, query_id: int) -> None:
        if query_id not in self._queries:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        del self._queries[query_id]
        del self._results[query_id]

    def results(self, query_id: int) -> List[Document]:
        documents = self._results.get(query_id)
        if documents is None:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        return list(documents)

    def publish(self, document: Document) -> List[Notification]:
        """Slide the window; refresh all standing queries periodically."""
        if document.created_at > self._clock.now:
            self._clock.advance_to(document.created_at)
        self._window.append(document)
        self.counters.docs_published += 1
        self._since_refresh += 1
        if self._since_refresh < self.refresh_every:
            return []
        self._since_refresh = 0
        return self.refresh()

    def refresh(self) -> List[Notification]:
        """Re-run DisC for every query; emit notifications for new picks."""
        notifications: List[Notification] = []
        for query_id, query in self._queries.items():
            previous_ids = {d.doc_id for d in self._results[query_id]}
            fresh = self._compute(query)
            self._results[query_id] = fresh
            for document in fresh:
                if document.doc_id not in previous_ids:
                    notifications.append(
                        Notification(query_id, document, None)
                    )
        return notifications

    def _compute(self, query: DasQuery) -> List[Document]:
        self.counters.queries_evaluated += 1
        terms = query.terms
        candidates: List[Document] = [
            document
            for document in self._window
            if any(term in document.vector for term in terms)
        ]
        if len(candidates) > self.max_candidates:
            candidates = candidates[-self.max_candidates :]
        if self.algorithm == "basic":
            return basic_disc(candidates, self.radius, self.counters)
        return greedy_disc(candidates, self.radius, self.counters)


def tune_radius(
    candidates: Sequence[Document],
    target_size: int,
    algorithm: str = "greedy",
    iterations: int = 20,
) -> float:
    """Binary-search the radius ``r`` so DisC returns ~``target_size`` items.

    Mirrors the paper's Section 8.4.1 set-up ("we fine-tune the
    similarity threshold r such that the queries return 5 results on
    average").  Larger radii cover more, yielding fewer selections.
    """
    if target_size < 1:
        raise ValueError(f"target_size must be >= 1, got {target_size}")
    build = basic_disc if algorithm == "basic" else greedy_disc
    low, high = 0.0, 1.0
    best_radius = 0.5
    best_gap = float("inf")
    for _ in range(iterations):
        mid = (low + high) / 2.0
        size = len(build(candidates, mid))
        gap = abs(size - target_size)
        if gap < best_gap:
            best_gap = gap
            best_radius = mid
        if size > target_size:
            low = mid  # too many picks: widen the coverage radius
        else:
            high = mid
    return best_radius
