"""Segmented write-ahead event log with rotation and fsync policy.

On-disk layout: a directory of ``events-<base>.seg`` files where
``<base>`` is the 20-digit zero-padded offset of the segment's first
record.  Each segment is JSONL — one ``{"offset": N, "record": {...}}``
object per line — so the files are greppable and a torn tail is exactly
one incomplete last line.

Durability contract:

* Offsets are assigned contiguously from the log's base; an append is
  *accepted* only once its line reached the file (and, under the
  ``always`` fsync policy, the disk).  Callers append **before** applying
  the op, so anything they acknowledged is replayable.
* Opening a directory re-scans every segment in base order.  A malformed
  or gapped line in the *middle* of the history is corruption and raises;
  an incomplete line at the very tail is the signature of a crash
  mid-write and is physically truncated away (the op was never
  acknowledged, dropping it is the correct at-most-once outcome for
  un-acked work).
* ``truncate_to(offset)`` drops whole segments that a checkpoint made
  redundant; the active segment is never deleted.
* ``compact_to(offset)`` additionally rewrites the *head* segment when
  ``offset`` falls inside it, physically reclaiming entries every
  durable subscriber has acked and a checkpoint covers.  The rewrite is
  crash-safe: the surviving suffix is written to a temporary file,
  fsynced, renamed into place and only then is the old segment removed
  — a crash in between leaves an overlapping pair, and the recovery
  scan keeps the earlier (superset) segment and deletes the leftover.

Fsync policies: ``always`` fsyncs once per append call (one fsync covers
a whole ``append_many`` batch), ``batch`` fsyncs on rotation, explicit
:meth:`sync` and :meth:`close`, ``never`` leaves flushing to the OS.

The ``eventlog.fault`` injection point fires on every append call:
``raise`` rejects the batch before any byte is written, ``torn`` writes
half of the first record's line and poisons the handle (the simulated
process must reopen — exactly what a real crash forces).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import InjectedFaultError, ReproError
from repro.eventlog.records import validate_record

#: Segment file naming: events-<20-digit base offset>.seg
SEGMENT_PREFIX = "events-"
SEGMENT_SUFFIX = ".seg"

FSYNC_POLICIES = ("always", "batch", "never")


def segment_name(base: int) -> str:
    return f"{SEGMENT_PREFIX}{base:020d}{SEGMENT_SUFFIX}"


def _parse_segment_base(name: str) -> Optional[int]:
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    digits = name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def _encode_entry(offset: int, record: Dict[str, Any]) -> bytes:
    line = json.dumps(
        {"offset": offset, "record": record}, separators=(",", ":")
    )
    return (line + "\n").encode("utf-8")


class EventLog:
    """Append-only segmented log of accepted operations."""

    def __init__(
        self,
        directory: str,
        fsync: str = "always",
        segment_entries: int = 512,
        injector: Optional[object] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ReproError(
                f"unknown fsync policy {fsync!r}; expected one of "
                f"{FSYNC_POLICIES}"
            )
        if segment_entries < 1:
            raise ReproError(
                f"segment_entries must be >= 1, got {segment_entries}"
            )
        self.directory = directory
        self.fsync_policy = fsync
        self.segment_entries = segment_entries
        self._injector = injector
        self._poisoned = False
        self._closed = False
        # -- accounting -----------------------------------------------
        self.appended = 0
        self.fsyncs = 0
        self.rotations = 0
        self.recovered = 0
        self.torn_dropped = 0
        self.compactions = 0
        self.reclaimed_bytes = 0
        os.makedirs(directory, exist_ok=True)
        #: Retained entries, contiguous from ``self._base``.
        self._entries: List[Dict[str, Any]] = []
        self._base = 0
        #: Per-segment bookkeeping (base offset, entry count), including
        #: the active segment last.
        self._segments: List[List[int]] = []
        self._scan()
        if not self._segments:
            self._segments.append([self._base, 0])
        active_base = self._segments[-1][0]
        self._active_path = os.path.join(directory, segment_name(active_base))
        self._file = open(self._active_path, "ab")

    # -- recovery scan ----------------------------------------------------

    def _scan(self) -> None:
        for name in os.listdir(self.directory):
            # Stray temporaries from a compaction interrupted before its
            # rename; the old segment is still in place, so just drop.
            if name.startswith("compact-") and name.endswith(".tmp"):
                os.remove(os.path.join(self.directory, name))
        names = sorted(
            name
            for name in os.listdir(self.directory)
            if _parse_segment_base(name) is not None
        )
        expected: Optional[int] = None
        for position, name in enumerate(names):
            base = _parse_segment_base(name)
            path = os.path.join(self.directory, name)
            if expected is None:
                self._base = base
                expected = base
            elif base < expected:
                # A compaction renamed its rewritten head segment into
                # place but crashed before removing the original.  The
                # original (scanned first — lower base) is a strict
                # superset, so the rewrite is redundant: delete it and
                # let a later compaction redo the work.
                os.remove(path)
                continue
            elif base != expected:
                raise ReproError(
                    f"event log gap: segment {name} starts at {base}, "
                    f"expected {expected}"
                )
            count, good_bytes, torn = self._scan_segment(path, expected)
            if torn and position != len(names) - 1:
                raise ReproError(
                    f"event log corrupted: segment {name} has a bad line "
                    f"but is not the final segment"
                )
            if torn:
                # Crash mid-write: physically drop the partial tail so
                # post-recovery appends land on a clean line boundary.
                os.truncate(path, good_bytes)
                self.torn_dropped += 1
            self._segments.append([base, count])
            expected += count
        self.recovered = len(self._entries)

    def _scan_segment(
        self, path: str, expected: int
    ) -> Tuple[int, int, bool]:
        """Read one segment; returns (entries, good byte length, torn?)."""
        count = 0
        good_bytes = 0
        with open(path, "rb") as handle:
            for raw in handle:
                bad = not raw.endswith(b"\n")
                if not bad:
                    try:
                        parsed = json.loads(raw.decode("utf-8"))
                        offset = parsed["offset"]
                        record = validate_record(parsed["record"])
                        bad = offset != expected + count
                    except (ValueError, KeyError, TypeError, ReproError):
                        bad = True
                if bad:
                    # A torn tail is the *final* partial line of a crash;
                    # anything after a bad line means the history itself
                    # is damaged and replaying past it would fork state.
                    if handle.read().strip():
                        raise ReproError(
                            f"event log corrupted: {path} has content "
                            f"after a malformed line at offset "
                            f"{expected + count}"
                        )
                    return count, good_bytes, True
                self._entries.append(record)
                count += 1
                good_bytes += len(raw)
        return count, good_bytes, False

    # -- appending --------------------------------------------------------

    @property
    def base(self) -> int:
        """Offset of the oldest retained entry."""
        return self._base

    @property
    def end(self) -> int:
        """Offset the next accepted op will get."""
        return self._base + len(self._entries)

    def append(self, record: Dict[str, Any]) -> int:
        return self.append_many([record])[0]

    def append_many(self, records: Sequence[Dict[str, Any]]) -> List[int]:
        """Durably append records; returns their assigned offsets.

        One call is one durability unit: a single flush (+ fsync under
        ``always``) covers the whole batch, so callers batch the publish
        records of one micro-batch into one call.
        """
        if self._closed:
            raise ReproError("event log is closed")
        if self._poisoned:
            raise ReproError(
                "event log poisoned by a torn write; reopen the directory"
            )
        validated = [validate_record(record) for record in records]
        if not validated:
            return []
        if self._injector is not None:
            try:
                self._injector.fire("eventlog.fault")
            except InjectedFaultError as exc:
                if getattr(exc, "action", "") == "torn":
                    line = _encode_entry(self.end, validated[0])
                    self._file.write(line[: len(line) // 2])
                    self._file.flush()
                    self._poisoned = True
                raise
        offsets = []
        for record in validated:
            if self._segments[-1][1] >= self.segment_entries:
                self._rotate()
            offset = self.end
            self._file.write(_encode_entry(offset, record))
            self._entries.append(record)
            self._segments[-1][1] += 1
            self.appended += 1
            offsets.append(offset)
        self._file.flush()
        if self.fsync_policy == "always":
            os.fsync(self._file.fileno())
            self.fsyncs += 1
        return offsets

    def _rotate(self) -> None:
        self._file.flush()
        if self.fsync_policy in ("always", "batch"):
            os.fsync(self._file.fileno())
            self.fsyncs += 1
        self._file.close()
        base = self.end
        self._segments.append([base, 0])
        self._active_path = os.path.join(self.directory, segment_name(base))
        self._file = open(self._active_path, "ab")
        self.rotations += 1

    def sync(self) -> None:
        """Flush and fsync the active segment regardless of policy."""
        if self._closed:
            return
        self._file.flush()
        if self.fsync_policy != "never":
            os.fsync(self._file.fileno())
            self.fsyncs += 1

    # -- reading ----------------------------------------------------------

    def entries_since(
        self, offset: int
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Retained ``(offset, record)`` pairs with offset >= ``offset``.

        Raises when ``offset`` predates the retained window — the caller
        needs a checkpoint, not a replay.
        """
        start = max(int(offset), 0)
        if start < self._base:
            raise ReproError(
                f"offset {offset} predates the retained log (base "
                f"{self._base}); recover from a checkpoint"
            )
        return [
            (self._base + index, self._entries[index])
            for index in range(start - self._base, len(self._entries))
        ]

    def truncate_to(self, offset: int) -> int:
        """Drop whole segments entirely below ``offset``; returns the new
        base.  A checkpoint at ``offset`` makes everything before it
        redundant; partial segments (and the active one) are retained, so
        the base only moves in segment-sized steps."""
        removed = 0
        while len(self._segments) > 1:
            base, count = self._segments[0]
            if base + count > offset:
                break
            path = os.path.join(self.directory, segment_name(base))
            self.reclaimed_bytes += os.path.getsize(path)
            os.remove(path)
            self._segments.pop(0)
            removed += count
        if removed:
            del self._entries[:removed]
            self._base += removed
        return self._base

    def compact_to(self, offset: int) -> int:
        """Physically reclaim every retained entry below ``offset``.

        Goes one step beyond :meth:`truncate_to`: after whole redundant
        segments are dropped, an ``offset`` that lands *inside* the head
        segment rewrites that segment to its surviving suffix (the
        active segment gets its append handle swapped, like a rotation).
        The caller guarantees nothing below ``offset`` is ever replayed
        again — the runtime passes ``min(checkpoint offset, lowest
        subscriber ack + 1)``.  Returns the bytes reclaimed.
        """
        if self._closed:
            raise ReproError("event log is closed")
        before = self.reclaimed_bytes
        self.truncate_to(offset)
        if offset > self.end:
            offset = self.end
        if offset > self._base:
            head_base, head_count = self._segments[0]
            keep = head_base + head_count - offset
            is_active = len(self._segments) == 1
            old_path = os.path.join(
                self.directory, segment_name(head_base)
            )
            old_size = os.path.getsize(old_path)
            if is_active:
                self._file.flush()
                self._file.close()
            tmp_path = os.path.join(
                self.directory, f"compact-{offset:020d}.tmp"
            )
            drop = offset - self._base
            with open(tmp_path, "wb") as handle:
                for index in range(drop, drop + keep):
                    handle.write(
                        _encode_entry(
                            self._base + index, self._entries[index]
                        )
                    )
                handle.flush()
                if self.fsync_policy != "never":
                    os.fsync(handle.fileno())
                    self.fsyncs += 1
            new_path = os.path.join(self.directory, segment_name(offset))
            # Rename before removing the original: a crash in between
            # leaves an overlapping pair the recovery scan resolves in
            # favour of the original (see _scan).
            os.rename(tmp_path, new_path)
            os.remove(old_path)
            self.reclaimed_bytes += old_size - os.path.getsize(new_path)
            del self._entries[:drop]
            self._segments[0] = [offset, keep]
            self._base = offset
            if is_active:
                self._active_path = new_path
                self._file = open(self._active_path, "ab")
            self.compactions += 1
        return self.reclaimed_bytes - before

    # -- lifecycle / observability ----------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._file.flush()
        if self.fsync_policy != "never":
            os.fsync(self._file.fileno())
            self.fsyncs += 1
        self._file.close()
        self._closed = True

    def stats(self) -> Dict[str, Any]:
        return {
            "directory": self.directory,
            "base": self.base,
            "end": self.end,
            "segments": len(self._segments),
            "segment_entries": self.segment_entries,
            "fsync": self.fsync_policy,
            "appended": self.appended,
            "fsyncs": self.fsyncs,
            "rotations": self.rotations,
            "recovered": self.recovered,
            "torn_dropped": self.torn_dropped,
            "compactions": self.compactions,
            "reclaimed_bytes": self.reclaimed_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"EventLog({self.directory!r}, [{self.base}, {self.end}), "
            f"{len(self._segments)} segments)"
        )
