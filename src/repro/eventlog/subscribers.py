"""Durable subscriber identities: acked offsets + retained outboxes.

A *named* subscriber (the ``resume`` protocol op's ``subscriber``
field) survives its transport connection: the registry remembers which
query ids it owns, the highest global offset it has acked, and a bounded
outbox of every notification generated for it since that ack.  A
reconnecting or late-joining client resumes by name and replays exactly
the entries above its offset — same query ids, same payloads, no loss
and no duplicates.

Outbox entries carry an ``attempts`` counter bumped on every replay;
an entry replayed more than ``max_attempts`` times without an ack — N
consecutive delivery failures — is dead-lettered, as is the oldest entry
when the outbox overflows.  The registry snapshot rides inside the event
-log checkpoint so log truncation never strands un-acked deliveries.

Anonymous sessions (no ``resume``) behave exactly as before this layer
existed: their queries retire with the connection.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional

from repro.errors import ReproError
from repro.eventlog.dlq import DeadLetterQueue


class SubscriberState:
    """One durable subscriber: queries, acked offset, retained outbox."""

    __slots__ = (
        "name",
        "queries",
        "acked",
        "outbox",
        "session_id",
        "buffered",
        "replayed",
        "dead_lettered",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        #: query_id -> terms list (enough to re-derive ownership).
        self.queries: Dict[int, List[str]] = {}
        #: Highest global offset this subscriber confirmed (-1 = none).
        self.acked = -1
        #: Retained ``{"offset", "query_id", "payload", "attempts"}``
        #: entries above ``acked``, oldest first (offsets ascend).
        self.outbox: Deque[Dict[str, Any]] = deque()
        #: Live session currently attached under this name (or None).
        self.session_id: Optional[int] = None
        self.buffered = 0
        self.replayed = 0
        self.dead_lettered = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "queries": sorted(self.queries),
            "acked": self.acked,
            "outbox_depth": len(self.outbox),
            "connected": self.session_id is not None,
            "buffered": self.buffered,
            "replayed": self.replayed,
            "dead_lettered": self.dead_lettered,
        }


class SubscriberRegistry:
    """All durable subscribers of one runtime (or one recovery pass)."""

    def __init__(
        self,
        outbox_capacity: int = 256,
        max_attempts: int = 3,
        dlq: Optional[DeadLetterQueue] = None,
    ) -> None:
        if outbox_capacity < 1:
            raise ReproError(
                f"outbox_capacity must be >= 1, got {outbox_capacity}"
            )
        if max_attempts < 1:
            raise ReproError(f"max_attempts must be >= 1, got {max_attempts}")
        self.outbox_capacity = outbox_capacity
        self.max_attempts = max_attempts
        self.dlq = dlq
        self._states: Dict[str, SubscriberState] = {}
        #: query_id -> owning subscriber name.
        self._owners: Dict[int, str] = {}

    # -- identity / ownership ---------------------------------------------

    def get(self, name: str) -> Optional[SubscriberState]:
        return self._states.get(name)

    def get_or_create(self, name: str) -> SubscriberState:
        state = self._states.get(name)
        if state is None:
            state = self._states[name] = SubscriberState(name)
        return state

    def names(self) -> List[str]:
        return sorted(self._states)

    def owner_of(self, query_id: int) -> Optional[str]:
        return self._owners.get(query_id)

    def record_subscribe(
        self, name: str, query_id: int, terms: Iterable[str]
    ) -> None:
        state = self.get_or_create(name)
        state.queries[int(query_id)] = list(terms)
        self._owners[int(query_id)] = name

    def record_unsubscribe(self, query_id: int) -> None:
        name = self._owners.pop(int(query_id), None)
        if name is not None:
            self._states[name].queries.pop(int(query_id), None)

    def attach(self, name: str, session_id: int) -> None:
        self.get_or_create(name).session_id = session_id

    def detach(self, name: str) -> None:
        state = self._states.get(name)
        if state is not None:
            state.session_id = None

    # -- delivery retention ------------------------------------------------

    def offer(
        self, name: str, offset: int, query_id: int, payload: Dict[str, Any]
    ) -> None:
        """Retain one generated notification for ``name``.

        Entries at or below the acked offset are no-ops (recovery replay
        regenerates notifications the subscriber already confirmed).  On
        overflow the *oldest* entry is dead-lettered: the newest data
        stays deliverable and nothing vanishes silently.
        """
        state = self.get_or_create(name)
        if offset <= state.acked:
            return
        state.outbox.append(
            {
                "offset": int(offset),
                "query_id": int(query_id),
                "payload": payload,
                "attempts": 0,
            }
        )
        state.buffered += 1
        if len(state.outbox) > self.outbox_capacity:
            victim = state.outbox.popleft()
            self._dead_letter(state, victim, "overflow")

    def ack(self, name: str, offset: int) -> int:
        """Confirm delivery up to ``offset``; returns entries trimmed."""
        state = self.get_or_create(name)
        state.acked = max(state.acked, int(offset))
        trimmed = 0
        while state.outbox and state.outbox[0]["offset"] <= state.acked:
            state.outbox.popleft()
            trimmed += 1
        return trimmed

    def pending(
        self, name: str, offset: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Entries to replay above ``offset`` (default: the acked floor).

        Each returned entry's ``attempts`` is bumped — this *is* one
        redelivery attempt; entries over ``max_attempts`` are moved to
        the DLQ instead of being returned.
        """
        state = self.get_or_create(name)
        floor = state.acked if offset is None else max(int(offset), state.acked)
        replay: List[Dict[str, Any]] = []
        survivors: Deque[Dict[str, Any]] = deque()
        while state.outbox:
            entry = state.outbox.popleft()
            if entry["offset"] <= floor:
                continue
            entry["attempts"] += 1
            if entry["attempts"] > self.max_attempts:
                self._dead_letter(state, entry, "redelivery_exhausted")
                continue
            survivors.append(entry)
            replay.append(entry)
        state.outbox = survivors
        state.replayed += len(replay)
        return replay

    def _dead_letter(
        self, state: SubscriberState, entry: Dict[str, Any], reason: str
    ) -> None:
        state.dead_lettered += 1
        if self.dlq is not None:
            self.dlq.add(
                state.name,
                entry["offset"],
                entry.get("query_id"),
                entry["payload"],
                reason,
                entry["attempts"],
            )

    def min_acked(self) -> Optional[int]:
        """Lowest acked offset across all durable subscribers, or None.

        This is the replay floor for log compaction: entries at or below
        it have been confirmed by *every* durable subscriber, so no
        catch-up replay can ever need them again.  A subscriber that has
        never acked reports -1, pinning the floor at the log base.
        """
        if not self._states:
            return None
        return min(state.acked for state in self._states.values())

    # -- checkpoint embedding ----------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe state for embedding in an event-log checkpoint."""
        return {
            "subscribers": [
                {
                    "name": state.name,
                    "acked": state.acked,
                    "queries": {
                        str(query_id): terms
                        for query_id, terms in sorted(state.queries.items())
                    },
                    "outbox": [dict(entry) for entry in state.outbox],
                    "buffered": state.buffered,
                    "replayed": state.replayed,
                    "dead_lettered": state.dead_lettered,
                }
                for state in (
                    self._states[name] for name in sorted(self._states)
                )
            ]
        }

    def load(self, payload: Dict[str, Any]) -> None:
        """Restore a :meth:`snapshot` into this (empty) registry."""
        for record in payload.get("subscribers", []):
            state = self.get_or_create(record["name"])
            state.acked = int(record["acked"])
            for query_id, terms in record.get("queries", {}).items():
                state.queries[int(query_id)] = list(terms)
                self._owners[int(query_id)] = state.name
            state.outbox = deque(dict(entry) for entry in record["outbox"])
            state.buffered = int(record.get("buffered", 0))
            state.replayed = int(record.get("replayed", 0))
            state.dead_lettered = int(record.get("dead_lettered", 0))

    # -- observability -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "subscribers": [
                self._states[name].as_dict() for name in sorted(self._states)
            ],
            "outbox_capacity": self.outbox_capacity,
            "max_attempts": self.max_attempts,
        }
