"""Recovery = latest checkpoint + event-log replay (DESIGN.md §14).

A checkpoint file ``checkpoint-<offset>.json`` pairs an engine payload
(:func:`repro.persistence.checkpoint.engine_checkpoint` schema — single,
sharded and parallel deployments interchange files) with a
:class:`~repro.eventlog.subscribers.SubscriberRegistry` snapshot, both
taken at one log offset.  Because the registry's retained outboxes ride
inside the checkpoint, truncating the log up to the checkpoint offset
never strands an un-acked delivery.

:func:`recover` is a pure function of the directory contents: load the
newest readable checkpoint (torn or corrupt candidates — a crash during
``checkpoint.write`` — are skipped in favour of older ones), restore the
engine and registry from it, then re-apply every logged record above its
offset in offset order.  Publish replay regenerates notifications and
re-buffers them for their durable owners, which is what makes a resumed
subscriber's stream byte-identical to an uninterrupted run: logged-but-
unacked ops (the at-least-once in-doubt window) surface exactly once,
via the outbox.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.query import DasQuery
from repro.errors import ReproError
from repro.eventlog.segments import EventLog
from repro.eventlog.subscribers import SubscriberRegistry

#: Checkpoint file naming: checkpoint-<20-digit offset>.json
CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_SUFFIX = ".json"

#: Format marker for the combined engine+registry checkpoint file.
EVENTLOG_CHECKPOINT_VERSION = 1


def checkpoint_path(directory: str, offset: int) -> str:
    return os.path.join(
        directory, f"{CHECKPOINT_PREFIX}{offset:020d}{CHECKPOINT_SUFFIX}"
    )


def _checkpoint_offsets(directory: str) -> List[int]:
    offsets = []
    for name in os.listdir(directory):
        if not (
            name.startswith(CHECKPOINT_PREFIX)
            and name.endswith(CHECKPOINT_SUFFIX)
        ):
            continue
        digits = name[len(CHECKPOINT_PREFIX) : -len(CHECKPOINT_SUFFIX)]
        if digits.isdigit():
            offsets.append(int(digits))
    return sorted(offsets)


def write_checkpoint(
    directory: str,
    offset: int,
    engine_payload: Dict[str, Any],
    subscribers_payload: Dict[str, Any],
    injector: Optional[object] = None,
    keep: int = 2,
) -> str:
    """Atomically write a checkpoint at ``offset``; prunes old ones.

    Same crash discipline as :func:`repro.persistence.checkpoint.save`:
    the payload goes to a sibling temp file first and an injected
    ``checkpoint.write`` ``torn`` fault leaves a truncated *temp* file —
    never a truncated checkpoint — so recovery falls back to the previous
    one.
    """
    payload = {
        "version": EVENTLOG_CHECKPOINT_VERSION,
        "offset": int(offset),
        "engine": engine_payload,
        "subscribers": subscribers_payload,
    }
    data = json.dumps(payload)
    path = checkpoint_path(directory, offset)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w") as handle:
        if injector is not None:
            try:
                injector.fire("checkpoint.write")
            except Exception as exc:
                if getattr(exc, "action", "") == "torn":
                    handle.write(data[: len(data) // 2])
                raise
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    for old in _checkpoint_offsets(directory)[:-keep]:
        os.remove(checkpoint_path(directory, old))
    return path


def latest_checkpoint(directory: str) -> Optional[Dict[str, Any]]:
    """Newest readable checkpoint payload, or None.

    Unreadable candidates (torn write that somehow reached the final
    name, wrong version, truncated JSON) are skipped, not fatal — an
    older checkpoint plus a longer replay is always available.
    """
    for offset in reversed(_checkpoint_offsets(directory)):
        try:
            with open(checkpoint_path(directory, offset)) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            continue
        if (
            isinstance(payload, dict)
            and payload.get("version") == EVENTLOG_CHECKPOINT_VERSION
            and isinstance(payload.get("offset"), int)
        ):
            return payload
    return None


@dataclass
class RecoveredState:
    """What :func:`recover` hands back to the serving runtime."""

    engine: object
    registry: SubscriberRegistry
    log: EventLog
    checkpoint_offset: int = -1
    replayed: int = 0
    #: (offset, error string) for tolerated replay anomalies (e.g. an
    #: unsubscribe whose query a later checkpoint already removed).
    replay_errors: List[Tuple[int, str]] = field(default_factory=list)


def _restore_engine(payload: Dict[str, Any], parallel: bool) -> object:
    from repro.persistence.checkpoint import restore_payload

    if parallel and payload.get("sharded"):
        from repro.parallel import ParallelShardedEngine

        return ParallelShardedEngine.from_checkpoint(payload)
    return restore_payload(payload)


def replay_record(
    engine: object,
    registry: SubscriberRegistry,
    offset: int,
    record: Dict[str, Any],
) -> None:
    """Re-apply one logged record to an engine + registry pair.

    Publish replay re-buffers the regenerated notifications for their
    durable owners (offsets at or below a subscriber's acked floor are
    dropped by the registry, keeping replay idempotent).
    """
    from repro.server.protocol import (
        document_from_payload,
        notification_payload,
    )

    kind = record["kind"]
    if kind == "subscribe":
        location = record.get("location")
        engine.subscribe(
            DasQuery(
                record["query_id"],
                record["terms"],
                location=tuple(location) if location is not None else None,
                window=record.get("window"),
            )
        )
        name = record.get("subscriber")
        if name is not None:
            registry.record_subscribe(name, record["query_id"], record["terms"])
    elif kind == "unsubscribe":
        registry.record_unsubscribe(record["query_id"])
        engine.unsubscribe(record["query_id"])
    elif kind == "ack":
        registry.ack(record["subscriber"], record["offset"])
    else:  # publish
        document = document_from_payload(record["doc"])
        notifications = engine.publish_batch([document])
        for notification in notifications:
            name = registry.owner_of(notification.query_id)
            if name is not None:
                registry.offer(
                    name,
                    offset,
                    notification.query_id,
                    notification_payload(notification, offset=offset),
                )


def recover(
    directory: str,
    engine: object,
    registry: Optional[SubscriberRegistry] = None,
    fsync: str = "always",
    segment_entries: int = 512,
    parallel: bool = False,
    injector: Optional[object] = None,
) -> RecoveredState:
    """Bring a directory's logged history back to life.

    ``engine`` is the *fresh* engine to replay into when no checkpoint
    exists; when one does, the checkpointed engine replaces it (the
    caller inspects ``RecoveredState.engine`` and swaps).  ``registry``
    lets the caller pre-configure capacity/DLQ wiring; a default one is
    built otherwise.
    """
    os.makedirs(directory, exist_ok=True)
    if registry is None:
        registry = SubscriberRegistry()
    checkpoint = latest_checkpoint(directory)
    checkpoint_offset = -1
    if checkpoint is not None:
        engine = _restore_engine(checkpoint["engine"], parallel)
        registry.load(checkpoint["subscribers"])
        checkpoint_offset = checkpoint["offset"]
    log = EventLog(
        directory,
        fsync=fsync,
        segment_entries=segment_entries,
        injector=injector,
    )
    replay_from = max(checkpoint_offset, 0)
    if replay_from < log.base:
        raise ReproError(
            f"event log base {log.base} is past the checkpoint offset "
            f"{replay_from}: retained history has a gap"
        )
    state = RecoveredState(
        engine=engine,
        registry=registry,
        log=log,
        checkpoint_offset=checkpoint_offset,
    )
    for offset, record in log.entries_since(replay_from):
        try:
            replay_record(engine, registry, offset, record)
        except ReproError as exc:
            # Tolerated: e.g. unsubscribing a query the engine no longer
            # knows.  Replay must converge on the pre-crash state, not
            # die on an op the live server also treated as a client
            # error.
            state.replay_errors.append((offset, str(exc)))
        state.replayed += 1
    return state
