"""Dead-letter queue: a JSONL segment of undeliverable notifications.

A notification lands here for one of two reasons (DESIGN.md §14):

``redelivery_exhausted``
    The entry was replayed to its subscriber more than
    ``dlq_max_attempts`` times without ever being acked — N consecutive
    delivery failures.
``overflow``
    The subscriber's retained outbox hit its capacity while the
    subscriber was away; the oldest entry is dead-lettered rather than
    silently dropped, so an operator can still re-drive it.

Entries keep the full notification payload, the owning subscriber, the
global offset and the attempt count, and are never removed by the
server — the DLQ is an operator surface (``repro dlq`` / the ``dlq``
protocol op), not a retry queue.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

#: The DLQ lives next to the event segments in the log directory.
DLQ_FILENAME = "dlq.seg"

DLQ_REASONS = ("redelivery_exhausted", "overflow")


class DeadLetterQueue:
    """Append-only dead-letter segment with in-memory stats."""

    def __init__(self, directory: str, fsync: str = "always") -> None:
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, DLQ_FILENAME)
        self._fsync = fsync == "always"
        self._entries: List[Dict[str, Any]] = read_dlq(directory)
        self._file = open(self.path, "ab")
        self._closed = False

    def add(
        self,
        subscriber: str,
        offset: int,
        query_id: Optional[int],
        payload: Dict[str, Any],
        reason: str,
        attempts: int,
    ) -> Dict[str, Any]:
        entry = {
            "seq": len(self._entries),
            "subscriber": subscriber,
            "offset": int(offset),
            "query_id": query_id,
            "reason": reason,
            "attempts": int(attempts),
            "payload": payload,
        }
        self._file.write(
            (json.dumps(entry, separators=(",", ":")) + "\n").encode("utf-8")
        )
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        self._entries.append(entry)
        return entry

    def entries(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Newest-last view; ``limit`` keeps only the newest N."""
        if limit is None or limit >= len(self._entries):
            return list(self._entries)
        return self._entries[-limit:]

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        by_reason: Dict[str, int] = {}
        by_subscriber: Dict[str, int] = {}
        for entry in self._entries:
            by_reason[entry["reason"]] = by_reason.get(entry["reason"], 0) + 1
            name = entry["subscriber"]
            by_subscriber[name] = by_subscriber.get(name, 0) + 1
        return {
            "entries": len(self._entries),
            "by_reason": by_reason,
            "by_subscriber": by_subscriber,
        }

    def close(self) -> None:
        if not self._closed:
            self._file.close()
            self._closed = True


def read_dlq(directory: str) -> List[Dict[str, Any]]:
    """Offline read of a DLQ segment (``repro dlq`` and recovery share
    it); a missing file is an empty queue, a torn tail is dropped."""
    path = os.path.join(directory, DLQ_FILENAME)
    if not os.path.exists(path):
        return []
    entries: List[Dict[str, Any]] = []
    with open(path, "rb") as handle:
        for raw in handle:
            if not raw.endswith(b"\n"):
                break
            try:
                entry = json.loads(raw.decode("utf-8"))
            except ValueError:
                break
            if isinstance(entry, dict):
                entries.append(entry)
    return entries
