"""Server-wide durable event log: WAL, catch-up, DLQ, throttling.

The reliability tier (DESIGN.md §14).  Every accepted op — publish,
subscribe, unsubscribe, ack — is appended to a segmented write-ahead
:class:`EventLog` under one monotonic global offset *before* the engine
matches it; recovery is the newest checkpoint plus a replay of the
logged suffix (:func:`recover`).  On top of the log:

* :class:`SubscriberRegistry` — durable subscriber identities with
  per-subscriber acked offsets and retained outboxes, powering the
  ``resume`` protocol op (reconnect/late-join catch-up);
* :class:`DeadLetterQueue` — notifications that failed delivery too many
  times, or overflowed a retained outbox, inspectable via ``repro dlq``;
* :class:`TokenBucket` — per-client ingest throttling for queue-based
  load leveling.
"""

from repro.eventlog.dlq import DLQ_FILENAME, DeadLetterQueue, read_dlq
from repro.eventlog.records import (
    RECORD_KINDS,
    ack_record,
    publish_record,
    subscribe_record,
    unsubscribe_record,
    validate_record,
)
from repro.eventlog.recovery import (
    RecoveredState,
    checkpoint_path,
    latest_checkpoint,
    recover,
    replay_record,
    write_checkpoint,
)
from repro.eventlog.segments import FSYNC_POLICIES, EventLog, segment_name
from repro.eventlog.subscribers import SubscriberRegistry, SubscriberState
from repro.eventlog.throttle import TokenBucket

__all__ = [
    "DLQ_FILENAME",
    "DeadLetterQueue",
    "EventLog",
    "FSYNC_POLICIES",
    "RECORD_KINDS",
    "RecoveredState",
    "SubscriberRegistry",
    "SubscriberState",
    "TokenBucket",
    "ack_record",
    "checkpoint_path",
    "latest_checkpoint",
    "publish_record",
    "read_dlq",
    "recover",
    "replay_record",
    "segment_name",
    "subscribe_record",
    "unsubscribe_record",
    "validate_record",
    "write_checkpoint",
]
