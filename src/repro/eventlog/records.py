"""Event-log record shapes (DESIGN.md §14).

Every accepted operation becomes exactly one JSON-safe record dict with
a ``kind`` discriminator, appended to the :class:`~repro.eventlog.segments.EventLog`
under one monotonic global offset *before* the engine sees it:

``publish``
    One record per document — never per batch — so a global offset names
    one accepted op and replay re-applies documents one by one in the
    accepted order.  Carries the full wire-form document payload
    (explicit ``doc_id`` and ``created_at``), so replay is byte-identical
    regardless of clocks or id counters at recovery time.
``subscribe`` / ``unsubscribe``
    Query registration under an explicit ``query_id`` plus the optional
    durable ``subscriber`` name owning it.
``ack``
    A subscriber confirmed delivery up to ``offset``; replay uses it to
    trim retained outboxes exactly as the live server did.

These generalise :mod:`repro.persistence.journal`'s positional entries
(the cluster replication wire) to a self-describing on-disk format.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from repro.errors import ReproError

#: The record kinds the log accepts, in no particular order.
RECORD_KINDS = ("publish", "subscribe", "unsubscribe", "ack")


def publish_record(doc_payload: Dict[str, Any]) -> Dict[str, Any]:
    """One accepted document (wire form of :func:`document_payload`)."""
    return {"kind": "publish", "doc": doc_payload}


def subscribe_record(
    query_id: int,
    terms: Iterable[str],
    subscriber: Optional[str] = None,
    location: Optional[Iterable[float]] = None,
    window: Optional[int] = None,
) -> Dict[str, Any]:
    """``location``/``window`` are the strategy-mode subscribe options;
    omitted keys keep the pre-strategy record shape byte-identical."""
    record: Dict[str, Any] = {
        "kind": "subscribe",
        "query_id": int(query_id),
        "terms": list(terms),
    }
    if subscriber is not None:
        record["subscriber"] = subscriber
    if location is not None:
        record["location"] = [float(value) for value in location]
    if window is not None:
        record["window"] = int(window)
    return record


def unsubscribe_record(
    query_id: int, subscriber: Optional[str] = None
) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "kind": "unsubscribe",
        "query_id": int(query_id),
    }
    if subscriber is not None:
        record["subscriber"] = subscriber
    return record


def ack_record(subscriber: str, offset: int) -> Dict[str, Any]:
    """``subscriber`` confirmed delivery of every entry up to ``offset``."""
    return {"kind": "ack", "subscriber": subscriber, "offset": int(offset)}


def validate_record(record: Any) -> Dict[str, Any]:
    """Validate one record dict; raises :class:`ReproError` on bad shape.

    Shared by the appender (reject before write — a malformed record must
    never reach disk) and recovery (a well-formed line that fails this is
    corruption, not a torn tail).
    """
    if not isinstance(record, dict):
        raise ReproError(
            f"event record must be a dict, got {type(record).__name__}"
        )
    kind = record.get("kind")
    if kind not in RECORD_KINDS:
        raise ReproError(
            f"unknown event record kind {kind!r}; expected one of "
            f"{RECORD_KINDS}"
        )
    if kind == "publish":
        doc = record.get("doc")
        if not isinstance(doc, dict):
            raise ReproError("publish record requires a 'doc' payload dict")
        if not isinstance(doc.get("doc_id"), int):
            raise ReproError("publish record doc requires an integer 'doc_id'")
        if not isinstance(doc.get("created_at"), (int, float)):
            raise ReproError(
                "publish record doc requires a numeric 'created_at'"
            )
        if not isinstance(doc.get("tf"), dict):
            raise ReproError("publish record doc requires a 'tf' term map")
    elif kind in ("subscribe", "unsubscribe"):
        query_id = record.get("query_id")
        if not isinstance(query_id, int) or isinstance(query_id, bool):
            raise ReproError(f"{kind} record requires an integer 'query_id'")
        if kind == "subscribe":
            if not isinstance(record.get("terms"), (list, tuple)):
                raise ReproError("subscribe record requires a 'terms' list")
            location = record.get("location")
            if location is not None and (
                not isinstance(location, (list, tuple))
                or len(location) != 2
                or any(
                    not isinstance(v, (int, float)) or isinstance(v, bool)
                    for v in location
                )
            ):
                raise ReproError(
                    "subscribe record 'location' must be a number pair"
                )
            window = record.get("window")
            if window is not None and (
                not isinstance(window, int)
                or isinstance(window, bool)
                or window < 1
            ):
                raise ReproError(
                    "subscribe record 'window' must be a positive integer"
                )
        subscriber = record.get("subscriber")
        if subscriber is not None and not isinstance(subscriber, str):
            raise ReproError(f"{kind} record 'subscriber' must be a string")
    else:  # ack
        if not isinstance(record.get("subscriber"), str):
            raise ReproError("ack record requires a string 'subscriber'")
        offset = record.get("offset")
        if not isinstance(offset, int) or isinstance(offset, bool):
            raise ReproError("ack record requires an integer 'offset'")
    return record
