"""Per-client token-bucket throttling for ingest load-leveling.

The serving runtime keeps one bucket per publishing session: each accepted
publish costs one token, tokens refill at ``rate`` per second up to
``burst``.  Rather than rejecting over-limit publishes, the runtime
*awaits* the bucket's suggested delay — queue-based load leveling: a hot
client is smeared out over time while the bounded ingest queue keeps
absorbing the smoothed stream.  The wait time surfaces in
``stats.throttling`` and the ``throttle_wait`` pipeline stage.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import ReproError


class TokenBucket:
    """Deterministic token bucket (caller supplies the clock readings)."""

    def __init__(self, rate: float, burst: int) -> None:
        if rate <= 0.0:
            raise ReproError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ReproError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._last: float = 0.0
        self._primed = False
        self.taken = 0
        self.waited = 0.0

    def take(self, now: float) -> float:
        """Try to take one token at time ``now``.

        Returns 0.0 when a token was available (and consumed), else the
        seconds to wait before retrying.  Callers loop
        ``while (wait := bucket.take(now())) > 0: await sleep(wait)``.
        """
        if not self._primed:
            self._primed = True
            self._last = now
        elif now > self._last:
            self._tokens = min(
                float(self.burst), self._tokens + (now - self._last) * self.rate
            )
            self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.taken += 1
            return 0.0
        wait = (1.0 - self._tokens) / self.rate
        self.waited += wait
        return wait

    def snapshot(self) -> Dict[str, Any]:
        return {
            "rate": self.rate,
            "burst": self.burst,
            "tokens": round(self._tokens, 6),
            "taken": self.taken,
            "waited": round(self.waited, 6),
        }
