"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration value is out of range or inconsistent."""


class DuplicateQueryError(ReproError):
    """A query with the same id is already registered with the engine."""


class UnknownQueryError(ReproError):
    """The referenced query id is not registered with the engine."""


class QueryOrderError(ReproError):
    """Subscription ids must be strictly increasing.

    The query inverted file keeps postings sorted by query id and only
    ever appends (Section 4.3), so new subscriptions must carry a larger
    id than every existing one.
    """


class DuplicateDocumentError(ReproError):
    """A document with the same id was already published."""


class DocumentOrderError(ReproError):
    """A published document violates the stream's monotonic order.

    Document ids are assigned by creation time (Definition 1), so both the
    id and the creation timestamp of each published document must be
    non-decreasing.
    """


class EmptyQueryError(ReproError):
    """A subscription was submitted without any keywords."""


class EvictionError(ReproError):
    """The document store cannot evict enough documents (all are pinned)."""


class ProtocolError(ReproError):
    """A transport request is malformed (bad JSON, unknown op, bad field)."""


class InjectedFaultError(ReproError):
    """A deterministic fault fired by the simulation harness.

    Raised at the injection points of :mod:`repro.simulation.faults`;
    production code treats it like any other :class:`ReproError` (the
    point of the harness is that nothing special-cases it).
    """


class ServerClosedError(ReproError):
    """The serving runtime is draining or stopped and rejects new work."""


class WorkerCrashError(ReproError):
    """A shard worker process died and could not be recovered.

    Raised by :class:`repro.parallel.ParallelShardedEngine` after a dead
    worker's restart-and-replay also failed; the op that observed the
    crash fails (its acks fail), but the engine facade stays usable —
    the matcher counts the error instead of dying with the worker.
    """


class NodeDownError(ReproError):
    """A cluster node is unreachable and no failover target remains.

    Raised by :class:`repro.cluster.ClusterEngine` when a shard's
    primary died and there is no (live) standby to promote — the op
    that observed the outage fails, but the coordinator stays usable
    for the shards that are still healthy.
    """


class ReplicationError(ReproError):
    """A ``replicate``/``handoff`` op carried an inconsistent stream.

    The node rejects journal suffixes that do not start exactly at its
    applied offset (a gap would silently diverge the replica); the
    error message carries the node's current offset so the sender can
    resend the right suffix.
    """
