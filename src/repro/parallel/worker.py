"""The shard worker process: one DasEngine behind a request pipe.

``worker_main`` is the spawn target — a plain importable module-level
function, so it works under the ``spawn`` start method (the only one
that is safe with an engine that may have imported NumPy).  The worker
owns exactly one :class:`~repro.core.engine.DasEngine` shard plus a
replica :class:`~repro.text.vocabulary.Vocabulary` that tracks the
parent's master vocabulary through the delta prefixed to every request
(see :mod:`repro.parallel.wire`).

The loop is strictly request/reply over one duplex pipe; the parent
pipelines broadcasts by sending to every worker before reading any
reply, which is where the process-level parallelism comes from.

Fault injection: the parent may hand the *initial* worker a fault-plan
string.  Its ``worker.publish_batch`` point fires once per publish batch
arrival; a raising action is **process-fatal** here — the worker exits
hard (``os._exit``), modelling a real crash mid-protocol.  Restarted
workers get no plan, so an injected crash is transient and recovery is
deterministic.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.core.engine import DasEngine
from repro.errors import InjectedFaultError
from repro.parallel.wire import (
    decode_document,
    decode_query,
    encode_error,
    encode_notifications,
)
from repro.persistence.checkpoint import (
    _config_from_dict,
    checkpoint,
    restore,
)
from repro.telemetry import Telemetry
from repro.text.vocabulary import Vocabulary


def worker_main(
    conn, config_payload: Dict, fault_plan: Optional[str] = None
) -> None:
    """Serve engine ops over ``conn`` until "stop" or pipe EOF."""
    if fault_plan:
        # Imported lazily: repro.simulation imports repro.parallel for
        # its crash scenarios, so a module-level import here would cycle.
        from repro.simulation.faults import FaultPlan

        injector = FaultPlan.parse(fault_plan).injector()
    else:
        injector = None
    vocab = Vocabulary()
    config = _config_from_dict(config_payload)
    engine = DasEngine(config, telemetry=Telemetry())
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        for term in message[1]:  # vocabulary delta, applied before the op
            vocab.add(term)
        args = message[2:]
        if op == "stop":
            conn.send(("ok", None))
            break
        if op == "crash":  # test/chaos helper: die without replying
            os._exit(1)
        try:
            if op == "publish_batch" and injector is not None:
                try:
                    injector.fire("worker.publish_batch")
                except InjectedFaultError:
                    os._exit(1)  # a crash, not an error reply
            result, engine = _dispatch(engine, vocab, op, args)
        except Exception as exc:  # noqa: BLE001 — every error crosses the pipe
            conn.send(encode_error(exc))
        else:
            conn.send(("ok", result))
    conn.close()


def _dispatch(engine: DasEngine, vocab: Vocabulary, op: str, args):
    """Execute one op; returns (result, possibly-replaced engine)."""
    if op == "publish_batch":
        documents = [decode_document(payload, vocab) for payload in args[0]]
        notifications = engine.publish_batch(documents)
        return encode_notifications(notifications), engine
    if op == "subscribe":
        query = decode_query(args[0], args[1], vocab)
        initial = engine.subscribe(query)
        return [document.doc_id for document in initial], engine
    if op == "unsubscribe":
        engine.unsubscribe(args[0])
        return None, engine
    if op == "results":
        return [d.doc_id for d in engine.results(args[0])], engine
    if op == "current_dr":
        return engine.current_dr(args[0]), engine
    if op == "counters":
        return engine.counters, engine
    if op == "telemetry":
        return engine.telemetry_snapshot(), engine
    if op == "load":
        return {
            "queries": engine.query_count,
            "postings": engine._index.posting_count,
            "documents": len(engine.store),
        }, engine
    if op == "checkpoint":
        return checkpoint(engine), engine
    if op == "restore":
        payload = args[0]
        if payload is None:
            return None, DasEngine(engine.config, telemetry=Telemetry())
        restored = restore(payload)
        restored.attach_telemetry(Telemetry())
        return None, restored
    raise ValueError(f"unknown worker op {op!r}")
