"""The shard worker process: one DasEngine behind a request pipe.

``worker_main`` is the spawn target — a plain importable module-level
function, so it works under the ``spawn`` start method (the only one
that is safe with an engine that may have imported NumPy).  The worker
owns exactly one :class:`~repro.core.engine.DasEngine` shard plus a
replica :class:`~repro.text.vocabulary.Vocabulary` that tracks the
parent's master vocabulary through the delta prefixed to every request
(see :mod:`repro.parallel.wire`).

The loop is strictly request/reply over one duplex pipe; the parent
pipelines broadcasts by sending to every worker before reading any
reply, which is where the process-level parallelism comes from.

Documents arrive on one of two transports:

``publish_batch``
    Legacy pickle path — the args carry the document payload tuples.
    Kept for journal replay after a crash, for batches the binary codec
    cannot represent, and as the ``REPRO_DISABLE_SHM`` fallback.
``publish_shm``
    Zero-copy path — the args are ``(offset, length, count)`` into the
    shared-memory ring the worker attached at startup (see
    :mod:`repro.parallel.shm`); the batch is decoded in place.

Both transports observe ``wire_decode`` once per document and
``wire_encode`` once per reply into the telemetry snapshot's ``"wire"``
section, and both reply with the compact per-document segment blob of
:func:`~repro.parallel.wire.encode_notification_segments`.

Fault injection: the parent may hand the *initial* worker a fault-plan
string.  Its ``worker.publish_batch`` point fires once per publish batch
arrival — on either transport, so fault schedules are transport
agnostic; a raising action is **process-fatal** here — the worker exits
hard (``os._exit``), modelling a real crash mid-protocol.  Restarted
workers get no plan, so an injected crash is transient and recovery is
deterministic.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional, Tuple

from repro.core.engine import DasEngine
from repro.errors import InjectedFaultError, ReproError
from repro.parallel.shm import ShmRing
from repro.parallel.wire import (
    decode_document,
    decode_query,
    encode_error,
    encode_notification_segments,
    iter_document_payloads,
)
from repro.persistence.checkpoint import (
    _config_from_dict,
    checkpoint,
    restore,
)
from repro.telemetry import Telemetry
from repro.text.vocabulary import Vocabulary

#: Ops that carry a document batch (and hence fire the batch fault point
#: and the wire-path telemetry), keyed off their transport.
_PUBLISH_OPS = ("publish_batch", "publish_shm")


def worker_main(
    conn,
    config_payload: Dict,
    fault_plan: Optional[str] = None,
    ring_spec: Optional[Tuple[str, int]] = None,
) -> None:
    """Serve engine ops over ``conn`` until "stop" or pipe EOF."""
    if fault_plan:
        # Imported lazily: repro.simulation imports repro.parallel for
        # its crash scenarios, so a module-level import here would cycle.
        from repro.simulation.faults import FaultPlan

        injector = FaultPlan.parse(fault_plan).injector()
    else:
        injector = None
    ring: Optional[ShmRing] = None
    if ring_spec is not None:
        try:
            ring = ShmRing.attach(ring_spec[0], ring_spec[1])
        except (OSError, FileNotFoundError, ValueError):
            ring = None  # publish_shm requests will be rejected politely
    vocab = Vocabulary()
    config = _config_from_dict(config_payload)
    engine = DasEngine(config, telemetry=Telemetry())
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        for term in message[1]:  # vocabulary delta, applied before the op
            vocab.add(term)
        args = message[2:]
        if op == "stop":
            conn.send(("ok", None))
            break
        if op == "crash":  # test/chaos helper: die without replying
            os._exit(1)
        try:
            if op in _PUBLISH_OPS and injector is not None:
                try:
                    injector.fire("worker.publish_batch")
                except InjectedFaultError:
                    os._exit(1)  # a crash, not an error reply
            result, engine = _dispatch(engine, vocab, op, args, ring)
        except Exception as exc:  # noqa: BLE001 — every error crosses the pipe
            conn.send(encode_error(exc))
        else:
            conn.send(("ok", result))
    if ring is not None:
        ring.close()
    conn.close()


def _decode_timed(source, vocab: Vocabulary, telemetry) -> list:
    """Decode wire payloads to documents, one ``wire_decode`` obs each.

    ``source`` yields payload tuples; for the shm transport it is the
    lazy in-place parser, so each observation covers that document's
    struct parse *and* vocabulary rebuild — the full off-the-wire cost.
    """
    timer = time.perf_counter
    iterator = iter(source)
    documents = []
    while True:
        started = timer()
        try:
            payload = iterator.__next__()
        except StopIteration:
            break
        document = decode_document(payload, vocab)
        if telemetry is not None:
            telemetry.observe_wire("wire_decode", timer() - started)
        documents.append(document)
    return documents


def _publish(engine: DasEngine, vocab: Vocabulary, source):
    """Shared tail of both publish transports: decode, publish, reply."""
    telemetry = engine.telemetry
    documents = _decode_timed(source, vocab, telemetry)
    segments = engine.publish_batch_segmented(documents)
    started = time.perf_counter()
    blob = encode_notification_segments(segments)
    if telemetry is not None:
        telemetry.observe_wire("wire_encode", time.perf_counter() - started)
    return blob


def _dispatch(
    engine: DasEngine,
    vocab: Vocabulary,
    op: str,
    args,
    ring: Optional[ShmRing],
):
    """Execute one op; returns (result, possibly-replaced engine)."""
    if op == "publish_batch":
        return _publish(engine, vocab, args[0]), engine
    if op == "publish_shm":
        if ring is None:
            raise ReproError("worker has no shared-memory ring attached")
        offset, length, _count = args
        view = ring.view(offset, length)
        try:
            return (
                _publish(engine, vocab, iter_document_payloads(view)),
                engine,
            )
        finally:
            view.release()
    if op == "subscribe":
        options = args[2] if len(args) > 2 else None
        query = decode_query(args[0], args[1], vocab, options)
        initial = engine.subscribe(query)
        return [document.doc_id for document in initial], engine
    if op == "unsubscribe":
        engine.unsubscribe(args[0])
        return None, engine
    if op == "results":
        return [d.doc_id for d in engine.results(args[0])], engine
    if op == "current_dr":
        return engine.current_dr(args[0]), engine
    if op == "counters":
        return engine.counters, engine
    if op == "telemetry":
        return engine.telemetry_snapshot(), engine
    if op == "load":
        return {
            "queries": engine.query_count,
            "postings": engine._index.posting_count,
            "documents": len(engine.store),
        }, engine
    if op == "checkpoint":
        return checkpoint(engine), engine
    if op == "restore":
        payload = args[0]
        if payload is None:
            return None, DasEngine(engine.config, telemetry=Telemetry())
        restored = restore(payload)
        restored.attach_telemetry(Telemetry())
        return None, restored
    raise ValueError(f"unknown worker op {op!r}")
