"""Process-parallel sharded DAS engine (one worker process per shard).

See :mod:`repro.parallel.engine` for the architecture.  The package
exists so the matcher can use real CPU parallelism for the broadcast
side of pub/sub matching — each shard holds a disjoint subset of the
queries, and a published document is matched against all shards
concurrently in separate processes, sidestepping the GIL.
"""

from repro.parallel.engine import ParallelShardedEngine

__all__ = ["ParallelShardedEngine"]
