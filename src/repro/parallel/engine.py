"""Process-parallel sharded DAS engine.

:class:`ParallelShardedEngine` is :class:`~repro.distributed.sharded.
ShardedDasEngine` with each shard moved into a dedicated worker process
(``spawn`` start method; see :mod:`repro.parallel.worker`).  Queries are
routed to one shard, documents are broadcast to all shards, and the
per-shard notification streams are merged document-major / shard-minor —
exactly the sharded engine's merge, so results are identical to a single
:class:`~repro.core.engine.DasEngine` processing the same stream (the
equivalence tests assert it).

The parent keeps three mirrors so workers never ship engine objects:

* the master :class:`~repro.text.vocabulary.Vocabulary` (the process
  global), synced to each worker via deltas so documents travel as
  term-id arrays;
* a ``doc_id -> Document`` map of published documents, used to rebuild
  :class:`~repro.core.events.Notification` and result lists from the id
  triples workers return (pruned at every checkpoint to the documents
  the checkpoints still reference);
* routing state (assignment table, round-robin cursor), identical in
  shape to the sharded engine's so checkpoints are interchangeable.

Crash containment: a worker that dies mid-op fails like a shard, not
like the server.  The parent keeps every worker's last checkpoint plus a
journal of ops applied since; on a detected death it respawns the
worker, restores the checkpoint, replays the journal, and retries the
op that observed the crash.  Only if *that* also fails does the op raise
:class:`~repro.errors.WorkerCrashError` — which the serving runtime's
matcher already contains and counts (PR 3) instead of dying.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import EngineConfig
from repro.core.events import Notification
from repro.core.query import DasQuery
from repro.distributed.sharded import ROUTING_POLICIES
from repro.errors import (
    DuplicateQueryError,
    ReproError,
    UnknownQueryError,
    WorkerCrashError,
)
from repro.metrics.instrumentation import Counters
from repro.parallel.shm import DEFAULT_RING_BYTES, ShmRing
from repro.parallel.wire import (
    WIRE_OVERFLOW,
    decode_error,
    decode_notification_segments,
    encode_document,
    encode_document_batch,
    encode_query_terms,
)
from repro.parallel.worker import worker_main
from repro.persistence.checkpoint import (
    CHECKPOINT_VERSION,
    _config_from_dict,
    _config_to_dict,
)
from repro.stream.document import Document
from repro.telemetry import merge_snapshots
from repro.text.vectors import TermVector
from repro.text.vocabulary import GLOBAL_VOCABULARY, Vocabulary


def _make_ring() -> Optional[ShmRing]:
    """The parent's document ring, or ``None`` when shm is unavailable.

    ``REPRO_DISABLE_SHM=1`` forces the pickle-pipe transport (tests and
    degraded platforms); ``REPRO_SHM_RING_BYTES`` sizes the ring —
    batches that do not fit fall back to the pipe per batch.
    """
    if os.environ.get("REPRO_DISABLE_SHM") == "1":
        return None
    try:
        capacity = int(
            os.environ.get("REPRO_SHM_RING_BYTES", str(DEFAULT_RING_BYTES))
        )
    except ValueError:
        capacity = DEFAULT_RING_BYTES
    try:
        return ShmRing.create(capacity)
    except (ImportError, OSError, ValueError):
        return None


class _WorkerHandle:
    """One worker process plus its pipe and vocabulary-sync cursor."""

    def __init__(
        self,
        index: int,
        ctx,
        config_payload: Dict,
        fault_plan: Optional[str] = None,
        ring_spec: Optional[Tuple[str, int]] = None,
        tally: Optional[List[int]] = None,
    ) -> None:
        self.index = index
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=worker_main,
            args=(child_conn, config_payload, fault_plan, ring_spec),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        self.process.start()
        child_conn.close()
        #: Master-vocabulary ids below this are already in the replica.
        self.synced_terms = 0
        #: Shared serialized-byte meter (survives handle replacement).
        self.tally = tally if tally is not None else [0]

    def send(self, op: str, *args, vocab: Vocabulary) -> None:
        """Send one request, prefixed with the replica's vocab delta.

        The message is pickled here (``send_bytes``) rather than inside
        ``Connection.send`` so the exact serialized size lands in the
        shared tally — the measurement the wire benchmarks gate on.
        """
        delta = vocab.tail(self.synced_terms)
        data = pickle.dumps((op, delta) + args)
        try:
            self.conn.send_bytes(data)
        except (OSError, ValueError) as exc:
            raise WorkerCrashError(
                f"worker {self.index} pipe closed during send"
            ) from exc
        self.synced_terms = len(vocab)
        self.tally[0] += len(data)

    def recv(self):
        """Read one reply; raises the decoded error for "err" replies."""
        try:
            reply = self.conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrashError(f"worker {self.index} died") from exc
        if reply[0] == "err":
            raise decode_error(reply[1], reply[2])
        return reply[1]

    def request(self, op: str, *args, vocab: Vocabulary):
        self.send(op, *args, vocab=vocab)
        return self.recv()

    def alive(self) -> bool:
        return self.process.is_alive()

    def close(self, timeout: float = 2.0) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout)


class ParallelShardedEngine:
    """N DAS engine shards, each in its own worker process."""

    def __init__(
        self,
        n_workers: int,
        config: Optional[EngineConfig] = None,
        routing: str = "round_robin",
        fault_plan: Optional[str] = None,
        fault_shard: int = 0,
        start_method: str = "spawn",
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing {routing!r}; expected one of "
                f"{ROUTING_POLICIES}"
            )
        self._config = config if config is not None else EngineConfig()
        self._config_payload = _config_to_dict(self._config)
        self._ctx = multiprocessing.get_context(start_method)
        self.routing = routing
        self._assignment: Dict[int, int] = {}
        self._next_round_robin = 0
        self._vocab = GLOBAL_VOCABULARY
        #: Parent-side mirror of published documents, by id.
        self._documents: Dict[int, Document] = {}
        #: Ops applied since the last checkpoint, for crash replay.
        #: Entries: ("subscribe", shard, query_id, terms, options),
        #: ("unsubscribe", shard, query_id), ("publish", doc_id tuple).
        self._journal: List[Tuple] = []
        self._checkpoints: List[Optional[Dict]] = [None] * n_workers
        self._restarts = [0] * n_workers
        self._recoveries = 0
        self._now = 0.0
        self._last_doc_id: Optional[int] = None
        self._last_query_id: Optional[int] = None
        self._closed = False
        #: Document ring (parent-owned); None degrades every publish to
        #: the pickle pipe.
        self._ring = _make_ring()
        self._ring_spec = (
            (self._ring.name, self._ring.capacity)
            if self._ring is not None
            else None
        )
        #: Wire accounting for wire_stats() (see its docstring).
        self._wire = {
            "shm_docs": 0,
            "shm_bytes": 0,
            "pipe_docs": 0,
            "pipe_bytes": 0,
            "reply_bytes": 0,
            "shm_fallbacks": 0,
            "encode_seconds": 0.0,
        }
        #: Bytes pickled onto worker pipes, all ops, all workers —
        #: shared across handles so replacement after a crash keeps the
        #: meter monotonic.
        self._pipe_tally = [0]
        self._workers = [
            _WorkerHandle(
                index,
                self._ctx,
                self._config_payload,
                fault_plan if index == fault_shard else None,
                ring_spec=self._ring_spec,
                tally=self._pipe_tally,
            )
            for index in range(n_workers)
        ]

    # -- introspection ------------------------------------------------------

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def n_shards(self) -> int:
        return len(self._workers)

    @property
    def query_count(self) -> int:
        return len(self._assignment)

    def shard_of(self, query_id: int) -> int:
        shard = self._assignment.get(query_id)
        if shard is None:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        return shard

    def query_id_floor(self) -> int:
        """Smallest query id a new subscription may use (facade hook)."""
        last = self._last_query_id
        return 0 if last is None else last + 1

    def doc_id_floor(self) -> int:
        """Smallest document id a new publish may use (facade hook)."""
        last = self._last_doc_id
        return 0 if last is None else last + 1

    def clock_now(self) -> float:
        """Latest accepted timestamp (facade hook; mirrors shard clocks)."""
        return self._now

    def worker_stats(self) -> Dict:
        """Liveness and recovery accounting for the runtime's stats()."""
        return {
            "workers": self.n_shards,
            "alive": [handle.alive() for handle in self._workers],
            "restarts": list(self._restarts),
            "recoveries": self._recoveries,
            "journal_ops": len(self._journal),
            "wire": self.wire_stats(),
        }

    def wire_stats(self) -> Dict:
        """Serialised-byte accounting of the document wire path.

        ``pipe_bytes`` is the number of bytes actually pickled onto the
        worker pipes for publish requests — the full payload *per
        worker* on the pickle transport, a constant-size op tuple per
        worker on the shm transport (the blob itself crosses via shared
        memory, written exactly once and never re-copied; its one-time
        size is ``shm_bytes``).  ``pipe_bytes_per_doc`` over total
        published documents is the per-document serialization cost the
        benchmarks compare between transports (the ≥5× reduction
        criterion); ``reply_bytes`` totals the compact
        notification-record blobs workers returned.
        """
        wire = dict(self._wire)
        wire["transport"] = "shm" if self._ring is not None else "pipe"
        docs = wire["shm_docs"] + wire["pipe_docs"]
        wire["shm_bytes_per_doc"] = (
            wire["shm_bytes"] / wire["shm_docs"] if wire["shm_docs"] else 0.0
        )
        wire["pipe_bytes_per_doc"] = (
            wire["pipe_bytes"] / docs if docs else 0.0
        )
        return wire

    # -- worker plumbing ----------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise WorkerCrashError("parallel engine is closed")

    def _recover(self, shard: int) -> None:
        """Respawn a dead worker: restore its checkpoint, replay the journal.

        Raises :class:`WorkerCrashError` if the replacement dies too —
        the caller's op then fails, which is the containment contract.
        """
        self._workers[shard].close()
        handle = _WorkerHandle(
            shard,
            self._ctx,
            self._config_payload,
            ring_spec=self._ring_spec,
            tally=self._pipe_tally,
        )
        self._workers[shard] = handle
        self._restarts[shard] += 1
        handle.request("restore", self._checkpoints[shard], vocab=self._vocab)
        for entry in self._journal:
            kind = entry[0]
            if kind == "subscribe" and entry[1] == shard:
                handle.request(
                    "subscribe",
                    entry[2],
                    encode_query_terms(entry[3], self._vocab),
                    entry[4],
                    vocab=self._vocab,
                )
            elif kind == "unsubscribe" and entry[1] == shard:
                handle.request("unsubscribe", entry[2], vocab=self._vocab)
            elif kind == "publish":
                payload = tuple(
                    encode_document(self._documents[doc_id], self._vocab)
                    for doc_id in entry[1]
                )
                try:
                    handle.request("publish_batch", payload, vocab=self._vocab)
                except WorkerCrashError:
                    raise
                except ReproError:
                    # The original batch was rejected mid-way (e.g. a
                    # document-order violation); replay re-establishes
                    # the same partial application, so the same error
                    # here is expected, not a failure.
                    pass
        self._recoveries += 1

    def _request(self, shard: int, op: str, *args):
        """One-shard request with a single recover-and-retry on crash."""
        try:
            return self._workers[shard].request(op, *args, vocab=self._vocab)
        except WorkerCrashError:
            self._recover(shard)
            return self._workers[shard].request(op, *args, vocab=self._vocab)

    def _broadcast(self, op: str, *args) -> List:
        """Pipelined all-shard request (send all, then read all replies)."""
        results: List = [None] * self.n_shards
        crashed: List[int] = []
        error: Optional[ReproError] = None
        for shard, handle in enumerate(self._workers):
            try:
                handle.send(op, *args, vocab=self._vocab)
            except WorkerCrashError:
                crashed.append(shard)
        for shard, handle in enumerate(self._workers):
            if shard in crashed:
                continue
            try:
                results[shard] = handle.recv()
            except WorkerCrashError:
                crashed.append(shard)
            except ReproError as exc:
                # Shards run identical validation over identical input,
                # so a non-crash rejection is common to every shard;
                # remember one instance and keep draining replies.
                error = exc
        for shard in crashed:
            self._recover(shard)
            try:
                results[shard] = self._workers[shard].request(
                    op, *args, vocab=self._vocab
                )
            except ReproError as exc:
                if isinstance(exc, WorkerCrashError):
                    raise
                error = exc
        if error is not None:
            raise error
        return results

    # -- routing ------------------------------------------------------------

    def _route(self, query: DasQuery) -> int:
        if self.routing == "round_robin":
            shard = self._next_round_robin
            self._next_round_robin = (shard + 1) % self.n_shards
            return shard
        if self.routing == "hash":
            return query.query_id % self.n_shards
        loads = [load["postings"] for load in self._broadcast("load")]
        return loads.index(min(loads))

    # -- engine facade ------------------------------------------------------

    def subscribe(self, query: DasQuery) -> List[Document]:
        self._check_open()
        if query.query_id in self._assignment:
            raise DuplicateQueryError(
                f"query {query.query_id} already subscribed"
            )
        shard = self._route(query)
        options = (query.location, query.window)
        doc_ids = self._request(
            shard,
            "subscribe",
            query.query_id,
            encode_query_terms(query.terms, self._vocab),
            options,
        )
        self._assignment[query.query_id] = shard
        if self._last_query_id is None or query.query_id > self._last_query_id:
            self._last_query_id = query.query_id
        self._journal.append(
            ("subscribe", shard, query.query_id, query.terms, options)
        )
        return [self._documents[doc_id] for doc_id in doc_ids]

    def unsubscribe(self, query_id: int) -> None:
        self._check_open()
        shard = self.shard_of(query_id)
        self._request(shard, "unsubscribe", query_id)
        del self._assignment[query_id]
        self._journal.append(("unsubscribe", shard, query_id))

    def publish(self, document: Document) -> List[Notification]:
        return self.publish_batch([document])

    def publish_batch(
        self, documents: Iterable[Document]
    ) -> List[Notification]:
        """Broadcast a batch to every worker; merge in document order.

        The batch is encoded once (term-id arrays against the master
        vocabulary) and written **once** into the shared-memory ring;
        every worker decodes the same region in place, so the per-worker
        cost of shipping a document is a 3-int pipe tuple, not a pickled
        payload.  Batches the binary codec cannot represent (term count
        above uint16, oversized text) or that do not fit the ring fall
        back to the pickle pipe — same worker code path, same results.
        Workers match concurrently; compact reply records are collected
        afterwards and interleaved document-major / shard-minor,
        matching the sharded engine and the single-engine oracle
        exactly.

        The ring reservation is freed only after the broadcast fully
        settles: crash recovery inside ``_broadcast`` retries the same
        ``(offset, length)``, so the region must stay valid until every
        worker (including respawned ones) has replied.
        """
        self._check_open()
        docs = list(documents)
        if not docs:
            return []
        payload = tuple(
            encode_document(document, self._vocab) for document in docs
        )
        for document in docs:
            self._documents[document.doc_id] = document
        wire = self._wire
        op_args = None
        reserved = False
        if self._ring is not None:
            started = time.perf_counter()
            try:
                blob = encode_document_batch(payload)
            except WIRE_OVERFLOW:
                blob = None
            if blob is not None:
                offset = self._ring.try_reserve(len(blob))
                if offset is not None:
                    self._ring.write(offset, blob)
                    wire["encode_seconds"] += time.perf_counter() - started
                    wire["shm_docs"] += len(docs)
                    wire["shm_bytes"] += len(blob)
                    reserved = True
                    op_args = ("publish_shm", offset, len(blob), len(docs))
            if op_args is None:
                wire["shm_fallbacks"] += 1
        if op_args is None:
            wire["pipe_docs"] += len(docs)
            op_args = ("publish_batch", payload)
        tally_before = self._pipe_tally[0]
        try:
            per_shard = self._broadcast(*op_args)
        finally:
            # Actual bytes pickled onto the worker pipes for this batch:
            # the full payload per worker on the pipe transport, a tiny
            # (offset, length, count) tuple per worker on the shm one.
            wire["pipe_bytes"] += self._pipe_tally[0] - tally_before
            if reserved:
                self._ring.free_oldest()
            # Journal the batch even when it was (identically) rejected
            # part-way: replaying it reproduces the same partial state.
            self._journal.append(
                ("publish", tuple(document.doc_id for document in docs))
            )
            for document in docs:
                if document.created_at > self._now:
                    self._now = document.created_at
                if (
                    self._last_doc_id is None
                    or document.doc_id > self._last_doc_id
                ):
                    self._last_doc_id = document.doc_id
        wire["reply_bytes"] += sum(len(blob) for blob in per_shard)
        per_shard = [
            decode_notification_segments(blob) for blob in per_shard
        ]
        merged: List[Notification] = []
        documents_by_id = self._documents
        # Merge by segment position, not by subject doc id: strategy
        # modes notify about documents other than the published one
        # (window promotions), so both the subject and the replaced
        # document resolve through the parent mirror.
        for position in range(len(docs)):
            for segments in per_shard:
                for query_id, doc_id, replaced_id in segments[position]:
                    merged.append(
                        Notification(
                            query_id,
                            documents_by_id[doc_id],
                            documents_by_id[replaced_id]
                            if replaced_id is not None
                            else None,
                        )
                    )
        return merged

    def results(self, query_id: int) -> List[Document]:
        self._check_open()
        shard = self.shard_of(query_id)
        doc_ids = self._request(shard, "results", query_id)
        return [self._documents[doc_id] for doc_id in doc_ids]

    def current_dr(self, query_id: int) -> float:
        self._check_open()
        return self._request(self.shard_of(query_id), "current_dr", query_id)

    # -- observability ------------------------------------------------------

    @property
    def counters(self) -> Counters:
        """Aggregated work counters across workers (one IPC round trip)."""
        self._check_open()
        total = Counters()
        for shard_counters in self._broadcast("counters"):
            total = total + shard_counters
        total.docs_published //= self.n_shards
        return total

    def shard_loads(self) -> List[Dict[str, int]]:
        self._check_open()
        return self._broadcast("load")

    def telemetry_snapshot(self) -> Optional[Dict]:
        """Parent-side merge of every worker's telemetry snapshot.

        Workers return JSON-safe wire forms over the pipe; histogram
        merge is associative and commutative, so the aggregate is
        independent of worker reply order.
        """
        self._check_open()
        snapshots = self._broadcast("telemetry")
        if all(snapshot is None for snapshot in snapshots):
            return None
        return merge_snapshots(snapshots)

    # -- persistence --------------------------------------------------------

    def checkpoint(self) -> Dict:
        """Fan out checkpoints to every worker; combine as a sharded dict.

        The payload is byte-identical in shape to
        :func:`repro.persistence.checkpoint.checkpoint_sharded` on an
        equivalent in-process sharded engine, so parallel and sharded
        checkpoints are interchangeable (tests compare them directly).
        As a side effect the journal resets — each worker's fresh
        checkpoint becomes its recovery base — and the parent document
        mirror is pruned to the ids the checkpoints still reference.
        """
        self._check_open()
        payloads = self._broadcast("checkpoint")
        self._checkpoints = list(payloads)
        self._journal = []
        referenced = set()
        for shard_payload in payloads:
            for record in shard_payload["documents"]:
                referenced.add(int(record["id"]))
        self._documents = {
            doc_id: document
            for doc_id, document in self._documents.items()
            if doc_id in referenced
        }
        return {
            "version": CHECKPOINT_VERSION,
            "sharded": True,
            "routing": self.routing,
            "assignment": {
                str(query_id): shard
                for query_id, shard in sorted(self._assignment.items())
            },
            "next_round_robin": self._next_round_robin,
            "shards": payloads,
        }

    @classmethod
    def from_checkpoint(
        cls, payload: Dict, **kwargs
    ) -> "ParallelShardedEngine":
        """Rebuild from a sharded checkpoint, one worker per shard entry.

        Accepts the exact payloads produced by :meth:`checkpoint` *and*
        by :func:`~repro.persistence.checkpoint.checkpoint_sharded` — a
        single-process sharded deployment can be brought back up
        process-parallel from its last checkpoint.
        """
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version!r} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        if not payload.get("sharded"):
            raise ValueError(
                "expected a sharded checkpoint (single-engine payloads "
                "restore via repro.persistence.restore)"
            )
        shard_payloads = payload["shards"]
        engine = cls(
            len(shard_payloads),
            config=_config_from_dict(shard_payloads[0]["config"]),
            routing=payload["routing"],
            **kwargs,
        )
        engine._assignment = {
            int(query_id): int(shard)
            for query_id, shard in payload["assignment"].items()
        }
        engine._next_round_robin = int(payload["next_round_robin"])
        engine._last_query_id = (
            max(engine._assignment) if engine._assignment else None
        )
        engine._checkpoints = list(shard_payloads)
        for shard_payload in shard_payloads:
            engine._now = max(engine._now, float(shard_payload["now"]))
            for record in shard_payload["documents"]:
                doc_id = int(record["id"])
                if doc_id not in engine._documents:
                    engine._documents[doc_id] = Document(
                        doc_id,
                        TermVector(
                            {t: int(c) for t, c in record["tf"].items()}
                        ),
                        float(record["t"]),
                        record.get("text"),
                        record.get("loc"),
                    )
        if engine._documents:
            engine._last_doc_id = max(engine._documents)
        for shard, shard_payload in enumerate(shard_payloads):
            engine._request(shard, "restore", shard_payload)
        return engine

    # -- lifecycle ----------------------------------------------------------

    def kill_worker(self, shard: int) -> None:
        """Hard-kill one worker (chaos/test helper); no recovery yet —
        the next op touching the shard detects the death and recovers."""
        handle = self._workers[shard]
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(2.0)

    def close(self) -> None:
        """Stop every worker; the engine rejects ops afterwards."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            try:
                handle.send("stop", vocab=self._vocab)
                handle.recv()
            except (ReproError, OSError):
                pass
            handle.close()
        if self._ring is not None:
            self._ring.close()
            self._ring = None

    def __enter__(self) -> "ParallelShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # noqa: BLE001 — interpreter may be tearing down
            pass
