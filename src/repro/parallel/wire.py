"""Pickle-lean wire format between the parent and shard workers.

Every message crossing a worker pipe is a flat tuple of ints, floats and
short strings — never an engine object.  Documents in particular are
shipped *pre-tokenized*: the parent interns each term against its master
:class:`~repro.text.vocabulary.Vocabulary` once and sends term-id /
term-count arrays, so a term string crosses the process boundary exactly
once (inside a vocabulary delta) no matter how many documents contain
it.  Workers keep a replica vocabulary in sync by applying the delta
that prefixes every request (see :mod:`repro.parallel.worker`).

Message framing (parent -> worker)::

    (op, vocab_delta, *args)

where ``vocab_delta`` is the list of master-vocabulary terms the worker
has not seen yet, in id order — appending them to the replica reproduces
the master's id assignment exactly.  Replies are ``("ok", result)`` or
``("err", exc_type_name, message)``; errors are reconstructed on the
parent from the :mod:`repro.errors` hierarchy by name so a worker-side
:class:`~repro.errors.DocumentOrderError` raises as the same type in the
caller.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Sequence, Tuple

from repro import errors as _errors
from repro.core.query import DasQuery
from repro.errors import ReproError
from repro.stream.document import Document
from repro.text.vectors import TermVector
from repro.text.vocabulary import Vocabulary

#: A document on the wire: (doc_id, created_at, term_ids, term_counts,
#: text[, location]).  The sixth element is optional — payloads without
#: a location stay five-tuples, keeping the pre-strategy wire shape.
DocumentPayload = Tuple[int, float, Tuple[int, ...], Tuple[int, ...], object]


def encode_document(document: Document, vocab: Vocabulary) -> DocumentPayload:
    """Intern the document's terms and return its wire tuple.

    Term ids are ascending, mirroring :meth:`TermVector.packed`; counts
    are the raw term frequencies so the worker can rebuild an identical
    :class:`TermVector` (same norms, same packed arrays).
    """
    pairs = sorted(
        (vocab.add(term), count) for term, count in document.vector.items()
    )
    payload = (
        document.doc_id,
        document.created_at,
        tuple(pair[0] for pair in pairs),
        tuple(pair[1] for pair in pairs),
        document.text,
    )
    if document.location is not None:
        payload += (document.location,)
    return payload


def decode_document(payload: DocumentPayload, vocab: Vocabulary) -> Document:
    """Inverse of :func:`encode_document` against the replica vocabulary."""
    doc_id, created_at, ids, counts, text = payload[:5]
    location = payload[5] if len(payload) > 5 else None
    tf = {vocab.term_of(i): count for i, count in zip(ids, counts)}
    return Document(
        int(doc_id), TermVector(tf), float(created_at), text, location
    )


def encode_query_terms(
    terms: Tuple[str, ...], vocab: Vocabulary
) -> Tuple[int, ...]:
    """Intern a query's keyword tuple as term ids."""
    return tuple(vocab.add(term) for term in terms)


def encode_query_options(query: DasQuery) -> Tuple[object, object]:
    """The strategy-mode subscribe options as a tiny picklable pair."""
    return (query.location, query.window)


def decode_query(
    query_id: int,
    term_ids: Tuple[int, ...],
    vocab: Vocabulary,
    options: Optional[Tuple[object, object]] = None,
) -> DasQuery:
    """Rebuild a :class:`DasQuery` (it re-sorts and dedups internally)."""
    location, window = options if options is not None else (None, None)
    return DasQuery(
        int(query_id), vocab.decode(term_ids), location=location, window=window
    )


#: A notification on the wire: (query_id, doc_id, replaced_doc_id | None).
NotificationPayload = Tuple[int, int, object]


def encode_notifications(notifications) -> List[NotificationPayload]:
    """Strip notifications to id triples; the parent re-attaches documents."""
    return [
        (
            notification.query_id,
            notification.document.doc_id,
            notification.replaced.doc_id
            if notification.replaced is not None
            else None,
        )
        for notification in notifications
    ]


#: Struct layouts of the binary batch codec (little-endian, packed).
_BATCH_HEADER = struct.Struct("<I")
_DOC_HEADER = struct.Struct("<qdII")
_RECORD = struct.Struct("<qqq")
#: Per-document location trailer: u8 presence flag, then two f64 when set.
_LOC_FLAG = struct.Struct("<B")
_LOC_PAIR = struct.Struct("<dd")
#: ``text_len`` sentinel distinguishing ``None`` from the empty string.
_TEXT_NONE = 0xFFFFFFFF

#: Exceptions the binary codec raises on out-of-range fields (term count
#: above uint16, term id above uint32, pathological text).  Callers
#: catch this tuple and fall back to the pickle pipe — overflow is a
#: routing decision, not an error.
WIRE_OVERFLOW = (struct.error, ValueError, OverflowError)


def encode_document_batch(payloads: Sequence[DocumentPayload]) -> bytes:
    """Pack document payloads into one flat binary blob (shm wire form).

    Layout: ``u32 ndocs`` then per document ``i64 doc_id, f64 created_at,
    u32 nterms, u32 text_len`` followed by ``nterms`` u32 term ids,
    ``nterms`` u16 term counts, the utf-8 text bytes (``text_len`` is
    the :data:`_TEXT_NONE` sentinel for ``None``) and a location trailer:
    ``u8 has_location`` then ``f64 x, f64 y`` when set.  Raises one of
    :data:`WIRE_OVERFLOW` when a field does not fit — the caller then
    ships the batch over the pipe instead.
    """
    parts = [_BATCH_HEADER.pack(len(payloads))]
    for payload in payloads:
        doc_id, created_at, ids, counts, text = payload[:5]
        location = payload[5] if len(payload) > 5 else None
        if text is None:
            text_bytes = b""
            text_len = _TEXT_NONE
        else:
            text_bytes = text.encode("utf-8")
            text_len = len(text_bytes)
            if text_len >= _TEXT_NONE:
                raise ValueError("document text too long for the shm wire")
        n = len(ids)
        parts.append(_DOC_HEADER.pack(doc_id, created_at, n, text_len))
        parts.append(struct.pack(f"<{n}I", *ids))
        parts.append(struct.pack(f"<{n}H", *counts))
        parts.append(text_bytes)
        if location is None:
            parts.append(_LOC_FLAG.pack(0))
        else:
            parts.append(_LOC_FLAG.pack(1))
            parts.append(_LOC_PAIR.pack(location[0], location[1]))
    return b"".join(parts)


def iter_document_payloads(buffer) -> Iterator[DocumentPayload]:
    """Decode a :func:`encode_document_batch` blob lazily, in place.

    Works directly over any buffer object (a shared-memory view in the
    worker), copying only the text bytes; yielding per document lets the
    worker time each document's decode as one telemetry observation.
    """
    (ndocs,) = _BATCH_HEADER.unpack_from(buffer, 0)
    offset = _BATCH_HEADER.size
    for _ in range(ndocs):
        doc_id, created_at, n, text_len = _DOC_HEADER.unpack_from(
            buffer, offset
        )
        offset += _DOC_HEADER.size
        ids = struct.unpack_from(f"<{n}I", buffer, offset)
        offset += 4 * n
        counts = struct.unpack_from(f"<{n}H", buffer, offset)
        offset += 2 * n
        if text_len == _TEXT_NONE:
            text = None
        else:
            text = bytes(buffer[offset : offset + text_len]).decode("utf-8")
            offset += text_len
        (has_location,) = _LOC_FLAG.unpack_from(buffer, offset)
        offset += _LOC_FLAG.size
        if has_location:
            location = _LOC_PAIR.unpack_from(buffer, offset)
            offset += _LOC_PAIR.size
            yield (doc_id, created_at, ids, counts, text, location)
        else:
            yield (doc_id, created_at, ids, counts, text)


def decode_document_batch(buffer) -> List[DocumentPayload]:
    """Eager inverse of :func:`encode_document_batch` (tests, tooling)."""
    return list(iter_document_payloads(buffer))


def encode_notification_records(notifications) -> bytes:
    """Pack notifications as fixed-width records (the compact reply form).

    One ``i64 × 3`` record per notification — query id, document id,
    replaced document id (``-1`` encodes "no eviction") — prefixed with
    a u32 count.  Workers return this blob instead of a pickled list of
    tuples for every publish reply.
    """
    parts = [_BATCH_HEADER.pack(len(notifications))]
    for notification in notifications:
        replaced = notification.replaced
        parts.append(
            _RECORD.pack(
                notification.query_id,
                notification.document.doc_id,
                replaced.doc_id if replaced is not None else -1,
            )
        )
    return b"".join(parts)


def decode_notification_records(data) -> List[NotificationPayload]:
    """Inverse of :func:`encode_notification_records` -> id triples."""
    (count,) = _BATCH_HEADER.unpack_from(data, 0)
    offset = _BATCH_HEADER.size
    triples: List[NotificationPayload] = []
    for _ in range(count):
        query_id, doc_id, replaced_id = _RECORD.unpack_from(data, offset)
        offset += _RECORD.size
        triples.append(
            (query_id, doc_id, replaced_id if replaced_id >= 0 else None)
        )
    return triples


def encode_notification_segments(segments) -> bytes:
    """Pack per-document notification segments (the publish reply form).

    ``u32 nsegments`` then per segment a
    :func:`encode_notification_records` blob.  The parent merges
    notification streams across shards by *segment position* — strategy
    modes may notify about documents other than the published one
    (window promotions), so the segment boundary is the only reliable
    document attribution.
    """
    parts = [_BATCH_HEADER.pack(len(segments))]
    for notifications in segments:
        parts.append(encode_notification_records(notifications))
    return b"".join(parts)


def decode_notification_segments(data) -> List[List[NotificationPayload]]:
    """Inverse of :func:`encode_notification_segments` -> triple lists."""
    (nsegments,) = _BATCH_HEADER.unpack_from(data, 0)
    offset = _BATCH_HEADER.size
    segments: List[List[NotificationPayload]] = []
    for _ in range(nsegments):
        (count,) = _BATCH_HEADER.unpack_from(data, offset)
        offset += _BATCH_HEADER.size
        triples: List[NotificationPayload] = []
        for _ in range(count):
            query_id, doc_id, replaced_id = _RECORD.unpack_from(data, offset)
            offset += _RECORD.size
            triples.append(
                (query_id, doc_id, replaced_id if replaced_id >= 0 else None)
            )
        segments.append(triples)
    return segments


def encode_error(exc: BaseException) -> Tuple[str, str, str]:
    return ("err", type(exc).__name__, str(exc))


def decode_error(type_name: str, message: str) -> ReproError:
    """Map a worker error back to its :mod:`repro.errors` class by name.

    Unknown names (e.g. a worker-side ``ValueError``) degrade to the
    base :class:`ReproError` with the original type recorded in the
    message — the parent must never crash on an unrecognised error.
    """
    candidate = getattr(_errors, type_name, None)
    if isinstance(candidate, type) and issubclass(candidate, ReproError):
        return candidate(message)
    return ReproError(f"{type_name}: {message}")
