"""Pickle-lean wire format between the parent and shard workers.

Every message crossing a worker pipe is a flat tuple of ints, floats and
short strings — never an engine object.  Documents in particular are
shipped *pre-tokenized*: the parent interns each term against its master
:class:`~repro.text.vocabulary.Vocabulary` once and sends term-id /
term-count arrays, so a term string crosses the process boundary exactly
once (inside a vocabulary delta) no matter how many documents contain
it.  Workers keep a replica vocabulary in sync by applying the delta
that prefixes every request (see :mod:`repro.parallel.worker`).

Message framing (parent -> worker)::

    (op, vocab_delta, *args)

where ``vocab_delta`` is the list of master-vocabulary terms the worker
has not seen yet, in id order — appending them to the replica reproduces
the master's id assignment exactly.  Replies are ``("ok", result)`` or
``("err", exc_type_name, message)``; errors are reconstructed on the
parent from the :mod:`repro.errors` hierarchy by name so a worker-side
:class:`~repro.errors.DocumentOrderError` raises as the same type in the
caller.
"""

from __future__ import annotations

from typing import List, Tuple

from repro import errors as _errors
from repro.core.query import DasQuery
from repro.errors import ReproError
from repro.stream.document import Document
from repro.text.vectors import TermVector
from repro.text.vocabulary import Vocabulary

#: A document on the wire: (doc_id, created_at, term_ids, term_counts, text).
DocumentPayload = Tuple[int, float, Tuple[int, ...], Tuple[int, ...], object]


def encode_document(document: Document, vocab: Vocabulary) -> DocumentPayload:
    """Intern the document's terms and return its wire tuple.

    Term ids are ascending, mirroring :meth:`TermVector.packed`; counts
    are the raw term frequencies so the worker can rebuild an identical
    :class:`TermVector` (same norms, same packed arrays).
    """
    pairs = sorted(
        (vocab.add(term), count) for term, count in document.vector.items()
    )
    return (
        document.doc_id,
        document.created_at,
        tuple(pair[0] for pair in pairs),
        tuple(pair[1] for pair in pairs),
        document.text,
    )


def decode_document(payload: DocumentPayload, vocab: Vocabulary) -> Document:
    """Inverse of :func:`encode_document` against the replica vocabulary."""
    doc_id, created_at, ids, counts, text = payload
    tf = {vocab.term_of(i): count for i, count in zip(ids, counts)}
    return Document(int(doc_id), TermVector(tf), float(created_at), text)


def encode_query_terms(
    terms: Tuple[str, ...], vocab: Vocabulary
) -> Tuple[int, ...]:
    """Intern a query's keyword tuple as term ids."""
    return tuple(vocab.add(term) for term in terms)


def decode_query(
    query_id: int, term_ids: Tuple[int, ...], vocab: Vocabulary
) -> DasQuery:
    """Rebuild a :class:`DasQuery` (it re-sorts and dedups internally)."""
    return DasQuery(int(query_id), vocab.decode(term_ids))


#: A notification on the wire: (query_id, doc_id, replaced_doc_id | None).
NotificationPayload = Tuple[int, int, object]


def encode_notifications(notifications) -> List[NotificationPayload]:
    """Strip notifications to id triples; the parent re-attaches documents."""
    return [
        (
            notification.query_id,
            notification.document.doc_id,
            notification.replaced.doc_id
            if notification.replaced is not None
            else None,
        )
        for notification in notifications
    ]


def encode_error(exc: BaseException) -> Tuple[str, str, str]:
    return ("err", type(exc).__name__, str(exc))


def decode_error(type_name: str, message: str) -> ReproError:
    """Map a worker error back to its :mod:`repro.errors` class by name.

    Unknown names (e.g. a worker-side ``ValueError``) degrade to the
    base :class:`ReproError` with the original type recorded in the
    message — the parent must never crash on an unrecognised error.
    """
    candidate = getattr(_errors, type_name, None)
    if isinstance(candidate, type) and issubclass(candidate, ReproError):
        return candidate(message)
    return ReproError(f"{type_name}: {message}")
