"""Shared-memory byte ring for the parent -> worker document path.

:class:`ShmRing` is a single-producer arena over one
:class:`multiprocessing.shared_memory.SharedMemory` segment.  The parent
(the only writer) reserves a contiguous region, writes an encoded batch
into it, and ships just ``(offset, length)`` over the request pipe;
every worker maps the same segment once at startup and decodes the batch
in place — the document bytes are written exactly once no matter how
many workers consume them, and nothing is pickled.

There are deliberately **no shared head/tail pointers** in the segment:
the strict request/reply pipe protocol is the only synchronisation.  A
region stays reserved until every worker has replied to the request that
referenced it (including crash-recovery retries, which resend the same
``(offset, length)``), so the allocator is a plain parent-side FIFO:

* ``try_reserve(n)`` hands out a contiguous ``[offset, offset + n)`` —
  wrapping to 0 when the tail of the buffer is too short — or returns
  ``None`` when the ring is full (the caller falls back to the pipe,
  which is backpressure, not failure);
* ``free_oldest()`` retires reservations in reservation order.

CPython wart: a child process that *attaches* to an existing segment
still registers it with :mod:`multiprocessing.resource_tracker`, which
would unlink the segment when the first child exits.  :meth:`attach`
unregisters the mapping so the creating parent keeps sole ownership of
the segment's lifetime.
"""

from __future__ import annotations

from collections import deque
from multiprocessing import resource_tracker, shared_memory
from typing import Optional, Tuple

#: Default ring size; a batch that does not fit falls back to the pipe.
DEFAULT_RING_BYTES = 1 << 20


class ShmRing:
    """Contiguous-reservation byte ring over one shared-memory segment."""

    __slots__ = ("shm", "capacity", "owner", "_head", "_tail", "_pending")

    def __init__(
        self, shm: shared_memory.SharedMemory, capacity: int, owner: bool
    ) -> None:
        self.shm = shm
        self.capacity = capacity
        self.owner = owner
        self._head = 0
        self._tail = 0
        #: Outstanding reservations, oldest first: (offset, length).
        self._pending: deque = deque()

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, capacity: int = DEFAULT_RING_BYTES) -> "ShmRing":
        """Create a fresh segment; the creator owns (and unlinks) it."""
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        shm = shared_memory.SharedMemory(create=True, size=capacity)
        return cls(shm, capacity, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "ShmRing":
        """Map an existing segment read-only-by-convention (worker side).

        Attaching would normally register the segment with the process
        tree's shared :mod:`resource_tracker`, whose bookkeeping is one
        *set* of names — a child registering and later unregistering
        would erase the parent's entry and turn the parent's ``unlink``
        into a tracker warning.  Registration is suppressed for the
        duration of the attach instead: only the creating parent ever
        tracks the segment.
        """
        original = resource_tracker.register

        def _skip_shared_memory(target, rtype):
            if rtype != "shared_memory":
                original(target, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
        return cls(shm, capacity, owner=False)

    @property
    def name(self) -> str:
        return self.shm.name

    # -- producer-side allocator --------------------------------------------

    def try_reserve(self, length: int) -> Optional[int]:
        """Reserve a contiguous region; ``None`` means the ring is full."""
        if length < 1 or length > self.capacity:
            return None
        if not self._pending:
            self._head = length
            self._tail = 0
            self._pending.append((0, length))
            return 0
        head, tail = self._head, self._tail
        if head >= tail:
            if self.capacity - head >= length:
                offset = head
                self._head = head + length
            elif tail > length:
                # The tail of the buffer is too short; wrap to 0.  The
                # strict inequality keeps head != tail while non-empty,
                # so free space never aliases reserved space.
                offset = 0
                self._head = length
            else:
                return None
        else:
            if tail - head > length:
                offset = head
                self._head = head + length
            else:
                return None
        self._pending.append((offset, length))
        return offset

    def free_oldest(self) -> Tuple[int, int]:
        """Retire the oldest reservation; returns its (offset, length)."""
        offset, length = self._pending.popleft()
        if not self._pending:
            # Empty ring: rewind so the next batch gets the whole
            # buffer contiguously.
            self._head = 0
            self._tail = 0
        else:
            self._tail = self._pending[0][0]
        return offset, length

    def pending_count(self) -> int:
        return len(self._pending)

    # -- data plane ----------------------------------------------------------

    def write(self, offset: int, data: bytes) -> None:
        self.shm.buf[offset : offset + len(data)] = data

    def view(self, offset: int, length: int) -> memoryview:
        """Zero-copy window onto a region (release it after decoding)."""
        return self.shm.buf[offset : offset + length]

    def read(self, offset: int, length: int) -> bytes:
        return bytes(self.shm.buf[offset : offset + length])

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Unmap the segment; the owner also unlinks it."""
        try:
            self.shm.close()
        except (OSError, BufferError):
            pass
        if self.owner:
            try:
                self.shm.unlink()
            except (OSError, FileNotFoundError):
                pass

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # noqa: BLE001 — interpreter may be tearing down
            pass
