"""Diversity-Aware Top-k Publish/Subscribe for Text Streams.

Reproduction of Chen & Cong, SIGMOD 2015.  The package maintains, for a
large number of standing keyword subscriptions (DAS queries), a top-k
result set over a text stream that balances text relevance, document
recency and result diversity — with the paper's group (MCS) and
individual (aggregated term weight) filtering techniques making the
matching scale.

Quickstart::

    from repro import DasEngine, DasQuery, Document

    engine = DasEngine.for_method("GIFilter", k=5)
    engine.subscribe(DasQuery(0, ["coffee", "espresso"]))
    engine.publish(Document.from_text(0, "fresh espresso downtown", 0.0))
    for doc in engine.results(0):
        print(doc.text)
"""

from repro.baselines import (
    BirtEngine,
    DiscEngine,
    IrtEngine,
    MsIncEngine,
    NaiveEngine,
)
from repro.config import (
    SLOW_CONSUMER_POLICIES,
    UNLIMITED,
    EngineConfig,
    GroupBoundMode,
    ServerConfig,
    birt_config,
    gifilter_config,
    ifilter_config,
    irt_config,
)
from repro.core import DasEngine, DasQuery, Notification
from repro.distributed import ShardedDasEngine
from repro.pubsub import Mailbox, PublishSubscribeService, Subscription
from repro.errors import (
    ConfigurationError,
    DocumentOrderError,
    DuplicateDocumentError,
    DuplicateQueryError,
    EmptyQueryError,
    ProtocolError,
    QueryOrderError,
    ReproError,
    ServerClosedError,
    UnknownQueryError,
)
from repro.server import (
    InProcessClient,
    NdjsonTcpClient,
    NdjsonTcpServer,
    ServerRuntime,
)
from repro.metrics import Counters
from repro.scoring import ExponentialDecay, LanguageModelScorer
from repro.stream import Document, DocumentStore, SimulationClock
from repro.text import CollectionStatistics, TermVector, Tokenizer
from repro.workloads import SyntheticTweetCorpus, lqd_queries, sqd_queries

__version__ = "1.0.0"

__all__ = [
    "BirtEngine",
    "CollectionStatistics",
    "ConfigurationError",
    "Counters",
    "DasEngine",
    "DasQuery",
    "DiscEngine",
    "Document",
    "DocumentOrderError",
    "DocumentStore",
    "DuplicateDocumentError",
    "DuplicateQueryError",
    "EmptyQueryError",
    "EngineConfig",
    "ExponentialDecay",
    "GroupBoundMode",
    "InProcessClient",
    "IrtEngine",
    "LanguageModelScorer",
    "Mailbox",
    "MsIncEngine",
    "NaiveEngine",
    "NdjsonTcpClient",
    "NdjsonTcpServer",
    "Notification",
    "ProtocolError",
    "PublishSubscribeService",
    "SLOW_CONSUMER_POLICIES",
    "ServerClosedError",
    "ServerConfig",
    "ServerRuntime",
    "ShardedDasEngine",
    "Subscription",
    "QueryOrderError",
    "ReproError",
    "SimulationClock",
    "SyntheticTweetCorpus",
    "TermVector",
    "Tokenizer",
    "UNLIMITED",
    "UnknownQueryError",
    "birt_config",
    "gifilter_config",
    "ifilter_config",
    "irt_config",
    "lqd_queries",
    "sqd_queries",
]
