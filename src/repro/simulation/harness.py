"""Seeded, deterministic chaos runs against the serving runtime.

One :class:`SimulationHarness` run is a pure function of ``(seed, ops,
engine config, fault plan)``:

* the op schedule (subscribe / unsubscribe / publish bursts / results /
  consume) is pre-generated from ``random.Random(seed)``;
* the runtime runs with ``inline_matcher=True`` (no executor thread) and
  a :class:`~repro.simulation.clock.SimulatedClock` as ``time_source``,
  so asyncio's deterministic ready-queue ordering is the only scheduler
  and no wall-clock value can leak into accepted state;
* the engine uses the pure-Python kernel backend, so floating-point
  evaluation order is identical across hosts.

After every op the :class:`~repro.simulation.invariants.InvariantMonitor`
audits result-set sizes, Lemma 1 replacement ordering, the Lemma 2
filtering bound, and oracle equivalence.  Crash-recovery runs checkpoint
at op ``c``, kill the runtime without drain at op ``m``, restore, rewind
the driver to ``c`` and replay — final result sets must equal an
unfailed reference run's (the replay-equivalence invariant).
"""

from __future__ import annotations

import asyncio
import os
import random
import shutil
import tempfile
from typing import Dict, List, Optional, Tuple

from repro.config import EngineConfig, ServerConfig
from repro.core.engine import DasEngine
from repro.errors import ReproError
from repro.persistence.checkpoint import (
    checkpoint as take_checkpoint,
    restore as restore_engine,
    save as save_checkpoint,
)
from repro.server.runtime import ServerRuntime
from repro.server.sessions import SubscriberSession
from repro.simulation.clock import SimulatedClock
from repro.simulation.faults import FaultInjector, FaultPlan
from repro.simulation.invariants import InstrumentedEngine, InvariantMonitor
from repro.telemetry import CountingClock, Telemetry

#: Keyword universe of generated schedules (small, so queries overlap and
#: blocks fill up — the interesting regime for group filtering).
VOCAB = (
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta",
    "eta", "theta", "iota", "kappa", "mu", "nu",
)

#: One subscriber session per entry; ``block`` gets headroom so the
#: matcher can never deadlock against a stalled blocking consumer while
#: the driver awaits publish acks.
ACTORS = (
    {"policy": "block", "capacity": 4096},
    {"policy": "drop_oldest", "capacity": 8},
    {"policy": "coalesce", "capacity": 8},
)


def default_engine_config(**overrides) -> EngineConfig:
    """Small GIFilter engine: k=3, 4-wide blocks, pure-Python kernels."""
    base = dict(k=3, block_size=4, backend="python", init_scan_limit=8)
    base.update(overrides)
    return EngineConfig(**base)


def generate_schedule(
    rng: random.Random, n_ops: int, mode: str = "decay"
) -> List[Dict]:
    """A concrete op list — every choice resolved before execution.

    ``mode`` shapes the strategy-specific fields: spatial schedules give
    every query a location and most documents one (a few stay
    location-less to exercise the zero-proximity path); window schedules
    give roughly half the queries a per-query window override.  The
    decay path draws exactly the same random sequence as before the
    strategy modes existed, so seeded decay schedules are unchanged.
    """
    ops: List[Dict] = []
    for index in range(n_ops):
        roll = rng.random()
        if index < 3 or roll < 0.18:
            op = {
                "op": "subscribe",
                "actor": rng.randrange(len(ACTORS)),
                "keywords": rng.sample(VOCAB, rng.randint(2, 4)),
            }
            if mode == "spatial":
                op["location"] = [rng.random(), rng.random()]
            elif mode == "window" and rng.random() < 0.5:
                op["window"] = rng.randint(2, 12)
            ops.append(op)
        elif roll < 0.24:
            ops.append({"op": "unsubscribe", "index": rng.randrange(64)})
        elif roll < 0.72:
            burst = 1 if rng.random() < 0.6 else rng.randint(2, 4)
            op = {
                "op": "publish",
                "burst": [
                    [rng.choice(VOCAB) for _ in range(rng.randint(2, 6))]
                    for _ in range(burst)
                ],
            }
            if mode == "spatial":
                op["locations"] = [
                    (
                        [rng.random(), rng.random()]
                        if rng.random() < 0.85
                        else None
                    )
                    for _ in range(burst)
                ]
            ops.append(op)
        elif roll < 0.86:
            ops.append({"op": "results", "index": rng.randrange(64)})
        else:
            ops.append(
                {
                    "op": "consume",
                    "actor": rng.randrange(len(ACTORS)),
                    "max": rng.randint(1, 6),
                }
            )
    return ops


def generate_random_plan(rng: random.Random) -> FaultPlan:
    """A random mixed fault plan for the chaos scenario."""
    choices = (
        ("ingest.put", "raise", 0),
        ("engine.publish_batch", "raise", 0),
        ("engine.doc", "raise", 0),
        ("engine.results", "raise", 0),
        ("consumer.pull", "stall", None),
        ("client.publish", "duplicate", 0),
        ("client.publish", "delay", None),
    )
    specs = []
    for _ in range(rng.randint(2, 4)):
        point, action, arg = rng.choice(choices)
        specs.append(
            FaultPlan.parse(
                f"{point}@{rng.randint(1, 8)}:{action}"
                + (f"({rng.randint(1, 5)})" if arg is None else "")
            ).specs[0]
        )
    return FaultPlan(specs)


class SimulationHarness:
    """One deterministic chaos run; see the module docstring."""

    def __init__(
        self,
        seed: int,
        ops: int = 80,
        engine_config: Optional[EngineConfig] = None,
        fault_plan=None,
        check_oracle: bool = True,
        checkpoint_at: Optional[int] = None,
        crash_at: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
    ) -> None:
        if isinstance(fault_plan, str):
            fault_plan = FaultPlan.parse(fault_plan)
        if crash_at is not None:
            if checkpoint_at is None or checkpoint_at >= crash_at:
                raise ValueError(
                    "crash_at requires an earlier checkpoint_at"
                )
            if check_oracle:
                raise ValueError(
                    "the per-op oracle cannot be rewound across a crash; "
                    "run crash scenarios with check_oracle=False"
                )
        self.seed = seed
        self.n_ops = ops
        self.engine_config = (
            engine_config
            if engine_config is not None
            else default_engine_config()
        )
        self.plan: Optional[FaultPlan] = fault_plan
        self.check_oracle = check_oracle
        self.checkpoint_at = checkpoint_at
        self.crash_at = crash_at
        self.checkpoint_path = checkpoint_path

    def _make_telemetry(self) -> Telemetry:
        """Deterministic telemetry: a counting clock instead of wall time,
        so stage histograms are a pure function of the schedule, and a
        seed-tied sampler so the traced document set replays exactly."""
        return Telemetry(
            time_fn=CountingClock(), sample_rate=0.25, seed=self.seed
        )

    def run(self) -> Dict:
        return asyncio.run(self._run())

    # -- internals ---------------------------------------------------------

    async def _start_runtime(
        self,
        instrumented: InstrumentedEngine,
        clock: SimulatedClock,
        injector: Optional[FaultInjector],
    ) -> Tuple[ServerRuntime, List[SubscriberSession]]:
        config = ServerConfig(
            inline_matcher=True,
            time_source=clock,
            fault_injector=injector,
            ingest_capacity=64,
            max_batch_size=8,
            drain_timeout=5.0,
        )
        runtime = ServerRuntime(instrumented, config)
        await runtime.start()
        sessions = [
            runtime.open_session(
                policy=actor["policy"], capacity=actor["capacity"]
            )
            for actor in ACTORS
        ]
        return runtime, sessions

    async def _run(self) -> Dict:
        schedule = generate_schedule(
            random.Random(self.seed), self.n_ops, self.engine_config.mode
        )
        clock = SimulatedClock()
        injector = self.plan.injector() if self.plan is not None else None
        engine = DasEngine(
            self.engine_config, telemetry=self._make_telemetry()
        )
        monitor = InvariantMonitor(engine, with_oracle=self.check_oracle)
        instrumented = InstrumentedEngine(engine, monitor, injector)
        runtime, sessions = await self._start_runtime(
            instrumented, clock, injector
        )

        active: List[Tuple[int, int]] = []  # (query_id, actor)
        errors: List[List] = []  # [op_index, error type]
        consumed = [0] * len(ACTORS)
        stall_until: Dict[int, int] = {}
        snapshot: Optional[Dict] = None
        crash_at = self.crash_at
        recovered = False
        checkpoint_file_error: Optional[str] = None

        index = 0
        while index < len(schedule):
            if (
                self.checkpoint_at is not None
                and index == self.checkpoint_at
                and snapshot is None
            ):
                snapshot = {
                    "payload": take_checkpoint(engine),
                    "clock": clock.snapshot(),
                    "active": [list(pair) for pair in active],
                    "errors": [list(record) for record in errors],
                    "consumed": list(consumed),
                    "schedule": list(schedule),
                    "injector": (
                        injector.snapshot() if injector is not None else None
                    ),
                }
                if self.checkpoint_path is not None:
                    try:
                        save_checkpoint(
                            engine, self.checkpoint_path, injector=injector
                        )
                    except ReproError as exc:
                        checkpoint_file_error = type(exc).__name__
                        errors.append([index, checkpoint_file_error])
            if crash_at is not None and index == crash_at:
                # Hard crash: no drain, in-memory engine state is lost.
                await runtime.stop(drain=False)
                engine = restore_engine(snapshot["payload"])
                # In-memory telemetry died with the crashed process; the
                # restored engine starts a fresh ledger (the monitor
                # re-baselines its delta checks on rebind).
                engine.attach_telemetry(self._make_telemetry())
                monitor.rebind(engine)
                instrumented = InstrumentedEngine(engine, monitor, injector)
                clock.restore(snapshot["clock"])
                if injector is not None and snapshot["injector"] is not None:
                    injector.restore(snapshot["injector"])
                active = [tuple(pair) for pair in snapshot["active"]]
                errors = [list(record) for record in snapshot["errors"]]
                consumed = list(snapshot["consumed"])
                schedule = list(snapshot["schedule"])
                stall_until = {}
                runtime, sessions = await self._start_runtime(
                    instrumented, clock, injector
                )
                crash_at = None
                recovered = True
                index = self.checkpoint_at
                continue

            monitor.op_index = index
            clock.tick()
            for actor in list(stall_until):
                if index >= stall_until[actor]:
                    await sessions[actor].set_stalled(False)
                    del stall_until[actor]
            try:
                await self._apply(
                    schedule[index],
                    index,
                    runtime,
                    sessions,
                    active,
                    consumed,
                    stall_until,
                    errors,
                    injector,
                    schedule,
                )
            except ReproError as exc:
                errors.append([index, type(exc).__name__])
            monitor.check_all()
            index += 1

        for actor in list(stall_until):
            await sessions[actor].set_stalled(False)
        for actor, session in enumerate(sessions):
            consumed[actor] += await _drain_session(session)
        monitor.op_index = len(schedule)
        monitor.check_all()
        final = {
            "clock": clock.now,
            "queries": {
                str(query_id): [
                    doc.doc_id for doc in engine.results(query_id)
                ]
                for query_id in sorted(engine._queries)
            },
        }
        await runtime.stop()
        stats = runtime.stats()
        report = {
            "seed": self.seed,
            "mode": self.engine_config.mode,
            "scheduled_ops": self.n_ops,
            "executed_ops": len(schedule),
            "fault_plan": str(self.plan) if self.plan is not None else "",
            "oracle": self.check_oracle,
            "recovered": recovered,
            "errors": errors,
            "faults_fired": injector.fired if injector is not None else [],
            "checks": dict(monitor.checks),
            "violations": [v.as_dict() for v in monitor.violations],
            "consumed": consumed,
            "final": final,
            "stats": {
                key: stats[key]
                for key in (
                    "accepted",
                    "published",
                    "disconnects",
                    "matcher_errors",
                    "delivery_errors",
                    "failed_on_stop",
                    "unflushed",
                    "coalesced",
                    "policy_drops",
                    "counters",
                    "telemetry",
                )
            },
            "ok": not monitor.violations,
        }
        if checkpoint_file_error is not None:
            report["checkpoint_file_error"] = checkpoint_file_error
        return report

    async def _apply(
        self,
        op: Dict,
        index: int,
        runtime: ServerRuntime,
        sessions: List[SubscriberSession],
        active: List[Tuple[int, int]],
        consumed: List[int],
        stall_until: Dict[int, int],
        errors: List[List],
        injector: Optional[FaultInjector],
        schedule: List[Dict],
    ) -> None:
        kind = op["op"]
        if kind == "subscribe":
            location = op.get("location")
            query_id, _initial = await runtime.subscribe(
                sessions[op["actor"]],
                op["keywords"],
                location=tuple(location) if location is not None else None,
                window=op.get("window"),
            )
            active.append((query_id, op["actor"]))
        elif kind == "unsubscribe":
            if active:
                query_id, _actor = active.pop(op["index"] % len(active))
                await runtime.unsubscribe(query_id)
        elif kind == "publish":
            bursts = op["burst"]
            locations = op.get("locations") or [None] * len(bursts)
            if injector is not None:
                spec = injector.fire("client.publish")
                if spec is not None:
                    if spec.action == "duplicate":
                        # A client retry: the same payloads resubmitted.
                        bursts = bursts + bursts
                        locations = locations + locations
                    elif spec.action == "delay":
                        position = min(
                            index + 1 + max(1, spec.arg), len(schedule)
                        )
                        schedule.insert(position, op)
                        return
            acks = await asyncio.gather(
                *(
                    runtime.publish(
                        tokens=tokens,
                        location=(
                            tuple(location) if location is not None else None
                        ),
                    )
                    for tokens, location in zip(bursts, locations)
                ),
                return_exceptions=True,
            )
            for ack in acks:
                if isinstance(ack, BaseException):
                    errors.append([index, type(ack).__name__])
        elif kind == "results":
            if active:
                query_id, _actor = active[op["index"] % len(active)]
                await runtime.results(query_id)
        elif kind == "consume":
            actor = op["actor"]
            session = sessions[actor]
            if injector is not None:
                spec = injector.fire("consumer.pull")
                if spec is not None and spec.action == "stall":
                    await session.set_stalled(True)
                    stall_until[actor] = index + 1 + max(1, spec.arg)
                    return
            if session.closed or session.stalled:
                return
            for _ in range(op["max"]):
                if session.depth == 0:
                    break
                message = await session.next_message()
                if message is None:
                    break
                consumed[actor] += 1
        else:  # pragma: no cover - schedule generator invariant
            raise ReproError(f"unknown op kind {kind!r}")


async def _drain_session(session: SubscriberSession) -> int:
    """Consume everything still queued; returns the message count."""
    count = 0
    while session.depth > 0:
        message = await session.next_message()
        if message is None:
            break
        count += 1
    return count


def run_default_suite(
    seed: int, ops: int = 80, engine_config: Optional[EngineConfig] = None
) -> Dict:
    """The acceptance suite: one report per fault scenario, one seed.

    Every scenario replays the same seeded schedule under a different
    fault plan; ``crash_recovery`` additionally compares its final state
    to the unfailed ``clean`` run.  The returned dict is JSON-safe and
    deterministic — dumping it with ``sort_keys=True`` is byte-for-byte
    reproducible for a given seed.
    """
    scenarios: List[Dict] = []

    def run_scenario(name: str, plan=None, **kwargs) -> Dict:
        harness = SimulationHarness(
            seed, ops=ops, engine_config=engine_config,
            fault_plan=plan, **kwargs,
        )
        report = harness.run()
        report["scenario"] = name
        scenarios.append(report)
        return report

    clean = run_scenario("clean")
    run_scenario("engine_batch_fault", "engine.publish_batch@3:raise")
    run_scenario("mid_batch_fault", "engine.doc@7:raise")
    run_scenario("ingest_fault", "ingest.put@5:raise*2")
    run_scenario("results_fault", "engine.results@2:raise")
    run_scenario("slow_consumer_stall", "consumer.pull@2:stall(6)")
    run_scenario(
        "client_retry",
        "client.publish@3:duplicate; client.publish@6:delay(4)",
    )
    run_scenario(
        "chaos", generate_random_plan(random.Random(seed ^ 0x9E3779B9))
    )

    # Checkpoint write failure: the atomic save must fail cleanly and
    # leave no (partial) checkpoint behind.
    tmpdir = tempfile.mkdtemp(prefix="repro-sim-")
    try:
        path = os.path.join(tmpdir, "ckpt.json")
        report = run_scenario(
            "checkpoint_fault",
            "checkpoint.write@1:raise",
            checkpoint_at=max(1, ops // 3),
            checkpoint_path=path,
        )
        report["checkpoint_file_absent"] = not os.path.exists(path)
        report["ok"] = report["ok"] and report["checkpoint_file_absent"]
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    # Crash-recovery equivalence: checkpoint -> kill -> restore -> replay
    # must converge to the unfailed reference run's result sets.
    crashed = SimulationHarness(
        seed,
        ops=ops,
        engine_config=engine_config,
        check_oracle=False,
        checkpoint_at=max(1, ops // 3),
        crash_at=max(2, (2 * ops) // 3),
    ).run()
    equal = crashed["final"] == clean["final"]
    scenarios.append(
        {
            "scenario": "crash_recovery",
            "equal": equal,
            "recovered": crashed["recovered"],
            "reference_final": clean["final"],
            "crashed_final": crashed["final"],
            "checks": crashed["checks"],
            "violations": crashed["violations"],
            "ok": equal
            and crashed["recovered"]
            and not crashed["violations"],
        }
    )

    return {
        "seed": seed,
        "ops": ops,
        "scenarios": scenarios,
        "ok": all(scenario["ok"] for scenario in scenarios),
    }
