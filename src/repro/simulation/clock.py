"""Simulated wall clock for deterministic serving-runtime runs.

The serving runtime's only wall-clock dependence is the default publish
timestamp (``ServerConfig.time_source``).  Substituting this clock makes
every accepted ``created_at`` — and therefore every decay factor and
every replacement decision — a pure function of the op schedule, which
is what lets a seeded simulation run reproduce byte-for-byte.

Distinct from :class:`repro.stream.clock.SimulationClock`: that one is
the *engine's* notion of stream time (advanced by published documents);
this one stands in for ``time.time`` at the serving layer and is
advanced explicitly by the simulation driver.
"""

from __future__ import annotations


class SimulatedClock:
    """A callable clock that advances only when told to."""

    __slots__ = ("_now", "_step")

    def __init__(self, start: float = 1000.0, step: float = 1.0) -> None:
        self._now = float(start)
        self._step = float(step)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def tick(self, steps: int = 1) -> float:
        """Advance by ``steps`` steps; returns the new time."""
        self._now += steps * self._step
        return self._now

    def advance_to(self, value: float) -> float:
        if value < self._now:
            raise ValueError(
                f"cannot move the clock backwards ({value} < {self._now})"
            )
        self._now = float(value)
        return self._now

    # -- crash-recovery support -------------------------------------------

    def snapshot(self) -> float:
        """Opaque state for :meth:`restore` (taken at checkpoint time)."""
        return self._now

    def restore(self, state: float) -> None:
        """Rewind to a :meth:`snapshot` value (crash-recovery replay)."""
        self._now = float(state)

    def __repr__(self) -> str:
        return f"SimulatedClock(now={self._now}, step={self._step})"
