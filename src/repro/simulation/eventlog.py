"""Kill-9-under-load soak for the durability tier (DESIGN.md §14).

Runs a real ``serve`` subprocess with the event log enabled, drives it
over TCP with a durable subscriber plus bursty publishers, ``SIGKILL``s
the server mid-load (no drain, no atexit — the only surviving state is
what the write-ahead event log fsynced), restarts it on the same port
and directory, and lets the reconnecting client splice its stream back
together via ``resume``.  After the run the log directory itself is the
oracle: replaying every record into a fresh engine regenerates the
notification stream an uninterrupted server would have produced, and
the client's received stream must match it exactly.

Checked invariants:

* **zero accepted-op loss** — every publish the server acked (the ack
  carries the event-log offset) is present in the log at that offset
  with the same term set;
* **no duplicate delivery** — the client never sees the same
  ``(offset, query_id)`` twice, across any number of kills/resumes;
* **offset monotonicity** — pushed offsets are non-decreasing;
* **oracle equivalence** — the client's full notification stream equals
  the offline replay of the log, element for element;
* **clean DLQ** — a soak without slow consumers must not dead-letter.

Like the parallel and cluster suites this spawns real processes, so it
is not part of :func:`~repro.simulation.harness.run_default_suite`; the
CLI exposes it via ``simulate --scenario kill9-load``.
"""

from __future__ import annotations

import asyncio
import os
import random
import re
import signal
import subprocess
import sys
import tempfile
from typing import Any, Dict, List, Optional, Tuple

import repro
from repro.core.engine import DasEngine
from repro.core.query import DasQuery
from repro.eventlog import EventLog, read_dlq
from repro.server.protocol import document_from_payload
from repro.server.tcp import NdjsonTcpClient

#: Method/k the serve subprocess runs; the offline oracle must rebuild
#: the same engine config or the differential is void.
_METHOD = "GIFilter"
_K = 4

#: The serve command's ready line (``_serve`` in experiments.cli).
_READY_RE = re.compile(r"serving \S+ \(k=\d+\) on ([\d.]+):(\d+)")

#: Durable subscriber identity the soak client resumes as.
_SUBSCRIBER = "soak"

#: Term no load document ever contains; the quiescence barrier.
_SENTINEL_TERM = "zzz-sentinel"


def _serve_env() -> dict:
    """Child env with ``src`` on PYTHONPATH regardless of install mode."""
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src if not existing else src + os.pathsep + existing
    )
    return env


class ServeProcess:
    """One ``serve`` subprocess with the event log enabled.

    ``start`` blocks until the ready line is parsed; after a
    :meth:`kill` the process can be started again — on the *same* port
    and log directory — which is exactly the crash/recover cycle the
    soak exercises.
    """

    def __init__(
        self,
        directory: str,
        host: str = "127.0.0.1",
        outbox_capacity: int = 8192,
        throttle_rate: float = 0.0,
    ) -> None:
        self._directory = directory
        self._host = host
        self._outbox_capacity = outbox_capacity
        self._throttle_rate = throttle_rate
        self.process: Optional[subprocess.Popen] = None
        self.address: Optional[Tuple[str, int]] = None

    def _cmd(self, port: int) -> List[str]:
        cmd = [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "serve",
            "--host",
            self._host,
            "--port",
            str(port),
            "--method",
            _METHOD,
            "--k",
            str(_K),
            "--eventlog-dir",
            self._directory,
            "--eventlog-fsync",
            "always",
            "--eventlog-checkpoint-every",
            "0",
            "--outbox-capacity",
            str(self._outbox_capacity),
        ]
        if self._throttle_rate > 0.0:
            cmd += ["--throttle-rate", str(self._throttle_rate)]
        return cmd

    def start(self) -> Tuple[str, int]:
        """Spawn the server and block until it prints its ready line."""
        port = self.address[1] if self.address is not None else 0
        self.process = subprocess.Popen(
            self._cmd(port),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=_serve_env(),
            text=True,
        )
        while True:
            line = self.process.stdout.readline()
            if not line:
                self.process.wait()
                raise RuntimeError(
                    "serve subprocess exited before its ready line "
                    f"(code {self.process.returncode})"
                )
            match = _READY_RE.search(line)
            if match is not None:
                self.address = (match.group(1), int(match.group(2)))
                return self.address

    def kill(self) -> None:
        """SIGKILL — no drain, no flush, no goodbye."""
        if self.process is not None and self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
            self.process.wait()

    def stop(self) -> None:
        """Graceful-enough teardown at the end of a scenario."""
        if self.process is None:
            return
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        if self.process.stdout is not None:
            self.process.stdout.close()


def _oracle_stream(
    directory: str,
) -> Tuple[List[Tuple[int, int, int]], int]:
    """Replay the log offline; the stream an uninterrupted run produces.

    Returns ordered ``(offset, query_id, doc_id)`` triples for every
    notification owed to the durable subscriber, plus the log end.
    Ack records are ignored on purpose: they shape *retention*, not the
    notification stream itself.
    """
    log = EventLog(directory, fsync="never")
    try:
        engine = DasEngine.for_method(_METHOD, k=_K)
        owned: set = set()
        stream: List[Tuple[int, int, int]] = []
        for offset, record in log.entries_since(0):
            kind = record["kind"]
            if kind == "subscribe":
                engine.subscribe(
                    DasQuery(record["query_id"], record["terms"])
                )
                if record.get("subscriber") == _SUBSCRIBER:
                    owned.add(record["query_id"])
            elif kind == "unsubscribe":
                engine.unsubscribe(record["query_id"])
                owned.discard(record["query_id"])
            elif kind == "publish":
                document = document_from_payload(record["doc"])
                for note in engine.publish_batch([document]):
                    if note.query_id in owned:
                        stream.append(
                            (offset, note.query_id, note.document.doc_id)
                        )
        return stream, log.end
    finally:
        log.close()


async def _drive_soak(
    server: ServeProcess,
    seed: int,
    ops: int,
    kill_bursts: List[int],
    events: List[str],
) -> Dict[str, Any]:
    """The async client side: load, kills, restarts, resume, drain."""
    rng = random.Random(seed * 6151 + ops)
    host, port = server.address
    loop = asyncio.get_running_loop()
    client = await NdjsonTcpClient.connect(
        host,
        port,
        reconnect=True,
        backoff_base=0.05,
        backoff_max=0.5,
        max_retries=30,
        jitter_seed=seed,
    )
    received: List[Dict[str, Any]] = []
    snapshots = 0

    async def collect() -> None:
        nonlocal snapshots
        while True:
            message = await client.next_message()
            if message is None:
                return
            if message.get("op") == "notify":
                received.append(message)
            elif message.get("op") == "snapshot":
                snapshots += 1

    collector = asyncio.create_task(collect())
    accepted: Dict[int, List[str]] = {}
    rejected = 0

    try:
        await client.resume(_SUBSCRIBER, -1)
        # A handful of overlapping two-term queries over the load vocab,
        # plus the sentinel query used as the quiescence barrier.
        for j in range(6):
            await client.subscribe([f"t{j}", f"t{j + 2}"])
        sentinel = await client.subscribe([_SENTINEL_TERM])

        async def one_publish(index: int, tokens: List[str]) -> None:
            nonlocal rejected
            try:
                ack = await client.publish(
                    tokens=tokens, created_at=float(index)
                )
            except ConnectionError:
                # In flight when the server died; the log decides
                # whether it was accepted (at-least-once, never lost).
                rejected += 1
            else:
                accepted[ack["offset"]] = tokens

        index = 0
        burst_index = 0
        while index < ops:
            burst = []
            for _ in range(rng.randint(1, 4)):
                if index >= ops:
                    break
                tokens = [
                    f"t{rng.randrange(12)}"
                    for _ in range(rng.randint(3, 7))
                ]
                burst.append(
                    asyncio.ensure_future(one_publish(index, tokens))
                )
                index += 1
            if burst_index in kill_bursts:
                # Kill while the burst is in flight: some lines are in
                # the log, some died on the wire — the matrix the log
                # must sort out.  Restart *before* gathering: publishes
                # whose write failed locally park on the reconnect gate
                # and only settle once the server is back.
                server.kill()
                events.append(f"SIGKILL @burst {burst_index}")
                await asyncio.sleep(0.1)
                await loop.run_in_executor(None, server.start)
                events.append(f"restart @burst {burst_index}")
                await asyncio.gather(*burst)
            else:
                await asyncio.gather(*burst)
            burst_index += 1

        # Quiescence barrier: a sentinel publish that *must* notify the
        # sentinel query; once its offset shows up everything before it
        # has been delivered (per-subscriber delivery is ordered).
        barrier = await client.publish(
            tokens=[_SENTINEL_TERM], created_at=float(ops)
        )
        deadline = loop.time() + 60.0
        while loop.time() < deadline:
            if any(
                note["query_id"] == sentinel["query_id"]
                and note.get("offset") == barrier["offset"]
                for note in received
            ):
                break
            await asyncio.sleep(0.05)
        else:
            events.append("sentinel delivery timed out")

        stats = await client.stats()
        connection = client.connection_stats()
    finally:
        await client.close()
        collector.cancel()
        try:
            await collector
        except (asyncio.CancelledError, Exception):
            pass

    return {
        "accepted": accepted,
        "rejected": rejected,
        "received": received,
        "snapshots": snapshots,
        "stats": stats,
        "connection": connection,
        "sentinel_query": sentinel["query_id"],
        "sentinel_offset": barrier["offset"],
    }


def run_kill9_suite(
    seed: int = 0,
    ops: int = 120,
    kills: int = 2,
    directory: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the kill-9-under-load soak; deterministic report for the args.

    ``kills`` SIGKILL/restart cycles are spread across the burst
    schedule.  The wall-clock duration scales with ``ops`` (the CI soak
    passes a few hundred); the verdict is a pure function of the log
    contents, not of timing.
    """
    mismatches: List[str] = []
    events: List[str] = []

    def check(label: str, ok: bool) -> None:
        if not ok:
            mismatches.append(label)

    tmp = None
    if directory is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-kill9-")
        directory = tmp.name
    server = ServeProcess(directory)
    try:
        server.start()
        burst_estimate = max(2, ops // 2)  # mean burst size is ~2.5
        kill_bursts = [
            max(1, (i + 1) * burst_estimate // (kills + 1))
            for i in range(max(0, kills))
        ]
        outcome = asyncio.run(
            _drive_soak(server, seed, ops, kill_bursts, events)
        )
        server.stop()

        accepted: Dict[int, List[str]] = outcome["accepted"]
        received: List[Dict[str, Any]] = outcome["received"]
        oracle, log_end = _oracle_stream(directory)
        log = EventLog(directory, fsync="never")
        try:
            by_offset = dict(log.entries_since(0))
        finally:
            log.close()

        # Zero accepted-op loss: every acked publish survived the kills.
        for offset, tokens in sorted(accepted.items()):
            record = by_offset.get(offset)
            if record is None or record["kind"] != "publish":
                check(f"accepted offset {offset} missing from log", False)
            else:
                check(
                    f"accepted offset {offset} term set",
                    set(record["doc"]["tf"]) == set(tokens),
                )

        # No duplicate delivery, offsets non-decreasing, stream == oracle.
        stream = [
            (note["offset"], note["query_id"], note["document"]["doc_id"])
            for note in received
        ]
        check(
            "no duplicate (offset, query_id) delivery",
            len({(o, q) for o, q, _ in stream}) == len(stream),
        )
        check(
            "pushed offsets non-decreasing",
            all(
                stream[i][0] <= stream[i + 1][0]
                for i in range(len(stream) - 1)
            ),
        )
        check("received stream equals offline replay", stream == oracle)
        check("sentinel delivered", "sentinel delivery timed out" not in events)

        connection = outcome["connection"]
        check(
            f"expected {kills} reconnects",
            connection["reconnects"] >= kills,
        )
        check(
            "every reconnect resumed",
            connection["resumed"] >= 1 + kills,
        )
        check("no lossy resubscription", connection["resubscribed"] == 0)

        dlq = read_dlq(directory)
        check("DLQ stayed empty", len(dlq) == 0)
        eventlog_stats = outcome["stats"].get("eventlog") or {}
        check(
            "server saw a non-empty recovery",
            kills == 0
            or (eventlog_stats.get("recovery") or {}).get("replayed", 0) > 0,
        )
        report_stats = {
            "accepted": len(accepted),
            "rejected": outcome["rejected"],
            "received": len(stream),
            "oracle": len(oracle),
            "snapshots": outcome["snapshots"],
            "log_end": log_end,
            "reconnects": connection["reconnects"],
            "resumed": connection["resumed"],
            "dlq_entries": len(dlq),
            "recovery": eventlog_stats.get("recovery"),
        }
    finally:
        server.stop()
        if tmp is not None:
            tmp.cleanup()

    return {
        "suite": "kill9_load",
        "seed": seed,
        "ops": ops,
        "kills": kills,
        "events": events,
        "counts": report_stats,
        "mismatches": mismatches,
        "ok": not mismatches,
    }
