"""Deterministic worker-crash scenarios for the parallel engine.

Drives a :class:`~repro.parallel.ParallelShardedEngine` and a
single-process :class:`~repro.core.engine.DasEngine` oracle through the
same seeded op schedule, crashing workers along the way, and asserts the
parallel engine recovers to an oracle-equal state:

``clean``
    No faults — baseline equivalence of the whole schedule.
``injected_crash``
    The ``worker.publish_batch`` injection point fires a raising action
    inside worker 0, which is process-fatal there (the worker dies mid
    protocol); the parent must detect the death, restart the worker
    from its last checkpoint, replay the op journal and retry.
``hard_kill``
    ``SIGKILL`` to a worker at a fixed op index — death is discovered
    by the *next* op that touches the shard.

Every scenario takes a checkpoint partway so recovery exercises the
checkpoint-plus-journal-replay path rather than a full-history replay.
The report is a pure function of ``(seed, ops, workers)``: schedules
come from a seeded RNG and nothing reads wall-clock time.

This suite is intentionally *not* part of
:func:`~repro.simulation.harness.run_default_suite` — the default
suite's reports are committed and diffed byte-for-byte in CI, and
spawning processes there would slow every chaos run.  The CLI exposes it
separately via ``simulate --parallel-workers N``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.config import EngineConfig
from repro.core.engine import DasEngine
from repro.core.query import DasQuery
from repro.parallel import ParallelShardedEngine
from repro.workloads.corpus import SyntheticTweetCorpus
from repro.workloads.queries import lqd_queries

#: Relative tolerance for cross-process float comparison (the arithmetic
#: is identical, so this only guards against repr/transport surprises).
DR_TOLERANCE = 1e-9


def _engine_config() -> EngineConfig:
    return EngineConfig(k=4, block_size=8)


def _note_set(notifications):
    return {
        (
            n.query_id,
            n.document.doc_id,
            n.replaced.doc_id if n.replaced is not None else None,
        )
        for n in notifications
    }


def _run_scenario(
    seed: int,
    ops: int,
    workers: int,
    fault_plan: Optional[str] = None,
    kill_at: Optional[int] = None,
) -> Dict:
    corpus = SyntheticTweetCorpus(
        vocab_size=250, n_topics=8, doc_length=(4, 10), seed=seed
    )
    documents = corpus.documents(ops * 8)
    queries = lqd_queries(corpus, max(1, ops), first_id=0)
    config = _engine_config()

    oracle = DasEngine(config)
    parallel = ParallelShardedEngine(
        workers, config, fault_plan=fault_plan, fault_shard=0
    )
    rng = random.Random(seed * 7919 + ops * 13 + workers)
    checkpoint_at = max(1, ops // 3)

    doc_cursor = 0
    query_cursor = 0
    subscribed: List[int] = []
    mismatches: List[str] = []
    events: List[str] = []
    notifications_seen = 0
    published = 0
    publish_calls = 0

    def check(label: str, ok: bool) -> None:
        if not ok:
            mismatches.append(label)

    try:
        for op_index in range(ops):
            if op_index == checkpoint_at:
                parallel.checkpoint()
                events.append(f"checkpoint@{op_index}")
            if kill_at is not None and op_index == kill_at:
                parallel.kill_worker(0)
                events.append(f"kill worker 0 @{op_index}")
            roll = rng.random()
            if roll < 0.30 and query_cursor < len(queries):
                query = queries[query_cursor]
                query_cursor += 1
                initial_oracle = oracle.subscribe(query)
                initial_parallel = parallel.subscribe(
                    DasQuery(query.query_id, query.terms)
                )
                subscribed.append(query.query_id)
                check(
                    f"initial results of query {query.query_id}",
                    [d.doc_id for d in initial_oracle]
                    == [d.doc_id for d in initial_parallel],
                )
            elif roll < 0.40 and subscribed:
                query_id = subscribed[rng.randrange(len(subscribed))]
                check(
                    f"results of query {query_id} @{op_index}",
                    [d.doc_id for d in oracle.results(query_id)]
                    == [d.doc_id for d in parallel.results(query_id)],
                )
            else:
                size = rng.randint(1, 6)
                batch = documents[doc_cursor : doc_cursor + size]
                doc_cursor += size
                if not batch:
                    continue
                oracle_notes = oracle.publish_batch(batch)
                parallel_notes = parallel.publish_batch(batch)
                notifications_seen += len(parallel_notes)
                published += len(batch)
                publish_calls += 1
                check(
                    f"notifications @{op_index}",
                    _note_set(oracle_notes) == _note_set(parallel_notes),
                )
        for query_id in subscribed:
            check(
                f"final results of query {query_id}",
                [d.doc_id for d in oracle.results(query_id)]
                == [d.doc_id for d in parallel.results(query_id)],
            )
            dr_oracle = oracle.current_dr(query_id)
            dr_parallel = parallel.current_dr(query_id)
            check(
                f"final DR of query {query_id}",
                abs(dr_oracle - dr_parallel)
                <= DR_TOLERANCE * max(1.0, abs(dr_oracle)),
            )
        # Wire-path coherence: every worker decodes every published
        # document exactly once (one wire_decode observation each) and
        # encodes one reply per publish request.  A crash resets that
        # worker's ledger, so faulted scenarios can only bound the
        # merged counts from above; the clean scenario checks equality.
        snapshot = parallel.telemetry_snapshot()
        wire_section = (snapshot or {}).get("wire", {})
        decode_observations = sum(
            wire_section.get("wire_decode", {}).get("counts", [])
        )
        encode_observations = sum(
            wire_section.get("wire_encode", {}).get("counts", [])
        )
        crashed = fault_plan is not None or kill_at is not None
        if crashed:
            check(
                "wire decode bound",
                decode_observations <= workers * published,
            )
        else:
            check(
                "wire decode coherence",
                decode_observations == workers * published,
            )
            check(
                "wire encode coherence",
                encode_observations == workers * publish_calls,
            )
        worker_stats = parallel.worker_stats()
    finally:
        parallel.close()
    return {
        "ops": ops,
        "events": events,
        "published": doc_cursor,
        "subscribed": len(subscribed),
        "notifications": notifications_seen,
        "restarts": worker_stats["restarts"],
        "recoveries": worker_stats["recoveries"],
        "wire": {
            "decode_observations": decode_observations,
            "encode_observations": encode_observations,
        },
        "mismatches": mismatches,
        "ok": not mismatches,
    }


def run_parallel_crash_suite(
    seed: int = 0, ops: int = 40, workers: int = 2
) -> Dict:
    """Run the three scenarios; report is deterministic for fixed args."""
    crash_arrival = max(2, ops // 4)
    scenarios = {
        "clean": _run_scenario(seed, ops, workers),
        "injected_crash": _run_scenario(
            seed,
            ops,
            workers,
            fault_plan=f"worker.publish_batch@{crash_arrival}:raise",
        ),
        "hard_kill": _run_scenario(
            seed, ops, workers, kill_at=max(2, ops // 2)
        ),
    }
    recovered = (
        sum(scenarios["injected_crash"]["restarts"]) >= 1
        and sum(scenarios["hard_kill"]["restarts"]) >= 1
    )
    if not recovered:
        for name in ("injected_crash", "hard_kill"):
            if not sum(scenarios[name]["restarts"]):
                scenarios[name]["mismatches"].append(
                    "expected at least one worker restart"
                )
                scenarios[name]["ok"] = False
    return {
        "suite": "parallel_crash",
        "seed": seed,
        "workers": workers,
        "scenarios": scenarios,
        "ok": all(s["ok"] for s in scenarios.values()),
    }
