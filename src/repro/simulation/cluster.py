"""Deterministic node-crash scenarios for the cluster tier.

Drives a :class:`~repro.cluster.ClusterEngine` over real node
subprocesses, an in-process
:class:`~repro.distributed.sharded.ShardedDasEngine` with the same
shard count and routing (the byte-identity oracle: its merged
notification stream must match the cluster's *in order*), and an
:class:`~repro.simulation.invariants.InstrumentedEngine`-wrapped
single :class:`~repro.core.engine.DasEngine` audited by
:class:`~repro.simulation.invariants.InvariantMonitor` (the paper's
invariants stay clean on the same stream).  Three scenarios:

``clean``
    Replicated cluster, no faults — baseline three-way equivalence.
``primary_kill``
    The ``node.fault`` injection point fires ``kill(0)``: shard 0's
    primary is ``SIGKILL``-ed mid-schedule.  The next op touching the
    shard must promote the standby, replay the journal suffix, and
    keep the notification stream byte-identical — zero accepted ops
    lost.
``partition``
    No standbys; ``partition(0)`` severs the coordinator's TCP
    connection to shard 0 while the node process stays alive.  The
    reconnecting client must dial back and the schedule must complete
    with at least one recorded reconnect.

Every scenario takes a coordinator checkpoint partway (exercising the
consistency barrier under faults).  The kill/partition op indices come
from the :class:`~repro.simulation.faults.FaultPlan` DSL, so the
report is a pure function of ``(seed, ops, nodes)``.

Like the parallel suite, this is *not* part of
:func:`~repro.simulation.harness.run_default_suite` — it spawns real
processes.  The CLI exposes it via ``simulate --cluster-nodes N``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.cluster import launch_cluster
from repro.core.engine import DasEngine
from repro.core.query import DasQuery
from repro.distributed.sharded import ShardedDasEngine
from repro.simulation.faults import FaultPlan
from repro.simulation.invariants import InstrumentedEngine, InvariantMonitor
from repro.workloads.corpus import SyntheticTweetCorpus
from repro.workloads.queries import lqd_queries

#: Method/k the node subprocesses are launched with; the in-process
#: oracles must build the *same* config or the differential is void.
_METHOD = "GIFilter"
_K = 4


def _note_list(notifications) -> List[tuple]:
    """Ordered (query, doc, replaced) triples — byte-identity oracle."""
    return [
        (
            n.query_id,
            n.document.doc_id,
            n.replaced.doc_id if n.replaced is not None else None,
        )
        for n in notifications
    ]


def _run_scenario(
    seed: int,
    ops: int,
    nodes: int,
    replicas: int,
    fault_plan: Optional[str] = None,
) -> Dict:
    corpus = SyntheticTweetCorpus(
        vocab_size=250, n_topics=8, doc_length=(4, 10), seed=seed
    )
    documents = corpus.documents(ops * 8)
    queries = lqd_queries(corpus, max(1, ops), first_id=0)
    config = DasEngine.for_method(_METHOD, k=_K).config

    sharded = ShardedDasEngine(nodes, config, routing="round_robin")
    inner = DasEngine(config)
    monitor = InvariantMonitor(inner, with_oracle=True)
    single = InstrumentedEngine(inner, monitor=monitor)
    injector = (
        FaultPlan.parse(fault_plan).injector() if fault_plan else None
    )

    cluster, primaries, standbys = launch_cluster(
        nodes,
        replicas=replicas,
        method=_METHOD,
        k=_K,
        routing="round_robin",
        replica_lag=4,
    )
    rng = random.Random(seed * 7919 + ops * 13 + nodes)
    checkpoint_at = max(1, ops // 3)

    doc_cursor = 0
    query_cursor = 0
    subscribed: List[int] = []
    mismatches: List[str] = []
    events: List[str] = []
    notifications_seen = 0

    def check(label: str, ok: bool) -> None:
        if not ok:
            mismatches.append(label)

    try:
        for op_index in range(ops):
            monitor.op_index = op_index
            if op_index == checkpoint_at:
                cluster.checkpoint()
                events.append(f"checkpoint@{op_index}")
            if injector is not None:
                spec = injector.fire("node.fault")
                if spec is not None and spec.action == "kill":
                    primaries[spec.arg].kill()
                    events.append(f"kill shard {spec.arg} @{op_index}")
                elif spec is not None and spec.action == "partition":
                    cluster.sever(spec.arg)
                    events.append(
                        f"partition shard {spec.arg} @{op_index}"
                    )
            roll = rng.random()
            if roll < 0.30 and query_cursor < len(queries):
                query = queries[query_cursor]
                query_cursor += 1
                initial = [
                    [
                        d.doc_id
                        for d in engine.subscribe(
                            DasQuery(query.query_id, query.terms)
                        )
                    ]
                    for engine in (sharded, single, cluster)
                ]
                subscribed.append(query.query_id)
                check(
                    f"initial results of query {query.query_id}",
                    initial[0] == initial[1] == initial[2],
                )
            elif roll < 0.40 and subscribed:
                query_id = subscribed[rng.randrange(len(subscribed))]
                results = [
                    [d.doc_id for d in engine.results(query_id)]
                    for engine in (sharded, single, cluster)
                ]
                check(
                    f"results of query {query_id} @{op_index}",
                    results[0] == results[1] == results[2],
                )
            else:
                size = rng.randint(1, 6)
                batch = documents[doc_cursor : doc_cursor + size]
                doc_cursor += size
                if not batch:
                    continue
                sharded_notes = sharded.publish_batch(batch)
                single_notes = single.publish_batch(batch)
                cluster_notes = cluster.publish_batch(batch)
                notifications_seen += len(cluster_notes)
                # Ordered identity against the sharded oracle (same
                # shard count, routing and doc-major/shard-minor
                # merge); set identity against the single engine (its
                # per-document ordering follows query-table order, not
                # shard interleave).
                check(
                    f"notification order @{op_index}",
                    _note_list(cluster_notes) == _note_list(sharded_notes),
                )
                check(
                    f"notification set @{op_index}",
                    set(_note_list(cluster_notes))
                    == set(_note_list(single_notes)),
                )
        for query_id in subscribed:
            finals = [
                [d.doc_id for d in engine.results(query_id)]
                for engine in (sharded, single, cluster)
            ]
            check(
                f"final results of query {query_id}",
                finals[0] == finals[1] == finals[2],
            )
        # Zero accepted-op loss: every document the coordinator accepted
        # is visible in the surviving nodes' merged counters.
        check(
            "accepted publishes survived",
            cluster.counters.docs_published == doc_cursor,
        )
        monitor.check_all()
        for violation in monitor.violations:
            mismatches.append(f"invariant: {violation!r}")
        stats = cluster.cluster_stats()
        failovers = stats["failovers"]
        reconnects = sum(
            shard["primary"]["connection"]["reconnects"]
            for shard in stats["shards"]
        )
    finally:
        cluster.close()
        for node in primaries + [s for s in standbys if s is not None]:
            node.stop()
    return {
        "ops": ops,
        "events": events,
        "published": doc_cursor,
        "subscribed": len(subscribed),
        "notifications": notifications_seen,
        "failovers": failovers,
        "reconnects": reconnects,
        "invariant_checks": dict(monitor.checks),
        "mismatches": mismatches,
        "ok": not mismatches,
    }


def run_cluster_crash_suite(
    seed: int = 0, ops: int = 40, nodes: int = 2
) -> Dict:
    """Run the three scenarios; report is deterministic for fixed args."""
    kill_arrival = max(2, ops // 2)
    partition_arrival = max(2, ops // 3)
    scenarios = {
        "clean": _run_scenario(seed, ops, nodes, replicas=1),
        "primary_kill": _run_scenario(
            seed,
            ops,
            nodes,
            replicas=1,
            fault_plan=f"node.fault@{kill_arrival}:kill(0)",
        ),
        "partition": _run_scenario(
            seed,
            ops,
            nodes,
            replicas=0,
            fault_plan=f"node.fault@{partition_arrival}:partition(0)",
        ),
    }
    if scenarios["primary_kill"]["failovers"] < 1:
        scenarios["primary_kill"]["mismatches"].append(
            "expected at least one failover"
        )
        scenarios["primary_kill"]["ok"] = False
    if scenarios["partition"]["reconnects"] < 1:
        scenarios["partition"]["mismatches"].append(
            "expected at least one reconnect"
        )
        scenarios["partition"]["ok"] = False
    return {
        "suite": "cluster_crash",
        "seed": seed,
        "nodes": nodes,
        "scenarios": scenarios,
        "ok": all(s["ok"] for s in scenarios.values()),
    }
