"""Invariant monitor + instrumented engine for the simulation harness.

The monitor audits the paper's correctness obligations after every
accepted operation:

``size``
    ``|q.R| <= k`` for every live result set, entries in stream order
    (Definition 2 caps the result size; ids are assigned by creation
    time, Definition 1, so entries must be oldest-first).
``lemma1``
    Every replacement strictly improved the diversity-aware relevance:
    ``dr_q(d_n) > dr_q(q.d_e)`` (Lemma 1 reduces the Def. 3 comparison
    to exactly this), reconstructed post-hoc from the result table's
    accumulated-similarity deltas.
``bounds``
    ``FT̃_b`` (Eq. 12, Lemma 2) never exceeds the exact minimum
    threshold of the block's filled members — the soundness direction
    that makes group filtering skip-safe.
``oracle``
    Result sets equal the :class:`~repro.baselines.naive.NaiveEngine`
    fed the same ops — the end-to-end guarantee that no bound
    (``FT̃_b``, ``TRel̃_max``, ``Sim̃_min``) ever wrongly skipped a
    delivery.  Exact equality holds under ``GroupBoundMode.STRICT``
    (the default; see DESIGN.md §2).
``telemetry``
    The telemetry ledger stays coherent under faults: publish spans
    balance (started = finished + aborted), work counters never move
    backwards, every stage histogram advances by exactly one
    observation per finished span, and the bounded effectiveness
    ratios stay within [0, 1].  Skipped when the engine carries no
    telemetry.
``eventlog``
    The durability tier's offset/DLQ obligations
    (:meth:`InvariantMonitor.check_eventlog`, takes the serving
    runtime): log base <= end, the checkpoint never points past the
    log, retained outboxes hold strictly ascending offsets all above
    the acked floor, and the dead-letter accounting is consistent
    with the DLQ segment.

:class:`InstrumentedEngine` wraps a :class:`DasEngine` so the monitor
sees every document individually (mid-batch) and the ``engine.doc``
injection point can abort a batch halfway through.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.engine import DasEngine
from repro.core.events import Notification
from repro.core.filtering import TIE_EPSILON, block_threshold_lower_bound
from repro.core.query import DasQuery
from repro.core.strategies import make_oracle
from repro.scoring.diversity import diversity_coefficient
from repro.stream.document import Document

_NEG_INF = float("-inf")


class InvariantViolation:
    """One failed invariant check."""

    __slots__ = ("name", "op_index", "detail")

    def __init__(self, name: str, op_index: int, detail: str) -> None:
        self.name = name
        self.op_index = op_index
        self.detail = detail

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "op_index": self.op_index,
            "detail": self.detail,
        }

    def __repr__(self) -> str:
        return f"InvariantViolation({self.name}@op{self.op_index}: {self.detail})"


class InvariantMonitor:
    """Checks the paper's invariants against a live :class:`DasEngine`."""

    def __init__(
        self,
        engine: DasEngine,
        with_oracle: bool = True,
        tolerance: float = 1e-6,
    ) -> None:
        self._engine = engine
        #: Mode-matched brute-force reference: NaiveEngine for decay,
        #: WindowOracle/SpatialOracle for the strategy modes.
        self._oracle: Optional[object] = (
            make_oracle(engine.config) if with_oracle else None
        )
        self._tolerance = tolerance
        #: Per-full-query pre-publish snapshot for the Lemma 1 check.
        self._pre: Dict[int, tuple] = {}
        #: Index of the schedule op being executed (set by the driver).
        self.op_index = -1
        self.violations: List[InvariantViolation] = []
        self.checks: Dict[str, int] = {
            "size": 0,
            "lemma1": 0,
            "bounds": 0,
            "strategy": 0,
            "oracle": 0,
            "telemetry": 0,
            "eventlog": 0,
        }
        self._take_telemetry_baseline()

    @property
    def oracle(self) -> Optional[NaiveEngine]:
        return self._oracle

    def rebind(self, engine: DasEngine) -> None:
        """Point the monitor at a restored engine (crash-recovery replay).

        The per-op oracle cannot be rewound to a checkpoint, so replay
        runs must be created with ``with_oracle=False``; their
        correctness check is final-state equality against an unfailed
        reference run (see the harness).
        """
        if self._oracle is not None:
            raise ValueError(
                "cannot rebind a monitor with a live oracle; crash "
                "scenarios must run with with_oracle=False"
            )
        self._engine = engine
        self._pre.clear()
        # A restored engine starts a fresh telemetry ledger; re-baseline
        # so the histogram-vs-spans delta check compares like with like.
        self._take_telemetry_baseline()

    def _take_telemetry_baseline(self) -> None:
        """Record the telemetry state the delta checks measure against."""
        self._prev_counters = self._engine.counters.as_dict()
        telemetry = getattr(self._engine, "telemetry", None)
        if telemetry is None:
            self._base_spans_finished = 0
            self._base_stage_counts: Dict[str, int] = {}
            self._prev_wire_counts: Dict[str, int] = {}
            return
        snapshot = telemetry.snapshot()
        self._base_spans_finished = snapshot["spans"]["finished"]
        self._base_stage_counts = {
            stage: sum(wire["counts"])
            for stage, wire in snapshot["stages"].items()
        }
        self._prev_wire_counts = {
            stage: sum(wire["counts"])
            for stage, wire in snapshot.get("wire", {}).items()
        }

    def _record(self, name: str, detail: str) -> None:
        self.violations.append(
            InvariantViolation(name, self.op_index, detail)
        )

    # -- per-document hooks (called by InstrumentedEngine) ------------------

    def before_publish(self, document: Document) -> None:
        """Snapshot the replacement-relevant state of every full query.

        Cheap (no scoring): stores the oldest entry's cached values and
        each entry's accumulated similarity so :meth:`after_publish` can
        reconstruct both sides of the Lemma 1 comparison from deltas.
        """
        self._pre = {}
        if getattr(self._engine, "strategy", None) is not None:
            # Strategy modes have no decay result tables; their
            # replacement discipline is audited by check_strategy().
            return
        for query_id, result_set in self._engine._result_sets.items():
            if not result_set.is_full:
                continue
            head = result_set.entries[0]
            self._pre[query_id] = (
                head.document.doc_id,
                head.trel,
                head.sim_acc,
                len(result_set.entries) - 1,
                head.document.created_at,
                {
                    entry.document.doc_id: entry.sim_acc
                    for entry in result_set.entries
                },
            )

    def after_publish(
        self, document: Document, notifications: Sequence[Notification]
    ) -> None:
        """Verify Lemma 1 for every replacement, then mirror the oracle."""
        if getattr(self._engine, "strategy", None) is not None:
            if self._oracle is not None:
                self._oracle.publish(document)
            return
        config = self._engine.config
        now = self._engine.clock.now
        coeff = diversity_coefficient(config.alpha, config.k)
        for notification in notifications:
            if notification.replaced is None:
                continue
            self.checks["lemma1"] += 1
            pre = self._pre.get(notification.query_id)
            if pre is None:
                self._record(
                    "lemma1",
                    f"q{notification.query_id} replaced while not full "
                    f"on doc {document.doc_id}",
                )
                continue
            old_id, old_trel, old_sim, pairs, old_created, sim_map = pre
            if notification.replaced.doc_id != old_id:
                self._record(
                    "lemma1",
                    f"q{notification.query_id} evicted doc "
                    f"{notification.replaced.doc_id}, expected oldest "
                    f"{old_id}",
                )
                continue
            result_set = self._engine._result_sets.get(
                notification.query_id
            )
            if result_set is None or not result_set.entries:
                continue
            new_entry = result_set.entries[-1]
            if new_entry.document.doc_id != document.doc_id:
                self._record(
                    "lemma1",
                    f"q{notification.query_id} newest entry is doc "
                    f"{new_entry.document.doc_id}, expected "
                    f"{document.doc_id}",
                )
                continue
            # Each kept entry's accumulated similarity grew by exactly
            # Sim(entry, d_n) (Eq. 24 maintenance), so the deltas sum to
            # the similarity mass the engine traded off in dr_q(d_n).
            sim_sum = sum(
                entry.sim_acc
                - sim_map.get(entry.document.doc_id, entry.sim_acc)
                for entry in result_set.entries[:-1]
            )
            dr_new = config.alpha * new_entry.trel + coeff * (
                (config.k - 1) - sim_sum
            )
            recency = self._engine.decay.at(old_created, now)
            dr_old = config.alpha * old_trel * recency + coeff * (
                pairs - old_sim
            )
            if dr_new <= dr_old + TIE_EPSILON - self._tolerance:
                self._record(
                    "lemma1",
                    f"q{notification.query_id} replacement on doc "
                    f"{document.doc_id}: dr_new={dr_new:.9f} does not "
                    f"strictly improve dr_oldest={dr_old:.9f}",
                )
        self._pre = {}
        if self._oracle is not None:
            self._oracle.publish(document)

    def after_subscribe(
        self, query: DasQuery, initial: Sequence[Document]
    ) -> None:
        if self._oracle is None:
            return
        oracle_initial = self._oracle.subscribe(query)
        mine = [doc.doc_id for doc in initial]
        theirs = [doc.doc_id for doc in oracle_initial]
        if mine != theirs:
            self._record(
                "oracle",
                f"q{query.query_id} initial results {mine} != oracle "
                f"{theirs}",
            )

    def after_unsubscribe(self, query_id: int) -> None:
        if self._oracle is not None:
            self._oracle.unsubscribe(query_id)

    # -- whole-state audits -------------------------------------------------

    def check_all(self) -> None:
        self.check_sizes()
        self.check_bounds()
        self.check_strategy()
        self.check_oracle()
        self.check_telemetry()

    def check_strategy(self) -> None:
        """Strategy-supplied invariants (window/spatial modes).

        Each strategy audits its own structural obligations — window
        bounds, candidate-buffer consistency, grid filing, cached
        threshold coherence — through
        :meth:`repro.core.strategies.Strategy.check_invariants`; the
        monitor only collects the reported violations.  No-op for the
        decay mode, whose obligations are the Lemma 1 / Eq. 12 checks
        above.
        """
        strategy = getattr(self._engine, "strategy", None)
        if strategy is None:
            return
        self.checks["strategy"] += 1
        for detail in strategy.check_invariants():
            self._record("strategy", detail)

    def check_sizes(self) -> None:
        """``|q.R| <= k``; for the decay mode also stream-order entries."""
        self.checks["size"] += 1
        k = self._engine.config.k
        if getattr(self._engine, "strategy", None) is not None:
            # Strategy result sets are ranked best-first, not stream
            # ordered; only the size cap is mode-independent.
            for query_id in list(self._engine._queries):
                size = len(self._engine.results(query_id))
                if size > k:
                    self._record(
                        "size", f"q{query_id} holds {size} results, k={k}"
                    )
            return
        for query_id, result_set in self._engine._result_sets.items():
            size = len(result_set.entries)
            if size > k:
                self._record(
                    "size", f"q{query_id} holds {size} results, k={k}"
                )
            ids = [entry.document.doc_id for entry in result_set.entries]
            if any(a >= b for a, b in zip(ids, ids[1:])):
                self._record(
                    "size", f"q{query_id} entries out of stream order: {ids}"
                )

    def check_bounds(self) -> None:
        """``FT̃_b`` must lower-bound the exact filled-member threshold.

        Only blocks with clean metadata are audited — refreshing from the
        monitor would perturb the engine's own lazy-refresh schedule.
        ``TRel̃_max`` and ``Sim̃_min`` take the in-flight document as
        input, so their soundness is covered end-to-end by the oracle
        check instead.
        """
        engine = self._engine
        if not engine.config.use_blocks:
            return
        if getattr(engine, "strategy", None) is not None:
            # Strategy modes bypass the inverted file; Eq. 12 block
            # metadata never forms.
            return
        self.checks["bounds"] += 1
        now = engine.clock.now
        alpha = engine.config.alpha
        decay = engine.decay
        result_sets = engine._result_sets
        for term, block in engine.iter_term_blocks():
            if block.meta_dirty:
                continue
            lower = block_threshold_lower_bound(block, decay, now, alpha)
            if lower == _NEG_INF:
                continue
            exact = None
            for query_id in block.query_ids:
                result_set = result_sets.get(query_id)
                if result_set is None or not result_set.is_full:
                    continue
                value = result_set.dr_oldest(now, decay, alpha)
                if exact is None or value < exact:
                    exact = value
            if exact is None:
                self._record(
                    "bounds",
                    f"block({term}, ids={list(block.query_ids)}) has "
                    f"finite FT={lower:.9f} but no filled member",
                )
            elif lower > exact + self._tolerance:
                self._record(
                    "bounds",
                    f"block({term}, ids={list(block.query_ids)}) "
                    f"FT={lower:.9f} exceeds exact threshold "
                    f"{exact:.9f}",
                )

    def check_telemetry(self) -> None:
        """Audit the telemetry ledger (see module docstring).

        Four obligations: spans balance, counter monotonicity, stage
        histograms advance one observation per finished span, bounded
        ratios within [0, 1].  The counter baseline rolls forward each
        check so a violation is reported near the op that caused it.
        """
        counters = self._engine.counters.as_dict()
        for name, value in counters.items():
            previous = self._prev_counters.get(name, 0)
            if value < previous:
                self._record(
                    "telemetry",
                    f"counter {name} moved backwards: "
                    f"{previous} -> {value}",
                )
        self._prev_counters = counters

        telemetry = getattr(self._engine, "telemetry", None)
        if telemetry is None:
            return
        self.checks["telemetry"] += 1
        snapshot = telemetry.snapshot()
        spans = snapshot["spans"]
        if spans["started"] != spans["finished"] + spans["aborted"]:
            self._record(
                "telemetry",
                f"span ledger unbalanced: started={spans['started']} != "
                f"finished={spans['finished']} + "
                f"aborted={spans['aborted']}",
            )
        if spans["sampled"] > spans["finished"]:
            self._record(
                "telemetry",
                f"sampled spans ({spans['sampled']}) exceed finished "
                f"({spans['finished']})",
            )
        finished_delta = spans["finished"] - self._base_spans_finished
        for stage, wire in snapshot["stages"].items():
            observed = sum(wire["counts"])
            delta = observed - self._base_stage_counts.get(stage, 0)
            if delta != finished_delta:
                self._record(
                    "telemetry",
                    f"stage {stage} recorded {delta} observations for "
                    f"{finished_delta} finished spans",
                )
        # Wire-path histograms (process-parallel deployments only) are
        # not per-span: decode is per *document off the wire*, encode is
        # per *reply*, and a worker restart resets its ledger.  The
        # audited obligation is monotonicity between checks of one
        # ledger — counts never move backwards and sums stay finite.
        wire_counts = {}
        for stage, wire in snapshot.get("wire", {}).items():
            observed = sum(wire["counts"])
            wire_counts[stage] = observed
            previous = self._prev_wire_counts.get(stage, 0)
            if observed < previous:
                self._record(
                    "telemetry",
                    f"wire stage {stage} moved backwards: "
                    f"{previous} -> {observed}",
                )
            if wire["sum"] < 0.0:
                self._record(
                    "telemetry",
                    f"wire stage {stage} accumulated negative time "
                    f"{wire['sum']!r}",
                )
        self._prev_wire_counts = wire_counts

        from repro.telemetry import BOUNDED_RATIOS, effectiveness_gauges

        gauges = effectiveness_gauges(counters)
        for name in BOUNDED_RATIOS:
            value = gauges[name]
            if not 0.0 <= value <= 1.0:
                self._record(
                    "telemetry",
                    f"effectiveness ratio {name}={value!r} outside [0, 1]",
                )

    def check_eventlog(self, runtime) -> None:
        """Durability-tier invariants of a serving runtime.

        Duck-typed against :class:`~repro.server.runtime.ServerRuntime`
        (no import — the monitor must not depend on the server layer);
        a no-op when the runtime has no event log.  Audits:

        * log offsets: ``base <= end`` and the checkpoint offset never
          points past the log's end;
        * truncation safety: the base never advanced past the newest
          checkpoint (every un-checkpointed record is still replayable);
        * outboxes: strictly ascending offsets, all above the owner's
          acked floor (no retained entry the subscriber already
          confirmed);
        * DLQ: the registry's dead-letter counters never exceed the
          DLQ segment (every counted entry was durably written) and
          every entry carries a known reason and sane offset.
        """
        log = getattr(runtime, "_eventlog", None)
        if log is None:
            return
        self.checks["eventlog"] += 1
        if log.base > log.end:
            self._record(
                "eventlog", f"log base {log.base} exceeds end {log.end}"
            )
        checkpoint = getattr(runtime, "_checkpoint_offset", -1)
        if checkpoint > log.end:
            self._record(
                "eventlog",
                f"checkpoint offset {checkpoint} is past the log end "
                f"{log.end}",
            )
        if log.base > max(checkpoint, 0):
            self._record(
                "eventlog",
                f"log base {log.base} truncated past the checkpoint "
                f"offset {checkpoint}",
            )
        registry = getattr(runtime, "_registry", None)
        total_dead = 0
        if registry is not None:
            for name in registry.names():
                state = registry.get(name)
                total_dead += state.dead_lettered
                offsets = [entry["offset"] for entry in state.outbox]
                if any(a >= b for a, b in zip(offsets, offsets[1:])):
                    self._record(
                        "eventlog",
                        f"subscriber {name!r} outbox offsets not strictly "
                        f"ascending: {offsets}",
                    )
                if offsets and offsets[0] <= state.acked:
                    self._record(
                        "eventlog",
                        f"subscriber {name!r} retains offset {offsets[0]} "
                        f"at or below its acked floor {state.acked}",
                    )
        dlq = getattr(runtime, "_dlq", None)
        if dlq is not None:
            from repro.eventlog.dlq import DLQ_REASONS

            entries = dlq.entries()
            if total_dead > len(entries):
                self._record(
                    "eventlog",
                    f"registry counts {total_dead} dead-lettered entries "
                    f"but the DLQ segment holds only {len(entries)}",
                )
            for entry in entries:
                if entry["reason"] not in DLQ_REASONS:
                    self._record(
                        "eventlog",
                        f"DLQ entry {entry['seq']} has unknown reason "
                        f"{entry['reason']!r}",
                    )
                if entry["offset"] < 0:
                    self._record(
                        "eventlog",
                        f"DLQ entry {entry['seq']} has negative offset "
                        f"{entry['offset']}",
                    )

    def check_oracle(self) -> None:
        """Every result set equals the naive engine's, id for id."""
        if self._oracle is None:
            return
        self.checks["oracle"] += 1
        for query_id in self._engine._queries:
            mine = [
                doc.doc_id for doc in self._engine.results(query_id)
            ]
            theirs = [
                doc.doc_id for doc in self._oracle.results(query_id)
            ]
            if mine != theirs:
                self._record(
                    "oracle",
                    f"q{query_id} results {mine} != oracle {theirs}",
                )


class InstrumentedEngine:
    """Engine proxy: per-document monitor hooks + mid-batch faults.

    Decomposes ``publish_batch`` into sequential ``publish`` calls —
    documented as semantically identical by
    :meth:`DasEngine.publish_batch` — so the ``engine.doc`` injection
    point can fail *between* the documents of one batch and the monitor
    can audit each accepted document individually.  Everything else
    (``store``, ``clock``, ``counters``, private floors) delegates, so
    the serving runtime's :class:`~repro.server.runtime.EngineFacade`
    treats it as a plain engine.
    """

    def __init__(
        self,
        engine: DasEngine,
        monitor: Optional[InvariantMonitor] = None,
        injector=None,
    ) -> None:
        self._inner = engine
        self._monitor = monitor
        self._injector = injector

    @property
    def inner(self) -> DasEngine:
        return self._inner

    @property
    def monitor(self) -> Optional[InvariantMonitor]:
        return self._monitor

    def subscribe(self, query: DasQuery) -> List[Document]:
        initial = self._inner.subscribe(query)
        if self._monitor is not None:
            self._monitor.after_subscribe(query, initial)
        return initial

    def unsubscribe(self, query_id: int) -> None:
        self._inner.unsubscribe(query_id)
        if self._monitor is not None:
            self._monitor.after_unsubscribe(query_id)

    def publish(self, document: Document) -> List[Notification]:
        return self._publish_one(document)

    def publish_batch(self, documents) -> List[Notification]:
        notifications: List[Notification] = []
        for document in documents:
            notifications.extend(self._publish_one(document))
        return notifications

    def publish_batch_segmented(
        self, documents, decay_cache=None
    ) -> List[List[Notification]]:
        return [self._publish_one(document) for document in documents]

    def _publish_one(self, document: Document) -> List[Notification]:
        if self._injector is not None:
            self._injector.fire("engine.doc")
        if self._monitor is not None:
            self._monitor.before_publish(document)
        notifications = self._inner.publish(document)
        if self._monitor is not None:
            self._monitor.after_publish(document, notifications)
        return notifications

    def results(self, query_id: int) -> List[Document]:
        return self._inner.results(query_id)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)
