"""Deterministic fault-injection and invariant-checking harness.

Wraps the serving runtime (:mod:`repro.server`) and the DAS engine in a
seeded simulation: reproducible async interleavings via
:class:`SimulatedClock` + ``ServerConfig.inline_matcher``, fault
injection via the :class:`FaultPlan` DSL, and per-op auditing of the
paper's invariants via :class:`InvariantMonitor`.  See DESIGN.md §9.
"""

from repro.simulation.clock import SimulatedClock
from repro.simulation.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    HARNESS_ACTIONS,
    INJECTION_POINTS,
    RAISING_ACTIONS,
)
from repro.simulation.harness import (
    SimulationHarness,
    default_engine_config,
    generate_random_plan,
    generate_schedule,
    run_default_suite,
)
from repro.simulation.invariants import (
    InstrumentedEngine,
    InvariantMonitor,
    InvariantViolation,
)
from repro.simulation.cluster import run_cluster_crash_suite
from repro.simulation.eventlog import run_kill9_suite
from repro.simulation.parallel import run_parallel_crash_suite

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "HARNESS_ACTIONS",
    "INJECTION_POINTS",
    "InstrumentedEngine",
    "InvariantMonitor",
    "InvariantViolation",
    "RAISING_ACTIONS",
    "SimulatedClock",
    "SimulationHarness",
    "default_engine_config",
    "generate_random_plan",
    "generate_schedule",
    "run_cluster_crash_suite",
    "run_default_suite",
    "run_kill9_suite",
    "run_parallel_crash_suite",
]
