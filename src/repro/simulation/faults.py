"""Fault-plan DSL and the injector threaded through the hot path.

A fault plan is a semicolon-separated list of fault specs::

    point@at[:action[(arg)]][*count]

    engine.publish_batch@3:raise        # 3rd batch submission raises
    consumer.pull@2:stall(6)            # 2nd consume stalls for 6 ops
    tcp.write@1:torn                    # 1st frame written is cut in half
    ingest.put@5:raise*2                # arrivals 5 and 6 both raise

``at`` counts *arrivals at that injection point* (1-based), so a plan is
meaningful independent of what else the schedule does.  Raising actions
(``raise``, ``disconnect``, ``torn``) make :meth:`FaultInjector.fire`
raise :class:`~repro.errors.InjectedFaultError` at the production call
site; harness actions (``stall``, ``delay``, ``duplicate``) are returned
to the simulation driver, which interprets them (production code never
sees them).

Production call sites guard with ``if injector is not None`` — with the
default ``ServerConfig.fault_injector = None`` the whole machinery costs
one attribute check.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, InjectedFaultError

#: Every injection point threaded through the production/harness path.
INJECTION_POINTS = (
    "ingest.put",  # ServerRuntime.publish, before the queue put
    "engine.publish_batch",  # matcher, before the engine batch call
    "engine.doc",  # InstrumentedEngine, before each document of a batch
    "engine.results",  # matcher results op + coalesce snapshot reads
    "tcp.write",  # NdjsonTcpServer, before each outgoing frame
    "checkpoint.write",  # persistence.checkpoint.save, mid-write
    "worker.publish_batch",  # parallel shard worker, per batch arrival;
    #   raising actions are process-fatal there (the worker dies)
    "client.publish",  # harness: before submitting a publish op
    "consumer.pull",  # harness: before a consume op
    "node.fault",  # cluster harness: before an op touches the cluster;
    #   kill(shard) SIGKILLs that shard's primary process,
    #   partition(shard) severs the coordinator's connection to it
    "eventlog.fault",  # EventLog.append_many, before any byte is written;
    #   torn writes half the first record's line and poisons the handle
    "eventlog.match",  # matcher, post-append / pre-match — the crash
    #   window where a logged op has not yet touched the engine
)

#: Actions that raise InjectedFaultError at the call site.
RAISING_ACTIONS = ("raise", "disconnect", "torn")

#: Actions interpreted by the simulation driver, not production code.
HARNESS_ACTIONS = ("stall", "delay", "duplicate", "kill", "partition")

_SPEC_RE = re.compile(
    r"^(?P<point>[\w.]+)@(?P<at>\d+)"
    r"(?::(?P<action>\w+)(?:\((?P<arg>\d+)\))?)?"
    r"(?:\*(?P<count>\d+))?$"
)


@dataclass(frozen=True)
class FaultSpec:
    """One injection: fire ``action`` on arrivals ``at .. at+count-1``."""

    point: str
    at: int
    action: str = "raise"
    arg: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise ConfigurationError(
                f"unknown injection point {self.point!r}; expected one of "
                f"{INJECTION_POINTS}"
            )
        if self.action not in RAISING_ACTIONS + HARNESS_ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; expected one of "
                f"{RAISING_ACTIONS + HARNESS_ACTIONS}"
            )
        if self.at < 1:
            raise ConfigurationError(f"at must be >= 1, got {self.at}")
        if self.count < 1:
            raise ConfigurationError(f"count must be >= 1, got {self.count}")
        if self.arg < 0:
            raise ConfigurationError(f"arg must be >= 0, got {self.arg}")

    @classmethod
    def parse(cls, token: str) -> "FaultSpec":
        match = _SPEC_RE.match(token.strip())
        if match is None:
            raise ConfigurationError(
                f"malformed fault spec {token!r}; expected "
                f"point@at[:action[(arg)]][*count]"
            )
        return cls(
            point=match.group("point"),
            at=int(match.group("at")),
            action=match.group("action") or "raise",
            arg=int(match.group("arg") or 0),
            count=int(match.group("count") or 1),
        )

    def __str__(self) -> str:
        text = f"{self.point}@{self.at}:{self.action}"
        if self.arg:
            text += f"({self.arg})"
        if self.count > 1:
            text += f"*{self.count}"
        return text


class FaultPlan:
    """An ordered collection of fault specs, parseable from the DSL."""

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        tokens = [t for t in re.split(r"[;,]", text) if t.strip()]
        return cls([FaultSpec.parse(token) for token in tokens])

    def injector(self) -> "FaultInjector":
        return FaultInjector(self.specs)

    def __str__(self) -> str:
        return "; ".join(str(spec) for spec in self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __repr__(self) -> str:
        return f"FaultPlan({str(self)!r})"


class FaultInjector:
    """Arrival counter + spec matcher behind every injection point.

    ``fire(point)`` counts the arrival and, when a spec matches, either
    raises :class:`InjectedFaultError` (raising actions) or returns the
    matched :class:`FaultSpec` (harness actions).  Returns ``None`` when
    nothing fires — production call sites ignore the return value.
    """

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        #: Mutable firing state per spec: remaining fire budget.
        self._states: List[List] = [[spec, spec.count] for spec in specs]
        self._arrivals: Dict[str, int] = {}
        #: Chronological record of fired faults (goes into the report).
        self.fired: List[Dict] = []

    def fire(self, point: str) -> Optional[FaultSpec]:
        arrival = self._arrivals.get(point, 0) + 1
        self._arrivals[point] = arrival
        hit: Optional[FaultSpec] = None
        for state in self._states:
            spec: FaultSpec = state[0]
            if spec.point != point or state[1] <= 0:
                continue
            if spec.at <= arrival < spec.at + spec.count:
                state[1] -= 1
                hit = spec
                break
        if hit is None:
            return None
        self.fired.append(
            {
                "point": point,
                "arrival": arrival,
                "action": hit.action,
                "arg": hit.arg,
            }
        )
        if hit.action in RAISING_ACTIONS:
            exc = InjectedFaultError(
                f"injected {hit.action} at {point}#{arrival}"
            )
            exc.point = point
            exc.action = hit.action
            exc.arg = hit.arg
            raise exc
        return hit

    def arrivals(self, point: str) -> int:
        return self._arrivals.get(point, 0)

    # -- crash-recovery support -------------------------------------------

    def snapshot(self) -> Tuple:
        """Opaque firing state, rewindable so a replayed op tail sees the
        same faults as the pre-crash execution."""
        return (
            dict(self._arrivals),
            [state[1] for state in self._states],
            [dict(record) for record in self.fired],
        )

    def restore(self, state: Tuple) -> None:
        arrivals, remaining, fired = state
        self._arrivals = dict(arrivals)
        for spec_state, budget in zip(self._states, remaining):
            spec_state[1] = budget
        self.fired = [dict(record) for record in fired]
