"""Result-quality proxies for the user study (Table 6).

The paper's Table 6 rates result sets by three human annotators on four
Likert aspects.  Without annotators we compute the automatic quantities
the aspects correspond to, and compare methods by *ordering* rather than
absolute Likert means:

==================  =====================================================
aspect              proxy
==================  =====================================================
Relevance           mean normalised ``TRel(q, d)`` over the set
Recency             mean decay value ``T(d)`` at evaluation time
Range of interests  mean pairwise dissimilarity of the set
Overall             equal-weight blend of the three, after each aspect is
                    rescaled to [1, 5] across the compared result sets
==================  =====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

from repro.scoring.recency import ExponentialDecay
from repro.scoring.relevance import LanguageModelScorer
from repro.stream.document import Document
from repro.text.vectors import dissimilarity


@dataclass(frozen=True)
class QualityReport:
    """Raw (un-rescaled) quality aspects of one result set."""

    relevance: float
    recency: float
    range_of_interests: float

    def blended(self, weights: Sequence[float] = (1.0, 1.0, 1.0)) -> float:
        total = sum(weights)
        return (
            weights[0] * self.relevance
            + weights[1] * self.recency
            + weights[2] * self.range_of_interests
        ) / total


def relevance_aspect(
    query_terms: Iterable[str],
    documents: Sequence[Document],
    scorer: LanguageModelScorer,
) -> float:
    """Mean per-keyword log-normalised relevance in [0, 1].

    ``TRel`` is a product of small probabilities, so raw values are not
    comparable across query lengths; the geometric mean per keyword
    (``TRel ** (1/|ψ|)``) is.
    """
    terms = tuple(query_terms)
    if not documents or not terms:
        return 0.0
    total = 0.0
    for document in documents:
        trel = scorer.trel(terms, document.vector)
        total += trel ** (1.0 / len(terms)) if trel > 0.0 else 0.0
    return total / len(documents)


def recency_aspect(
    documents: Sequence[Document], decay: ExponentialDecay, now: float
) -> float:
    """Mean decay value ``T(d)`` in [0, 1]."""
    if not documents:
        return 0.0
    return sum(
        decay.at(document.created_at, now) for document in documents
    ) / len(documents)


def range_of_interests_aspect(documents: Sequence[Document]) -> float:
    """Mean pairwise dissimilarity in [0, 1]; 0 for singleton sets."""
    n = len(documents)
    if n < 2:
        return 0.0
    total = 0.0
    for i in range(n):
        for j in range(i + 1, n):
            total += dissimilarity(documents[i].vector, documents[j].vector)
    return total / (n * (n - 1) / 2)


def evaluate_result_set(
    query_terms: Iterable[str],
    documents: Sequence[Document],
    scorer: LanguageModelScorer,
    decay: ExponentialDecay,
    now: float,
) -> QualityReport:
    """All three aspects of one result set."""
    terms = tuple(query_terms)
    return QualityReport(
        relevance=relevance_aspect(terms, documents, scorer),
        recency=recency_aspect(documents, decay, now),
        range_of_interests=range_of_interests_aspect(documents),
    )


def likert_rescale(values: Dict[str, float]) -> Dict[str, float]:
    """Rescale one aspect's raw values across methods to a 1-5 scale.

    The best method gets 5, the worst 1; degenerate (all-equal) inputs
    map to 3.  This mirrors comparing methods on the same Likert scale
    without claiming absolute agreement with human raters.
    """
    if not values:
        return {}
    low = min(values.values())
    high = max(values.values())
    if math.isclose(low, high):
        return {name: 3.0 for name in values}
    return {
        name: 1.0 + 4.0 * (value - low) / (high - low)
        for name, value in values.items()
    }


def user_study_table(
    raw: Dict[str, QualityReport]
) -> Dict[str, Dict[str, float]]:
    """Build a Table-6-shaped grid: method -> aspect -> 1-5 rating.

    ``raw`` maps method labels (e.g. ``"GIFilter α=0.3"``) to their
    average :class:`QualityReport`.  Each aspect is rescaled across the
    methods; Overall is the rescaled blend.
    """
    aspects = {
        "Relevance": {name: report.relevance for name, report in raw.items()},
        "Recency": {name: report.recency for name, report in raw.items()},
        "Range of Int.": {
            name: report.range_of_interests for name, report in raw.items()
        },
    }
    rescaled = {name: likert_rescale(values) for name, values in aspects.items()}
    table: Dict[str, Dict[str, float]] = {}
    for method in raw:
        row = {aspect: rescaled[aspect][method] for aspect in rescaled}
        row["Overall"] = sum(row.values()) / len(row)
        table[method] = row
    return table


def mean_report(reports: Sequence[QualityReport]) -> QualityReport:
    """Average a collection of reports (e.g. over queries and snapshots)."""
    if not reports:
        return QualityReport(0.0, 0.0, 0.0)
    n = len(reports)
    return QualityReport(
        relevance=sum(r.relevance for r in reports) / n,
        recency=sum(r.recency for r in reports) / n,
        range_of_interests=sum(r.range_of_interests for r in reports) / n,
    )
