"""Metrics: instrumentation counters, timers, quality proxies."""

from repro.metrics.instrumentation import BatchHistogram, Counters
from repro.metrics.quality import (
    QualityReport,
    evaluate_result_set,
    likert_rescale,
    mean_report,
    range_of_interests_aspect,
    recency_aspect,
    relevance_aspect,
    user_study_table,
)
from repro.metrics.timing import Stopwatch

__all__ = [
    "BatchHistogram",
    "Counters",
    "QualityReport",
    "Stopwatch",
    "evaluate_result_set",
    "likert_rescale",
    "mean_report",
    "range_of_interests_aspect",
    "recency_aspect",
    "relevance_aspect",
    "user_study_table",
]
