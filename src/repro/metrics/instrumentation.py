"""Work counters for machine-independent performance accounting.

Pure-Python wall-clock numbers are a poor proxy for the paper's Java
measurements (see DESIGN.md §2), so every engine also counts the work it
does: postings visited, blocks skipped, similarity evaluations, and so
on.  The benchmark harness reports both.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class Counters:
    """Mutable work counters; engines increment these on their hot paths."""

    docs_published: int = 0
    queries_subscribed: int = 0
    postings_visited: int = 0
    blocks_visited: int = 0
    blocks_skipped: int = 0
    group_checks: int = 0
    queries_evaluated: int = 0
    quick_rejections: int = 0
    sim_evaluations: int = 0
    aw_dot_products: int = 0
    matches: int = 0
    mcs_rebuilds: int = 0
    mcs_invalidations: int = 0
    batches_vectorized: int = 0
    batches_scalar: int = 0
    columnar_refreshes: int = 0
    scalar_refreshes: int = 0
    flat_skips: int = 0
    postings_compactions: int = 0
    window_expiries: int = 0
    window_promotions: int = 0
    cells_visited: int = 0
    cells_skipped: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def snapshot(self) -> "Counters":
        return Counters(**self.as_dict())

    def delta(self, earlier: "Counters") -> "Counters":
        """Counters accumulated since ``earlier`` (self - earlier)."""
        return Counters(
            **{
                name: value - getattr(earlier, name)
                for name, value in self.as_dict().items()
            }
        )

    def load(self, values: Dict[str, int]) -> None:
        """Overwrite every counter from a dict (checkpoint restore).

        Unknown keys are ignored so newer checkpoints stay loadable;
        fields absent from ``values`` keep their current value.
        """
        for f in fields(self):
            if f.name in values:
                setattr(self, f.name, int(values[f.name]))

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def __add__(self, other: "Counters") -> "Counters":
        return Counters(
            **{
                name: value + getattr(other, name)
                for name, value in self.as_dict().items()
            }
        )


class BatchHistogram:
    """Power-of-two histogram of micro-batch sizes.

    The serving runtime coalesces pending publishes into adaptive
    micro-batches; this records the realised batch-size distribution
    (buckets ``1``, ``2``, ``3-4``, ``5-8``, ...) so operators can see
    whether batching is actually engaging under load.
    """

    def __init__(self) -> None:
        self._buckets: Dict[str, int] = {}
        self.batches = 0
        self.documents = 0
        self.max_size = 0

    @staticmethod
    def bucket_of(size: int) -> str:
        if size <= 2:
            return str(size)
        upper = 1 << (size - 1).bit_length()
        return f"{upper // 2 + 1}-{upper}"

    def record(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"batch size must be >= 1, got {size}")
        bucket = self.bucket_of(size)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.batches += 1
        self.documents += size
        if size > self.max_size:
            self.max_size = size

    def as_dict(self) -> Dict[str, object]:
        return {
            "batches": self.batches,
            "documents": self.documents,
            "max_size": self.max_size,
            "buckets": dict(self._buckets),
        }
