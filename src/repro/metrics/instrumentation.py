"""Work counters for machine-independent performance accounting.

Pure-Python wall-clock numbers are a poor proxy for the paper's Java
measurements (see DESIGN.md §2), so every engine also counts the work it
does: postings visited, blocks skipped, similarity evaluations, and so
on.  The benchmark harness reports both.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class Counters:
    """Mutable work counters; engines increment these on their hot paths."""

    docs_published: int = 0
    queries_subscribed: int = 0
    postings_visited: int = 0
    blocks_visited: int = 0
    blocks_skipped: int = 0
    group_checks: int = 0
    queries_evaluated: int = 0
    quick_rejections: int = 0
    sim_evaluations: int = 0
    aw_dot_products: int = 0
    matches: int = 0
    mcs_rebuilds: int = 0
    mcs_invalidations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def snapshot(self) -> "Counters":
        return Counters(**self.as_dict())

    def delta(self, earlier: "Counters") -> "Counters":
        """Counters accumulated since ``earlier`` (self - earlier)."""
        return Counters(
            **{
                name: value - getattr(earlier, name)
                for name, value in self.as_dict().items()
            }
        )

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def __add__(self, other: "Counters") -> "Counters":
        return Counters(
            **{
                name: value + getattr(other, name)
                for name, value in self.as_dict().items()
            }
        )
