"""Lightweight timers for the experiment harness."""

from __future__ import annotations

import time
from typing import Optional


class Stopwatch:
    """Accumulating wall-clock timer with a context-manager interface.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     pass
    >>> watch.calls
    1
    """

    __slots__ = ("total", "calls", "_started")

    def __init__(self) -> None:
        self.total = 0.0
        self.calls = 0
        self._started: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._started is not None
        self.total += time.perf_counter() - self._started
        self.calls += 1
        self._started = None

    @property
    def mean(self) -> float:
        """Mean seconds per timed call (0 before any call)."""
        return self.total / self.calls if self.calls else 0.0

    @property
    def mean_ms(self) -> float:
        return self.mean * 1000.0

    def reset(self) -> None:
        self.total = 0.0
        self.calls = 0
        self._started = None
