"""Synthetic Twitter-like corpus (substitute for the paper's dataset).

The paper evaluates on 10M real tweets (2.4M distinct terms, ~8 terms per
tweet).  That dataset is proprietary, so this module generates a stream
with the properties the filtering techniques are sensitive to:

* a Zipf-skewed vocabulary (few very popular terms, a long tail);
* topical clustering — documents are drawn from topic-specific term
  distributions, so documents about the same topic share terms.  This is
  what makes queries in one block share result documents, which is what
  minimal covering sets exploit;
* short documents with a configurable distinct-term count (Figure 16's
  sweep variable);
* globally popular "trending" terms, mirroring the 2012 trending-topics
  page used to build the SQD query set.

Terms are readable pseudo-words generated from syllables, so example
output looks like text rather than ``w00042``.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.stream.document import Document
from repro.text.vectors import TermVector

_SYLLABLES = (
    "ba be bi bo bu ca ce ci co cu da de di do du fa fe fi fo fu "
    "ga ge gi go gu ha he hi ho hu ja jo ka ke ki ko la le li lo lu "
    "ma me mi mo mu na ne ni no nu pa pe pi po pu ra re ri ro ru "
    "sa se si so su ta te ti to tu va ve vi vo vu wa wi wo ya yo za zo"
).split()


def _pseudo_words(count: int, rng: random.Random) -> List[str]:
    """Deterministically generate ``count`` unique pronounceable words."""
    words: List[str] = []
    seen = set()
    for length in itertools.count(2):
        if len(words) >= count:
            break
        attempts = 0
        needed = count - len(words)
        # Draw random syllable combinations of this length until we either
        # fill the quota or the space is (probabilistically) exhausted.
        max_attempts = needed * 30
        while attempts < max_attempts and len(words) < count:
            word = "".join(rng.choice(_SYLLABLES) for _ in range(length))
            attempts += 1
            if word not in seen:
                seen.add(word)
                words.append(word)
    return words


def zipf_weights(n: int, exponent: float) -> List[float]:
    """Unnormalised Zipf weights ``1/rank^s`` for ranks 1..n."""
    return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]


def _cumulative(weights: Sequence[float]) -> List[float]:
    total = 0.0
    out = []
    for weight in weights:
        total += weight
        out.append(total)
    return out


class SyntheticTweetCorpus:
    """Topic-mixture generator of tweet-like token lists.

    Parameters
    ----------
    vocab_size:
        Total number of distinct terms, split across topics.
    n_topics:
        Number of topics.  Topic popularity is Zipf-distributed.
    doc_length:
        (min, max) number of term *tokens* per document.
    topic_exponent / term_exponent:
        Zipf exponents for topic popularity and within-topic term
        popularity.
    noise_ratio:
        Fraction of each document's tokens drawn from the global
        vocabulary instead of the document's topic.
    """

    def __init__(
        self,
        vocab_size: int = 2000,
        n_topics: int = 40,
        doc_length: Tuple[int, int] = (5, 12),
        topic_exponent: float = 1.0,
        term_exponent: float = 1.05,
        noise_ratio: float = 0.2,
        seed: int = 7,
    ) -> None:
        if vocab_size < n_topics:
            raise ValueError(
                f"vocab_size ({vocab_size}) must be >= n_topics ({n_topics})"
            )
        if doc_length[0] < 1 or doc_length[1] < doc_length[0]:
            raise ValueError(f"invalid doc_length range {doc_length}")
        if not 0.0 <= noise_ratio <= 1.0:
            raise ValueError(f"noise_ratio must be in [0, 1], got {noise_ratio}")
        self.vocab_size = vocab_size
        self.n_topics = n_topics
        self.doc_length = doc_length
        self.noise_ratio = noise_ratio
        self.seed = seed
        rng = random.Random(seed)
        self.vocabulary: List[str] = _pseudo_words(vocab_size, rng)
        # Partition the vocabulary into per-topic slices of equal size
        # (the remainder spills into the last topic).
        per_topic = vocab_size // n_topics
        self.topic_terms: List[List[str]] = []
        for topic in range(n_topics):
            start = topic * per_topic
            end = vocab_size if topic == n_topics - 1 else start + per_topic
            self.topic_terms.append(self.vocabulary[start:end])
        self._topic_cum = _cumulative(zipf_weights(n_topics, topic_exponent))
        self._term_cums = [
            _cumulative(zipf_weights(len(terms), term_exponent))
            for terms in self.topic_terms
        ]
        self._global_cum = _cumulative(zipf_weights(vocab_size, term_exponent))
        # Spatial anchors for the spatial-keyword mode: each topic gets a
        # fixed centre in the unit square, so geo-tagged documents about
        # one topic cluster — the regime where grid-cell pruning pays.
        centre_rng = random.Random(seed + 2)
        self.topic_centers: List[Tuple[float, float]] = [
            (centre_rng.random(), centre_rng.random())
            for _ in range(n_topics)
        ]
        self._rng = random.Random(seed + 1)

    # -- generation -------------------------------------------------------------

    def generate_tokens(self, rng: Optional[random.Random] = None) -> List[str]:
        """One document's token list (tokens may repeat: tf can exceed 1)."""
        rng = rng if rng is not None else self._rng
        length = rng.randint(*self.doc_length)
        (topic,) = rng.choices(range(self.n_topics), cum_weights=self._topic_cum)
        terms = self.topic_terms[topic]
        term_cum = self._term_cums[topic]
        tokens: List[str] = []
        for _ in range(length):
            if rng.random() < self.noise_ratio:
                (token,) = rng.choices(
                    self.vocabulary, cum_weights=self._global_cum
                )
            else:
                (token,) = rng.choices(terms, cum_weights=term_cum)
            tokens.append(token)
        return tokens

    def generate_location(
        self,
        rng: Optional[random.Random] = None,
        topic: Optional[int] = None,
        spread: float = 0.08,
    ) -> Tuple[float, float]:
        """A unit-square location clustered around a topic centre.

        ``topic`` defaults to a fresh Zipf draw (location topics need not
        match token topics — real geo-tags are noisy); ``spread`` is the
        Gaussian radius around the centre, clamped into the unit square.
        """
        rng = rng if rng is not None else self._rng
        if topic is None:
            (topic,) = rng.choices(
                range(self.n_topics), cum_weights=self._topic_cum
            )
        cx, cy = self.topic_centers[topic]
        return (
            min(1.0, max(0.0, rng.gauss(cx, spread))),
            min(1.0, max(0.0, rng.gauss(cy, spread))),
        )

    def token_stream(
        self, rng: Optional[random.Random] = None
    ) -> Iterator[List[str]]:
        """Endless iterator of token lists."""
        rng = rng if rng is not None else self._rng
        while True:
            yield self.generate_tokens(rng)

    def documents(
        self,
        n: int,
        start_time: float = 0.0,
        interval: float = 1.0,
        first_id: int = 0,
        rng: Optional[random.Random] = None,
        with_locations: bool = False,
    ) -> List[Document]:
        """Materialise ``n`` stream documents with regular arrivals.

        ``with_locations`` attaches a clustered unit-square location to
        every document (the spatial-keyword mode's input shape); the
        default leaves the token stream's random sequence untouched.
        """
        rng = rng if rng is not None else self._rng
        documents = []
        timestamp = start_time
        for offset in range(n):
            tokens = self.generate_tokens(rng)
            documents.append(
                Document(
                    first_id + offset,
                    TermVector.from_tokens(tokens),
                    timestamp,
                    text=" ".join(tokens),
                    location=(
                        self.generate_location(rng) if with_locations else None
                    ),
                )
            )
            timestamp += interval
        return documents

    def document_stream(
        self,
        start_time: float = 0.0,
        interval: float = 1.0,
        first_id: int = 0,
        rng: Optional[random.Random] = None,
        with_locations: bool = False,
    ) -> Iterator[Document]:
        """Endless stream of documents with regular arrivals."""
        rng = rng if rng is not None else self._rng
        doc_id = first_id
        timestamp = start_time
        while True:
            tokens = self.generate_tokens(rng)
            yield Document(
                doc_id,
                TermVector.from_tokens(tokens),
                timestamp,
                text=" ".join(tokens),
                location=(
                    self.generate_location(rng) if with_locations else None
                ),
            )
            doc_id += 1
            timestamp += interval

    # -- query material -----------------------------------------------------------

    def trending_terms(self, per_topic: int = 3) -> List[str]:
        """The most popular terms of each topic — the "trending topics"
        list that seeds SQD-style queries (Section 8.2)."""
        trending: List[str] = []
        for terms in self.topic_terms:
            trending.extend(terms[:per_topic])
        return trending

    def fresh_rng(self, salt: int = 0) -> random.Random:
        """An independent deterministic RNG derived from the corpus seed."""
        return random.Random(f"{self.seed}:{salt}")
