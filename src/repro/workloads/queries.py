"""Subscription query generation (Section 8.2).

Two query sets mirror the paper's:

* **LQD** — for each query, pick a random corpus document and use 1-5 of
  its distinct terms as keywords ("the tweets posted by the user may
  reveal the interests of the user").  Popular terms naturally dominate.
* **SQD** — keywords are 1-5 trending topics, drawn from the corpus's
  trending-terms list (standing in for Twitter's 2012 trending page).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.core.query import DasQuery
from repro.workloads.corpus import SyntheticTweetCorpus


def lqd_queries(
    corpus: SyntheticTweetCorpus,
    n: int,
    min_terms: int = 1,
    max_terms: int = 5,
    first_id: int = 0,
    rng: Optional[random.Random] = None,
    sample_docs: int = 500,
) -> List[DasQuery]:
    """LQD-style queries: keywords sampled from synthetic documents."""
    _validate(n, min_terms, max_terms)
    rng = rng if rng is not None else corpus.fresh_rng(salt=101)
    # A pool of documents to sample keyword sources from.
    pool = [corpus.generate_tokens(rng) for _ in range(max(1, sample_docs))]
    queries: List[DasQuery] = []
    for offset in range(n):
        tokens = rng.choice(pool)
        distinct = sorted(set(tokens))
        count = rng.randint(min_terms, min(max_terms, len(distinct)))
        keywords = rng.sample(distinct, count)
        queries.append(DasQuery(first_id + offset, keywords))
    return queries


def sqd_queries(
    trending: Sequence[str],
    n: int,
    min_terms: int = 1,
    max_terms: int = 5,
    first_id: int = 0,
    rng: Optional[random.Random] = None,
) -> List[DasQuery]:
    """SQD-style queries: keywords are trending topics."""
    _validate(n, min_terms, max_terms)
    if not trending:
        raise ValueError("trending term list is empty")
    rng = rng if rng is not None else random.Random(202)
    distinct = sorted(set(trending))
    queries: List[DasQuery] = []
    for offset in range(n):
        count = rng.randint(min_terms, min(max_terms, len(distinct)))
        keywords = rng.sample(distinct, count)
        queries.append(DasQuery(first_id + offset, keywords))
    return queries


def _validate(n: int, min_terms: int, max_terms: int) -> None:
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if min_terms < 1:
        raise ValueError(f"min_terms must be >= 1, got {min_terms}")
    if max_terms < min_terms:
        raise ValueError(
            f"max_terms ({max_terms}) must be >= min_terms ({min_terms})"
        )
