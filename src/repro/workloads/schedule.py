"""Arrival schedules: interleaved document and query events.

The paper's runtime experiments issue "1 document and 1 new query each
second" after initialising the system with a large query set.  The
schedule captures that shape: a pre-load of subscriptions, then a merged
timeline of document and query arrivals at configurable rates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Union

from repro.core.query import DasQuery
from repro.stream.document import Document


class EventKind(enum.Enum):
    DOCUMENT = "document"
    QUERY = "query"


@dataclass(frozen=True)
class Event:
    """One timeline entry: a document publication or a query arrival."""

    time: float
    kind: EventKind
    payload: Union[Document, DasQuery]

    @property
    def document(self) -> Document:
        assert self.kind is EventKind.DOCUMENT
        return self.payload  # type: ignore[return-value]

    @property
    def query(self) -> DasQuery:
        assert self.kind is EventKind.QUERY
        return self.payload  # type: ignore[return-value]


def interleave(
    documents: Sequence[Document],
    queries: Sequence[DasQuery],
    doc_rate: float = 1.0,
    query_rate: float = 1.0,
    start_time: float = 0.0,
) -> List[Event]:
    """Merge document and query arrivals into one timeline.

    ``doc_rate`` and ``query_rate`` are events per second.  Documents are
    re-stamped with their scheduled arrival times (their relative order
    is preserved); queries arrive in the given order.  Ties are broken in
    favour of documents, matching a pub/sub system where matching work
    dominates.
    """
    if doc_rate <= 0.0 and documents:
        raise ValueError(f"doc_rate must be > 0, got {doc_rate}")
    if query_rate <= 0.0 and queries:
        raise ValueError(f"query_rate must be > 0, got {query_rate}")
    events: List[Event] = []
    doc_interval = 1.0 / doc_rate if doc_rate > 0 else 0.0
    for index, document in enumerate(documents):
        timestamp = start_time + index * doc_interval
        stamped = Document(
            document.doc_id,
            document.vector,
            timestamp,
            document.text,
            document.location,
        )
        events.append(Event(timestamp, EventKind.DOCUMENT, stamped))
    query_interval = 1.0 / query_rate if query_rate > 0 else 0.0
    for index, query in enumerate(queries):
        timestamp = start_time + index * query_interval
        events.append(Event(timestamp, EventKind.QUERY, query))
    events.sort(
        key=lambda event: (event.time, 0 if event.kind is EventKind.DOCUMENT else 1)
    )
    return events


def split_into_intervals(
    events: Sequence[Event], n_intervals: int
) -> List[List[Event]]:
    """Partition a timeline into equal-duration intervals (Figure 4's
    per-10-minute reporting)."""
    if n_intervals < 1:
        raise ValueError(f"n_intervals must be >= 1, got {n_intervals}")
    if not events:
        return [[] for _ in range(n_intervals)]
    start = events[0].time
    end = events[-1].time
    span = max(end - start, 1e-9)
    buckets: List[List[Event]] = [[] for _ in range(n_intervals)]
    for event in events:
        index = int((event.time - start) / span * n_intervals)
        if index >= n_intervals:
            index = n_intervals - 1
        buckets[index].append(event)
    return buckets
