"""Stress workloads for the strategy modes: flash crowds and churn storms.

Two pathological-but-realistic stream shapes the sliding-window and
spatial-keyword modes must survive:

* **Flash crowd** — a sudden burst of near-duplicate documents about one
  topic, concentrated at one location.  For the window mode this forces
  mass expiry (the burst flushes the whole sliding window); for the
  spatial mode it creates one red-hot grid cell whose cached thresholds
  rise rapidly while every other cell stays prunable.

* **Churn storm** — rapid subscribe/unsubscribe cycling interleaved with
  publications.  This stresses the re-selection bookkeeping: candidate
  buffers, per-cell query lists, and threshold caches must stay
  consistent while the query population turns over faster than the
  document stream.

Both generators emit plain op dicts (the simulation harness's schedule
shape) so any driver — in-process, sharded, parallel, or an oracle — can
replay the same workload:

``{"op": "publish", "tokens": [...], "location": [x, y] | None}``
``{"op": "subscribe", "keywords": [...], "location": ..., "window": ...}``
``{"op": "unsubscribe", "index": j}``  (j-th live subscription)

Generation is fully deterministic given the corpus seed and ``salt``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.workloads.corpus import SyntheticTweetCorpus


def flash_crowd(
    corpus: SyntheticTweetCorpus,
    n_background: int = 30,
    n_crowd: int = 25,
    crowd_topic: int = 0,
    crowd_spread: float = 0.02,
    mode: str = "spatial",
    salt: int = 0,
) -> List[Dict[str, Any]]:
    """A background stream with a dense topical burst in the middle.

    The burst documents all draw their tokens from ``crowd_topic``'s term
    distribution and (in spatial mode) their locations from a tight
    Gaussian around that topic's centre, mimicking an event where many
    users post about the same thing from the same place.
    """
    if not 0 <= crowd_topic < corpus.n_topics:
        raise ValueError(
            f"crowd_topic must be in [0, {corpus.n_topics}), got {crowd_topic}"
        )
    if mode not in ("window", "spatial"):
        raise ValueError(f"unknown storm mode {mode!r}")
    rng = corpus.fresh_rng(salt=1000 + salt)
    spatial = mode == "spatial"

    def background_publish() -> Dict[str, Any]:
        op: Dict[str, Any] = {"op": "publish", "tokens": corpus.generate_tokens(rng)}
        op["location"] = (
            list(corpus.generate_location(rng)) if spatial else None
        )
        return op

    def crowd_publish() -> Dict[str, Any]:
        # Crowd documents are built purely from the hot topic's head terms,
        # so they score highly against each other's subscriptions and
        # against one another in the result sets — maximal churn.
        terms = corpus.topic_terms[crowd_topic]
        length = rng.randint(*corpus.doc_length)
        tokens = [terms[rng.randrange(min(len(terms), 8))] for _ in range(length)]
        op: Dict[str, Any] = {"op": "publish", "tokens": tokens}
        op["location"] = (
            list(
                corpus.generate_location(
                    rng, topic=crowd_topic, spread=crowd_spread
                )
            )
            if spatial
            else None
        )
        return op

    lead = n_background // 2
    ops = [background_publish() for _ in range(lead)]
    ops.extend(crowd_publish() for _ in range(n_crowd))
    ops.extend(background_publish() for _ in range(n_background - lead))
    return ops


def churn_storm(
    corpus: SyntheticTweetCorpus,
    n_ops: int = 120,
    subscribe_ratio: float = 0.25,
    unsubscribe_ratio: float = 0.20,
    mode: str = "window",
    salt: int = 0,
) -> List[Dict[str, Any]]:
    """Rapid subscription turnover interleaved with publications.

    Roughly ``subscribe_ratio`` of ops register a new query and
    ``unsubscribe_ratio`` drop a random live one; the rest publish.  The
    generator tracks the live count so unsubscribe indices always refer
    to a registered query, and it front-loads a few subscriptions so the
    stream never runs matcher-idle.
    """
    if subscribe_ratio + unsubscribe_ratio >= 1.0:
        raise ValueError("subscribe_ratio + unsubscribe_ratio must be < 1")
    if mode not in ("window", "spatial"):
        raise ValueError(f"unknown storm mode {mode!r}")
    rng = corpus.fresh_rng(salt=2000 + salt)
    spatial = mode == "spatial"
    trending = corpus.trending_terms(per_topic=2)

    def subscribe_op() -> Dict[str, Any]:
        n_terms = rng.randint(1, 3)
        op: Dict[str, Any] = {
            "op": "subscribe",
            "keywords": rng.sample(trending, n_terms),
        }
        if spatial:
            op["location"] = list(corpus.generate_location(rng))
        elif rng.random() < 0.5:
            op["window"] = rng.randint(2, 10)
        return op

    ops: List[Dict[str, Any]] = [subscribe_op() for _ in range(3)]
    live = 3
    for _ in range(n_ops):
        roll = rng.random()
        if roll < subscribe_ratio:
            ops.append(subscribe_op())
            live += 1
        elif roll < subscribe_ratio + unsubscribe_ratio and live > 1:
            ops.append({"op": "unsubscribe", "index": rng.randrange(live)})
            live -= 1
        else:
            op: Dict[str, Any] = {
                "op": "publish",
                "tokens": corpus.generate_tokens(rng),
            }
            op["location"] = (
                list(corpus.generate_location(rng)) if spatial else None
            )
            ops.append(op)
    return ops


def storm_suite(
    corpus: Optional[SyntheticTweetCorpus] = None, salt: int = 0
) -> Dict[str, List[Dict[str, Any]]]:
    """The canonical four storms, keyed ``<kind>_<mode>`` — one workload
    per strategy mode per storm shape, for differential sweeps."""
    corpus = corpus if corpus is not None else SyntheticTweetCorpus(seed=11)
    return {
        "flash_window": flash_crowd(corpus, mode="window", salt=salt),
        "flash_spatial": flash_crowd(corpus, mode="spatial", salt=salt),
        "churn_window": churn_storm(corpus, mode="window", salt=salt),
        "churn_spatial": churn_storm(corpus, mode="spatial", salt=salt),
    }
