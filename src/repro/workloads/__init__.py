"""Workloads: synthetic corpus, query sets, arrival schedules."""

from repro.workloads.corpus import SyntheticTweetCorpus, zipf_weights
from repro.workloads.queries import lqd_queries, sqd_queries
from repro.workloads.schedule import (
    Event,
    EventKind,
    interleave,
    split_into_intervals,
)
from repro.workloads.storms import churn_storm, flash_crowd, storm_suite

__all__ = [
    "Event",
    "EventKind",
    "SyntheticTweetCorpus",
    "churn_storm",
    "flash_crowd",
    "interleave",
    "lqd_queries",
    "split_into_intervals",
    "sqd_queries",
    "storm_suite",
    "zipf_weights",
]
