"""Workloads: synthetic corpus, query sets, arrival schedules."""

from repro.workloads.corpus import SyntheticTweetCorpus, zipf_weights
from repro.workloads.queries import lqd_queries, sqd_queries
from repro.workloads.schedule import (
    Event,
    EventKind,
    interleave,
    split_into_intervals,
)

__all__ = [
    "Event",
    "EventKind",
    "SyntheticTweetCorpus",
    "interleave",
    "lqd_queries",
    "split_into_intervals",
    "sqd_queries",
    "zipf_weights",
]
