"""Engine configuration.

All tunables from the paper's Table 5 live here, plus the switches that
select between the evaluated methods (GIFilter / IFilter / BIRT / IRT) and
the group-bound mode discussed in DESIGN.md section 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.errors import ConfigurationError

#: Sentinel for "no memory budget" on aggregated term weight summaries.
UNLIMITED = -1

#: Ranking/expiry strategy modes (see ``repro.core.strategies``).
#:
#: ``decay``
#:     The paper's scenario: time-decayed text relevance with diversity
#:     (Eq. 1/4), results only leave when replaced by a better document.
#: ``window``
#:     Count-based sliding window: only the newest ``window_size``
#:     documents are alive; an expiring top-k member triggers
#:     re-selection from a retained candidate buffer.
#: ``spatial``
#:     Spatial-keyword: distance-weighted proximity composed with text
#:     relevance, queries carry a location, candidate grid cells are
#:     pruned by an Eq. 12-style upper bound.
STRATEGY_MODES = ("decay", "window", "spatial")


class GroupBoundMode(enum.Enum):
    """How the group similarity bound ``Sim̃_min`` (Eq. 19) is computed.

    ``STRICT``
        Provably safe lower bound: documents not covered by a minimal
        covering set contribute similarity 0, and only ``k - 1 - |S|``
        residual slots are assumed.  Group filtering never drops a true
        result, so GIFilter matches the naive engine exactly.

    ``PAPER``
        Equation 19 verbatim: residual documents contribute
        ``minSim(U_w(b), d_n)`` each and ``k - |S|`` slots are assumed.
        Slightly tighter (more pruning) but in rare corner cases may filter
        a document that a per-query check would have admitted.
    """

    STRICT = "strict"
    PAPER = "paper"


@dataclass(frozen=True)
class EngineConfig:
    """Configuration for a DAS publish/subscribe engine.

    Parameters mirror Table 5 of the paper.  The memory budget ``phi_max``
    is expressed in *aggregated-weight entries* (term, weight) rather than
    bytes so that behaviour does not depend on the host's pointer width;
    the paper's 0.5 GB default maps to roughly two million entries on its
    hardware.
    """

    #: Number of results maintained per query (paper default 30).
    k: int = 30
    #: Relevance/diversity trade-off, Eq. 1 (paper default 0.3).
    alpha: float = 0.3
    #: Jelinek-Mercer smoothing parameter for ``PS`` (Eq. after Eq. 3).
    smoothing_lambda: float = 0.5
    #: Exponential decay base ``B`` of Eq. 4.  Values > 1 decay; 1 disables
    #: recency.  See :meth:`with_decay_scale` for the paper's
    #: ``B^{-Δt_sim} = scale`` parameterisation.
    decay_base: float = 1.0001
    #: Maximum postings per block, ``p_max`` (paper default 256).
    block_size: int = 256
    #: MCS rebuild threshold ``δ_s`` (Section 7.1, paper default 0.5).
    delta_s: float = 0.5
    #: Budget for aggregated term weight summaries, in entries
    #: (``Φ_max``).  ``UNLIMITED`` disables the R1/R2 split.
    phi_max: int = UNLIMITED
    #: Group bound mode, see :class:`GroupBoundMode`.
    group_bound_mode: GroupBoundMode = GroupBoundMode.STRICT
    #: Scoring kernel backend: ``"auto"`` uses NumPy when importable and
    #: falls back to pure Python; ``"python"`` / ``"numpy"`` force one.
    #: Backends are decision-equivalent (see ``repro/kernels``).
    backend: str = "auto"

    # --- Method switches (GIFilter = all True; see DESIGN.md §3) ---
    #: Partition postings lists into blocks and skip whole blocks
    #: (BIRT / IFilter / GIFilter).
    use_blocks: bool = True
    #: Maintain MCS summaries and apply the group filtering condition
    #: (GIFilter only).
    use_group_filter: bool = True
    #: Maintain aggregated term weight summaries and use Lemma 6 for the
    #: similarity sum (IFilter / GIFilter).
    use_agg_weights: bool = True

    #: Number of most-recent matching documents scanned when initialising
    #: the result set of a freshly subscribed query.
    init_scan_limit: int = 256
    #: Capacity of the shared document store (documents pinned by live
    #: result sets are never evicted).  ``UNLIMITED`` keeps everything.
    store_capacity: int = UNLIMITED

    # --- Strategy seam (repro.core.strategies, DESIGN.md §16) ---
    #: Ranking/expiry mode, one of :data:`STRATEGY_MODES`.
    mode: str = "decay"
    #: Count-based window (``mode="window"``): global retention bound and
    #: the cap on any query's per-subscription ``window`` option.
    window_size: int = 64
    #: Grid resolution per axis (``mode="spatial"``): the unit square of
    #: query locations is cut into ``spatial_cells x spatial_cells``.
    spatial_cells: int = 8
    #: Weight of spatial proximity in the combined score
    #: (``mode="spatial"``): ``score = w * proximity + (1 - w) * trel``.
    spatial_weight: float = 0.5

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in [0, 1], got {self.alpha}")
        if not 0.0 <= self.smoothing_lambda <= 1.0:
            raise ConfigurationError(
                f"smoothing_lambda must be in [0, 1], got {self.smoothing_lambda}"
            )
        if self.decay_base < 1.0:
            raise ConfigurationError(
                f"decay_base must be >= 1 (>=1 decays with age), got {self.decay_base}"
            )
        if self.block_size < 1:
            raise ConfigurationError(
                f"block_size must be >= 1, got {self.block_size}"
            )
        if not 0.0 <= self.delta_s <= 1.0:
            raise ConfigurationError(
                f"delta_s must be in [0, 1], got {self.delta_s}"
            )
        if self.phi_max != UNLIMITED and self.phi_max < 0:
            raise ConfigurationError(
                f"phi_max must be >= 0 or UNLIMITED, got {self.phi_max}"
            )
        if self.store_capacity != UNLIMITED and self.store_capacity < 1:
            raise ConfigurationError(
                f"store_capacity must be >= 1 or UNLIMITED, got {self.store_capacity}"
            )
        if self.init_scan_limit < 0:
            raise ConfigurationError(
                f"init_scan_limit must be >= 0, got {self.init_scan_limit}"
            )
        if self.use_group_filter and not self.use_blocks:
            raise ConfigurationError(
                "group filtering requires the block-based inverted file "
                "(use_blocks=True)"
            )
        if self.backend not in ("auto", "python", "numpy"):
            raise ConfigurationError(
                f"backend must be 'auto', 'python' or 'numpy', "
                f"got {self.backend!r}"
            )
        if self.mode not in STRATEGY_MODES:
            raise ConfigurationError(
                f"mode must be one of {STRATEGY_MODES}, got {self.mode!r}"
            )
        if self.window_size < 1:
            raise ConfigurationError(
                f"window_size must be >= 1, got {self.window_size}"
            )
        if self.spatial_cells < 1:
            raise ConfigurationError(
                f"spatial_cells must be >= 1, got {self.spatial_cells}"
            )
        if not 0.0 <= self.spatial_weight <= 1.0:
            raise ConfigurationError(
                f"spatial_weight must be in [0, 1], got {self.spatial_weight}"
            )

    def with_decay_scale(self, scale: float, horizon: float) -> "EngineConfig":
        """Return a copy whose decay base satisfies ``B**(-horizon) == scale``.

        This mirrors the paper's experimental parameterisation, where the
        "decaying scale" is the recency value a document retains after the
        whole simulation duration ``Δt_sim`` (Section 8.3).
        """
        if not 0.0 < scale <= 1.0:
            raise ConfigurationError(f"decay scale must be in (0, 1], got {scale}")
        if horizon <= 0.0:
            raise ConfigurationError(f"decay horizon must be > 0, got {horizon}")
        base = scale ** (-1.0 / horizon)
        return replace(self, decay_base=base)

    def evolve(self, **changes: object) -> "EngineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: Slow-consumer policies of the serving runtime's delivery sessions.
#:
#: ``block``
#:     Apply backpressure: the matcher waits for queue space, so no
#:     notification is ever lost (at the cost of head-of-line blocking).
#: ``drop_oldest``
#:     Evict the oldest queued message; newest updates win (mirrors
#:     :class:`repro.pubsub.subscriber.Mailbox`).
#: ``coalesce``
#:     Keep only the latest result-set snapshot per query; intermediate
#:     updates collapse while the consumer lags.
#: ``disconnect``
#:     Close the session; a consumer too slow to keep up is kicked.
SLOW_CONSUMER_POLICIES = ("block", "drop_oldest", "coalesce", "disconnect")


@dataclass(frozen=True)
class ServerConfig:
    """Configuration for the asyncio serving runtime (``repro.server``).

    Capacities are in messages.  The ingestion queue bounds how far
    publishers can run ahead of the matcher; the outbound capacity bounds
    how far the matcher can run ahead of each subscriber.
    """

    #: Bound of the publish ingestion queue (publishers await space).
    ingest_capacity: int = 1024
    #: Bound of each subscriber session's outbound queue.
    outbound_capacity: int = 64
    #: Hard cap on the matcher's adaptive micro-batch size.
    max_batch_size: int = 64
    #: Default slow-consumer policy for new sessions (per-session
    #: overridable), one of :data:`SLOW_CONSUMER_POLICIES`.
    slow_consumer_policy: str = "block"
    #: Graceful-shutdown deadline (seconds) for flushing the ingestion
    #: queue and the delivery queues.
    drain_timeout: float = 5.0
    #: Bind address of the NDJSON TCP transport.
    host: str = "127.0.0.1"
    #: Bind port of the NDJSON TCP transport (0 = ephemeral).
    port: int = 8765
    #: Run the engine as N shard worker *processes*
    #: (:class:`repro.parallel.ParallelShardedEngine`).  0 or 1 keeps
    #: the engine in-process.  When > 1, the runtime wraps the fresh
    #: engine it was given and owns the workers' lifecycle (they stop
    #: with the runtime).
    parallel_workers: int = 0

    # --- Deterministic-simulation hooks (see repro.simulation) ---
    #: Wall-clock stand-in for default publish timestamps.  ``None``
    #: uses ``time.time``; the simulation harness passes a
    #: :class:`~repro.simulation.clock.SimulatedClock` so accepted
    #: timestamps are a pure function of the op schedule.
    time_source: Optional[Callable[[], float]] = None
    #: Run engine calls inline on the event loop instead of the
    #: one-thread executor.  Removes the only cross-thread handoff in
    #: the runtime, making async interleavings deterministic; costs
    #: event-loop latency while a batch matches, so production keeps
    #: the executor (False).
    inline_matcher: bool = False
    #: Fault-injection hook (:class:`repro.simulation.faults.FaultInjector`
    #: or anything with a ``fire(point)`` method).  ``None`` disables
    #: every injection point at the cost of one attribute check.
    fault_injector: Optional[object] = None

    # --- Durable event log (repro.eventlog, DESIGN.md §14) ---
    #: Directory of the write-ahead event log.  ``None`` disables the
    #: whole durability tier (log, resume, DLQ, checkpoints).  On start
    #: the runtime recovers from the directory's newest checkpoint plus
    #: a replay of the logged suffix.
    eventlog_dir: Optional[str] = None
    #: fsync policy of log appends: ``"always"`` syncs every append
    #: batch, ``"batch"`` syncs on segment rotation only, ``"never"``
    #: leaves flushing to the OS.
    eventlog_fsync: str = "always"
    #: Log entries per segment file before rotating.
    eventlog_segment_entries: int = 512
    #: Write a checkpoint (and truncate the log behind it) every N
    #: appended records.  0 disables automatic checkpoints; explicit
    #: ``checkpoint`` requests still work.
    eventlog_checkpoint_every: int = 0
    #: Retained notifications per durable subscriber; the oldest entry
    #: is dead-lettered on overflow.
    outbox_capacity: int = 256
    #: Redelivery attempts before an un-acked notification is
    #: dead-lettered ("N consecutive delivery failures").
    dlq_max_attempts: int = 3
    #: Per-session publish throttle: sustained publishes/second.  0
    #: disables throttling.
    throttle_rate: float = 0.0
    #: Token-bucket burst allowance when throttling is enabled.
    throttle_burst: int = 8

    def __post_init__(self) -> None:
        if self.ingest_capacity < 1:
            raise ConfigurationError(
                f"ingest_capacity must be >= 1, got {self.ingest_capacity}"
            )
        if self.outbound_capacity < 1:
            raise ConfigurationError(
                f"outbound_capacity must be >= 1, got {self.outbound_capacity}"
            )
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.slow_consumer_policy not in SLOW_CONSUMER_POLICIES:
            raise ConfigurationError(
                f"slow_consumer_policy must be one of {SLOW_CONSUMER_POLICIES}, "
                f"got {self.slow_consumer_policy!r}"
            )
        if self.drain_timeout <= 0.0:
            raise ConfigurationError(
                f"drain_timeout must be > 0, got {self.drain_timeout}"
            )
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(
                f"port must be in [0, 65535], got {self.port}"
            )
        if self.parallel_workers < 0:
            raise ConfigurationError(
                f"parallel_workers must be >= 0, got {self.parallel_workers}"
            )
        if self.time_source is not None and not callable(self.time_source):
            raise ConfigurationError("time_source must be callable or None")
        if self.fault_injector is not None and not callable(
            getattr(self.fault_injector, "fire", None)
        ):
            raise ConfigurationError(
                "fault_injector must expose a fire(point) method"
            )
        if self.eventlog_fsync not in ("always", "batch", "never"):
            raise ConfigurationError(
                f"eventlog_fsync must be 'always', 'batch' or 'never', "
                f"got {self.eventlog_fsync!r}"
            )
        if self.eventlog_segment_entries < 1:
            raise ConfigurationError(
                f"eventlog_segment_entries must be >= 1, "
                f"got {self.eventlog_segment_entries}"
            )
        if self.eventlog_checkpoint_every < 0:
            raise ConfigurationError(
                f"eventlog_checkpoint_every must be >= 0, "
                f"got {self.eventlog_checkpoint_every}"
            )
        if self.outbox_capacity < 1:
            raise ConfigurationError(
                f"outbox_capacity must be >= 1, got {self.outbox_capacity}"
            )
        if self.dlq_max_attempts < 1:
            raise ConfigurationError(
                f"dlq_max_attempts must be >= 1, got {self.dlq_max_attempts}"
            )
        if self.throttle_rate < 0.0:
            raise ConfigurationError(
                f"throttle_rate must be >= 0, got {self.throttle_rate}"
            )
        if self.throttle_burst < 1:
            raise ConfigurationError(
                f"throttle_burst must be >= 1, got {self.throttle_burst}"
            )

    def evolve(self, **changes: object) -> "ServerConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


def gifilter_config(**overrides: object) -> EngineConfig:
    """Configuration for the paper's full method (group + individual)."""
    base = EngineConfig(use_blocks=True, use_group_filter=True, use_agg_weights=True)
    return base.evolve(**overrides) if overrides else base


def ifilter_config(**overrides: object) -> EngineConfig:
    """Configuration for IFilter: blocks + aggregated weights, no MCS."""
    base = EngineConfig(use_blocks=True, use_group_filter=False, use_agg_weights=True)
    return base.evolve(**overrides) if overrides else base


def birt_config(**overrides: object) -> EngineConfig:
    """Configuration for the BIRT baseline (Appendix A.1)."""
    base = EngineConfig(use_blocks=True, use_group_filter=False, use_agg_weights=False)
    return base.evolve(**overrides) if overrides else base


def irt_config(**overrides: object) -> EngineConfig:
    """Configuration for the IRT baseline (Appendix A.1)."""
    base = EngineConfig(use_blocks=False, use_group_filter=False, use_agg_weights=False)
    return base.evolve(**overrides) if overrides else base


#: Factory functions keyed by the method names used throughout the paper.
METHOD_CONFIGS = {
    "GIFilter": gifilter_config,
    "IFilter": ifilter_config,
    "BIRT": birt_config,
    "IRT": irt_config,
}
