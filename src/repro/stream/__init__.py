"""Stream substrate: documents, clock, store, sources."""

from repro.stream.clock import SimulationClock
from repro.stream.document import Document
from repro.stream.document_store import DocumentStore
from repro.stream.source import (
    DocumentSource,
    FileSource,
    TextSource,
    TokenListSource,
)

__all__ = [
    "Document",
    "DocumentSource",
    "DocumentStore",
    "FileSource",
    "SimulationClock",
    "TextSource",
    "TokenListSource",
]
