"""Stream documents (Definition 1).

A document is the triple ``d = <id, v_d, t_c>``: an id assigned in
creation-time order, a term-frequency vector over the vocabulary, and a
creation timestamp.  The original text is kept optionally for display in
examples and the user-study proxy.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.text.vectors import TermVector


class Document:
    """A single published item of the text stream.

    ``location`` is an optional ``(x, y)`` pair in the unit square used
    by the spatial-keyword strategy mode; documents without one score
    zero proximity there and behave identically in the other modes.
    """

    __slots__ = ("doc_id", "vector", "created_at", "text", "location")

    def __init__(
        self,
        doc_id: int,
        vector: TermVector,
        created_at: float,
        text: Optional[str] = None,
        location: Optional[Tuple[float, float]] = None,
    ) -> None:
        self.doc_id = doc_id
        self.vector = vector
        self.created_at = created_at
        self.text = text
        self.location = (
            (float(location[0]), float(location[1]))
            if location is not None
            else None
        )

    @classmethod
    def from_tokens(
        cls,
        doc_id: int,
        tokens: Iterable[str],
        created_at: float,
        text: Optional[str] = None,
        location: Optional[Tuple[float, float]] = None,
    ) -> "Document":
        return cls(
            doc_id, TermVector.from_tokens(tokens), created_at, text, location
        )

    @classmethod
    def from_text(
        cls,
        doc_id: int,
        text: str,
        created_at: float,
        location: Optional[Tuple[float, float]] = None,
    ) -> "Document":
        return cls(doc_id, TermVector.from_text(text), created_at, text, location)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Document):
            return NotImplemented
        return self.doc_id == other.doc_id

    def __hash__(self) -> int:
        return hash(self.doc_id)

    def __lt__(self, other: "Document") -> bool:
        return self.doc_id < other.doc_id

    def __repr__(self) -> str:
        return (
            f"Document(id={self.doc_id}, terms={len(self.vector)}, "
            f"t_c={self.created_at:.3f})"
        )
