"""Simulation clock.

Recency (Eq. 4) depends on ``t_cur``; to keep experiments deterministic
and engines comparable, time is owned by an explicit clock object that the
experiment driver advances rather than the wall clock.
"""

from __future__ import annotations


class SimulationClock:
    """Monotonic simulated time in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; negative deltas are rejected."""
        if seconds < 0.0:
            raise ValueError(f"cannot move time backwards (delta={seconds})")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time not earlier than the current one."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move time backwards (now={self._now}, to={timestamp})"
            )
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:
        return f"SimulationClock(now={self._now:.3f})"
