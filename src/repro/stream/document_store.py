"""Document lists (Figure 1): storage for arrived documents.

The store keeps the text and temporal information of each published
document, serves two access patterns, and bounds memory:

* ``get(doc_id)`` — random access for individual filtering (R2 documents)
  and for resolving minimal-covering-set members;
* ``recent_matching(terms, limit)`` — newest-first scan used when a fresh
  subscription initialises its result set "by traversing the document
  lists" (Section 3);
* eviction — past ``capacity`` documents the oldest *unpinned* documents
  are dropped.  Result sets pin the documents they reference so a live
  result can never dangle.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Iterable, Iterator, List, Optional

from repro.config import UNLIMITED
from repro.errors import DocumentOrderError, DuplicateDocumentError
from repro.stream.document import Document


class DocumentStore:
    """Ordered store of published documents with pinning and eviction."""

    def __init__(self, capacity: int = UNLIMITED, index_terms: bool = True) -> None:
        self._capacity = capacity
        self._index_terms = index_terms
        self._docs: "OrderedDict[int, Document]" = OrderedDict()
        self._pins: Dict[int, int] = {}
        self._last_id: Optional[int] = None
        self._last_time: float = float("-inf")
        # term -> ids of stored documents containing the term, oldest first.
        self._term_index: Dict[str, Deque[int]] = {}

    # -- insertion -------------------------------------------------------

    def add(self, document: Document) -> None:
        """Append a document; ids and timestamps must be non-decreasing."""
        doc_id = document.doc_id
        if doc_id in self._docs:
            raise DuplicateDocumentError(f"document {doc_id} already stored")
        if self._last_id is not None and doc_id <= self._last_id:
            raise DocumentOrderError(
                f"document id {doc_id} is not after previous id {self._last_id}"
            )
        if document.created_at < self._last_time:
            raise DocumentOrderError(
                f"document {doc_id} created_at {document.created_at} precedes "
                f"previous timestamp {self._last_time}"
            )
        self._docs[doc_id] = document
        self._last_id = doc_id
        self._last_time = document.created_at
        if self._index_terms:
            for term in document.vector.terms():
                bucket = self._term_index.get(term)
                if bucket is None:
                    bucket = deque()
                    self._term_index[term] = bucket
                bucket.append(doc_id)
        self._evict_if_needed()

    # -- access ----------------------------------------------------------

    def get(self, doc_id: int) -> Optional[Document]:
        return self._docs.get(doc_id)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._docs

    def __len__(self) -> int:
        return len(self._docs)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._docs.values())

    def newest_first(self) -> Iterator[Document]:
        return iter(reversed(self._docs.values()))

    def recent_matching(self, terms: Iterable[str], limit: int) -> List[Document]:
        """Newest-first documents containing at least one of ``terms``.

        Used for result-set initialisation of new subscriptions.  At most
        ``limit`` documents are returned; duplicates across terms are
        merged.
        """
        if limit <= 0:
            return []
        candidate_ids: set = set()
        for term in terms:
            bucket = self._term_index.get(term)
            if bucket:
                # Take the most recent `limit` ids of each term bucket.
                take = min(limit, len(bucket))
                for i in range(len(bucket) - take, len(bucket)):
                    candidate_ids.add(bucket[i])
        ordered = sorted(candidate_ids, reverse=True)[:limit]
        docs = []
        for doc_id in ordered:
            doc = self._docs.get(doc_id)
            if doc is not None:
                docs.append(doc)
        return docs

    # -- pinning & eviction ----------------------------------------------

    def pin(self, doc_id: int) -> None:
        """Protect a document from eviction (refcounted)."""
        self._pins[doc_id] = self._pins.get(doc_id, 0) + 1

    def unpin(self, doc_id: int) -> None:
        """Release one pin; the document becomes evictable at zero pins."""
        count = self._pins.get(doc_id, 0)
        if count <= 1:
            self._pins.pop(doc_id, None)
        else:
            self._pins[doc_id] = count - 1

    def pin_count(self, doc_id: int) -> int:
        return self._pins.get(doc_id, 0)

    def _evict_if_needed(self) -> None:
        if self._capacity == UNLIMITED:
            return
        excess = len(self._docs) - self._capacity
        if excess <= 0:
            return
        # Scan oldest-first, skipping pinned documents.  Pinned documents
        # may push the store over capacity; that is deliberate — results
        # must stay resolvable.
        victims = []
        for doc_id in self._docs:
            if self._pins.get(doc_id, 0) == 0:
                victims.append(doc_id)
                if len(victims) == excess:
                    break
        for doc_id in victims:
            document = self._docs.pop(doc_id)
            if self._index_terms:
                for term in document.vector.terms():
                    bucket = self._term_index.get(term)
                    if bucket is None:
                        continue
                    try:
                        bucket.remove(doc_id)
                    except ValueError:
                        pass
                    if not bucket:
                        del self._term_index[term]
