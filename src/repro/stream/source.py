"""Document sources: adapters that turn raw material into a stream.

Sources assign monotonically increasing ids and timestamps, so any
iterable of texts or token lists becomes a well-formed text stream
(Definition 1) regardless of where it came from.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.stream.document import Document


class DocumentSource:
    """Base class for document sources.

    Subclasses implement :meth:`__iter__` yielding :class:`Document`
    objects with non-decreasing ids and timestamps.
    """

    def __iter__(self) -> Iterator[Document]:  # pragma: no cover - interface
        raise NotImplementedError

    def take(self, n: int) -> List[Document]:
        """Materialise the first ``n`` documents."""
        out: List[Document] = []
        for document in self:
            out.append(document)
            if len(out) >= n:
                break
        return out


class TokenListSource(DocumentSource):
    """Stream pre-tokenised documents at a fixed arrival interval."""

    def __init__(
        self,
        token_lists: Iterable[Sequence[str]],
        start_time: float = 0.0,
        interval: float = 1.0,
        first_id: int = 0,
    ) -> None:
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        self._token_lists = token_lists
        self._start_time = start_time
        self._interval = interval
        self._first_id = first_id

    def __iter__(self) -> Iterator[Document]:
        doc_id = self._first_id
        timestamp = self._start_time
        for tokens in self._token_lists:
            yield Document.from_tokens(doc_id, tokens, timestamp)
            doc_id += 1
            timestamp += self._interval


class FileSource(DocumentSource):
    """Stream a text file, one document per non-empty line.

    Lets users replay their own data (e.g. an exported tweet dump) as a
    well-formed stream.  Lines are tokenised with the default tokenizer;
    lines that tokenise to nothing are skipped.
    """

    def __init__(
        self,
        path: str,
        start_time: float = 0.0,
        interval: float = 1.0,
        first_id: int = 0,
        keep_text: bool = True,
    ) -> None:
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        self._path = path
        self._start_time = start_time
        self._interval = interval
        self._first_id = first_id
        self._keep_text = keep_text

    def __iter__(self) -> Iterator[Document]:
        from repro.text.tokenizer import tokenize
        from repro.text.vectors import TermVector

        doc_id = self._first_id
        timestamp = self._start_time
        with open(self._path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                tokens = tokenize(line)
                if not tokens:
                    continue
                yield Document(
                    doc_id,
                    TermVector.from_tokens(tokens),
                    timestamp,
                    line if self._keep_text else None,
                )
                doc_id += 1
                timestamp += self._interval


class TextSource(DocumentSource):
    """Stream raw texts (tokenised lazily) at a fixed arrival interval."""

    def __init__(
        self,
        texts: Iterable[str],
        start_time: float = 0.0,
        interval: float = 1.0,
        first_id: int = 0,
    ) -> None:
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        self._texts = texts
        self._start_time = start_time
        self._interval = interval
        self._first_id = first_id

    def __iter__(self) -> Iterator[Document]:
        doc_id = self._first_id
        timestamp = self._start_time
        for text in self._texts:
            yield Document.from_text(doc_id, text, timestamp)
            doc_id += 1
            timestamp += self._interval
