"""Deterministic trace sampling and per-publish span accounting.

Sampling must be a pure function of ``(seed, doc_id)`` — never of time,
position in a batch, or shard layout — so the same document is sampled
(or not) whether it flows through a single engine, an in-process sharded
engine or a fleet of worker processes, and so seeded simulation runs
reproduce byte-for-byte.  ``crc32`` over ``"{seed}:{doc_id}"`` gives a
uniform 32-bit hash with no dependency on Python's per-process hash
randomisation.

A :class:`PublishObservation` is the engine-side carrier for one
publish: it accumulates per-stage elapsed time (group filter, individual
filter, result update; postings traversal is the remainder) and, for
sampled documents, the counter baseline that :class:`repro.telemetry.
Telemetry` turns into a span tree of counter deltas at publish end.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, Optional


class TraceSampler:
    """Seeded deterministic sampler over document ids."""

    __slots__ = ("seed", "rate", "_threshold")

    def __init__(self, seed: int = 0, rate: float = 1.0 / 16.0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.seed = seed
        self.rate = rate
        #: crc32 values below this are sampled; rate 1.0 samples all.
        self._threshold = int(rate * (1 << 32))

    def sampled(self, doc_id: int) -> bool:
        if self._threshold == 0:
            return False
        key = f"{self.seed}:{doc_id}".encode("ascii")
        return zlib.crc32(key) < self._threshold


class PublishObservation:
    """Per-publish accumulator handed out by ``Telemetry.begin_publish``."""

    __slots__ = ("doc_id", "time", "started_at", "stage_seconds", "baseline")

    def __init__(
        self,
        doc_id: int,
        time_fn: Callable[[], float],
        baseline: Optional[Dict[str, int]],
    ) -> None:
        self.doc_id = doc_id
        self.time = time_fn
        self.started_at = time_fn()
        #: stage name -> accumulated seconds within this publish.
        self.stage_seconds: Dict[str, float] = {}
        #: Counter snapshot at publish start; None when not sampled.
        self.baseline = baseline

    def add(self, stage: str, elapsed: float) -> None:
        if elapsed < 0.0:
            elapsed = 0.0
        self.stage_seconds[stage] = (
            self.stage_seconds.get(stage, 0.0) + elapsed
        )
