"""A small metric registry: named counters, gauges and histograms.

The registry is the bookkeeping substrate of :class:`repro.telemetry.
Telemetry` and of the serving runtime's pipeline metrics: metrics are
created (or re-fetched) by name, carry help text for the Prometheus
exposition, and snapshot to a JSON-safe dict.  It deliberately stays a
plain in-process structure — cross-process aggregation happens on the
histogram wire form, not on registries.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.telemetry.histogram import DEFAULT_BOUNDS, LatencyHistogram


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (inc({amount}))"
            )
        self.value += amount


class Gauge:
    """A point-in-time numeric metric."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class MetricRegistry:
    """Name -> metric map with get-or-create semantics.

    Re-registering a name returns the existing metric; re-registering it
    as a different metric type is a programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, factory, kind: type):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} is already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: Optional[Sequence[float]] = None,
    ) -> LatencyHistogram:
        factory = lambda: LatencyHistogram(  # noqa: E731
            bounds if bounds is not None else DEFAULT_BOUNDS
        )
        return self._get_or_create(name, factory, LatencyHistogram)

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self):
        return list(self._metrics)

    def as_dict(self) -> Dict:
        """JSON-safe snapshot of every registered metric."""
        out: Dict[str, object] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, LatencyHistogram):
                out[name] = metric.to_wire()
            else:
                out[name] = metric.value
        return out
