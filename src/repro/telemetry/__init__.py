"""Unified telemetry: registry, stage histograms, spans, effectiveness.

One :class:`Telemetry` instance observes every publish an engine
processes.  The engine calls :meth:`Telemetry.begin_publish` /
:meth:`Telemetry.end_publish` around its Algorithm 2 hot path and
attributes elapsed time to the filtering stages as it runs; end_publish
folds the stage times into fixed-bucket latency histograms (one
observation per stage per publish, so histogram counts are an exact
function of documents processed) and, for deterministically sampled
documents, materialises a span tree of per-stage counter deltas into a
bounded trace ring.

Determinism contract (the simulation harness and golden-trace tests
rely on it):

* sampling is a pure function of ``(seed, doc_id)`` — see
  :class:`~repro.telemetry.spans.TraceSampler`;
* with a :class:`CountingClock` as ``time_fn`` no wall-clock value ever
  enters a histogram, so snapshots are byte-reproducible;
* :func:`merge_snapshots` is order-insensitive (histogram merge is
  associative and commutative), so parent-side aggregation across
  workers equals in-process aggregation exactly.

The serving pipeline's stages (ingest queue wait, micro-batch execution,
notification fan-out) live runtime-side in
:class:`~repro.server.runtime.ServerRuntime` over the same histogram
primitive and are merged into the same stats surface.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional

from repro.metrics.instrumentation import Counters
from repro.telemetry.effectiveness import (
    BOUNDED_RATIOS,
    effectiveness_gauges,
)
from repro.telemetry.histogram import (
    DEFAULT_BOUNDS,
    LatencyHistogram,
    merge_wire,
)
from repro.telemetry.prometheus import render_exposition
from repro.telemetry.registry import Counter, Gauge, MetricRegistry
from repro.telemetry.spans import PublishObservation, TraceSampler

#: Engine-side stages of one publish, in pipeline order.  Every stage is
#: observed exactly once per publish; ``postings_traversal`` is the
#: publish total minus the explicitly timed stages.
ENGINE_STAGES = (
    "postings_traversal",
    "group_filter",
    "individual_filter",
    "result_update",
)

#: Runtime-side stages measured by the serving pipeline.
#: ``eventlog_append`` (WAL append+fsync per micro-batch) and
#: ``throttle_wait`` (per-publish token-bucket delay) only observe when
#: the durability tier is enabled.
PIPELINE_STAGES = (
    "ingest_queue",
    "micro_batch",
    "notify",
    "eventlog_append",
    "throttle_wait",
)

#: Wire-path stages of the process-parallel deployment.  They are *not*
#: per-publish stages: ``wire_decode`` is observed once per document a
#: worker decodes off the wire (so its count tracks publish spans when
#: every batch decodes cleanly), while ``wire_encode`` is observed once
#: per reply a worker encodes (per request, not per document).  They
#: live in the snapshot's separate ``"wire"`` section so the
#: one-observation-per-span invariant over ``"stages"`` stays exact.
WIRE_STAGES = ("wire_decode", "wire_encode")

#: Which work counters each engine stage moves (for span counter deltas).
STAGE_COUNTERS = {
    "postings_traversal": (
        "postings_visited",
        "blocks_visited",
        "blocks_skipped",
    ),
    "group_filter": ("group_checks", "mcs_rebuilds"),
    "individual_filter": (
        "queries_evaluated",
        "quick_rejections",
        "sim_evaluations",
        "aw_dot_products",
    ),
    "result_update": ("matches", "mcs_invalidations"),
}


class CountingClock:
    """A clock that advances one fixed step per reading.

    Substituting this for ``time.perf_counter`` makes every duration a
    pure function of *how many clock readings* the code path performed —
    deterministic across hosts and runs — while still landing in real
    histogram buckets (the default step is one microsecond).
    """

    __slots__ = ("_ticks", "_step")

    def __init__(self, step: float = 1e-6) -> None:
        self._ticks = 0
        self._step = float(step)

    def __call__(self) -> float:
        self._ticks += 1
        return self._ticks * self._step


class Telemetry:
    """Per-engine telemetry: stage histograms, span accounting, traces."""

    def __init__(
        self,
        time_fn: Optional[Callable[[], float]] = None,
        sample_rate: float = 1.0 / 16.0,
        seed: int = 0,
        trace_capacity: int = 64,
    ) -> None:
        self._time = time_fn if time_fn is not None else time.perf_counter
        self.registry = MetricRegistry()
        self.sampler = TraceSampler(seed, sample_rate)
        self._stage_histograms = {
            stage: self.registry.histogram(
                f"stage_{stage}",
                f"Per-publish {stage} latency (seconds).",
            )
            for stage in ENGINE_STAGES
        }
        self._spans_started = self.registry.counter(
            "spans_started", "Publish spans opened."
        )
        self._spans_finished = self.registry.counter(
            "spans_finished", "Publish spans completed."
        )
        self._spans_aborted = self.registry.counter(
            "spans_aborted", "Publish spans aborted by an error."
        )
        self._spans_sampled = self.registry.counter(
            "spans_sampled", "Publish spans captured as traces."
        )
        #: Most recent sampled traces (bounded; excluded from snapshots).
        self.traces = deque(maxlen=trace_capacity)
        #: Wire-path histograms, materialised on first observation so
        #: in-process engines carry no wire series at all.
        self._wire_histograms: Dict[str, LatencyHistogram] = {}

    # -- wire path ---------------------------------------------------------

    def observe_wire(self, stage: str, seconds: float) -> None:
        """Observe one wire-path event (see :data:`WIRE_STAGES`)."""
        histogram = self._wire_histograms.get(stage)
        if histogram is None:
            histogram = self.registry.histogram(
                stage, f"Per-event {stage} latency (seconds)."
            )
            self._wire_histograms[stage] = histogram
        histogram.observe(seconds)

    # -- publish lifecycle -------------------------------------------------

    def begin_publish(
        self, doc_id: int, counters: Counters
    ) -> PublishObservation:
        """Open the observation for one publish (engine hot path)."""
        self._spans_started.inc()
        baseline = (
            counters.as_dict() if self.sampler.sampled(doc_id) else None
        )
        return PublishObservation(doc_id, self._time, baseline)

    def end_publish(
        self, observation: PublishObservation, counters: Counters
    ) -> None:
        """Close one publish: observe stage histograms, capture a trace."""
        total = self._time() - observation.started_at
        timed = sum(observation.stage_seconds.values())
        traversal = total - timed
        if traversal < 0.0:
            traversal = 0.0
        self._stage_histograms["postings_traversal"].observe(traversal)
        for stage in ENGINE_STAGES[1:]:
            self._stage_histograms[stage].observe(
                observation.stage_seconds.get(stage, 0.0)
            )
        self._spans_finished.inc()
        if observation.baseline is not None:
            self._spans_sampled.inc()
            self.traces.append(
                self._build_trace(observation, counters.as_dict())
            )

    def abort_publish(self, observation: PublishObservation) -> None:
        """A publish raised mid-flight; keep the span ledger balanced."""
        self._spans_aborted.inc()

    @staticmethod
    def _build_trace(
        observation: PublishObservation, after: Dict[str, int]
    ) -> Dict:
        """Span tree of one sampled publish: stage -> counter deltas.

        Durations are intentionally excluded — the golden-trace test
        compares structurally, and counter deltas are exact while
        durations are host noise under a wall clock.
        """
        baseline = observation.baseline
        delta = {
            name: after[name] - baseline[name] for name in after
        }
        return {
            "doc_id": observation.doc_id,
            "root": "publish",
            "stages": [
                {
                    "name": stage,
                    "counters": {
                        name: delta[name]
                        for name in STAGE_COUNTERS[stage]
                        if delta[name]
                    },
                }
                for stage in ENGINE_STAGES
            ],
        }

    # -- aggregation -------------------------------------------------------

    def span_counts(self) -> Dict[str, int]:
        return {
            "started": self._spans_started.value,
            "finished": self._spans_finished.value,
            "aborted": self._spans_aborted.value,
            "sampled": self._spans_sampled.value,
        }

    def snapshot(self) -> Dict:
        """JSON-safe mergeable snapshot (traces excluded, see module doc)."""
        return {
            "stages": {
                stage: histogram.to_wire()
                for stage, histogram in self._stage_histograms.items()
            },
            "wire": {
                stage: histogram.to_wire()
                for stage, histogram in self._wire_histograms.items()
            },
            "spans": self.span_counts(),
        }


def empty_snapshot() -> Dict:
    """The identity element of :func:`merge_snapshots`."""
    return {
        "stages": {},
        "wire": {},
        "spans": {"started": 0, "finished": 0, "aborted": 0, "sampled": 0},
    }


def merge_snapshots(snapshots: Iterable[Optional[Dict]]) -> Dict:
    """Merge telemetry snapshots (e.g. one per worker) parent-side.

    ``None`` entries (engines without telemetry) are skipped.  Histogram
    series merge element-wise; span counts add.  The result does not
    depend on input order.
    """
    merged = empty_snapshot()
    for snapshot in snapshots:
        if snapshot is None:
            continue
        for section in ("stages", "wire"):
            for stage, wire in snapshot.get(section, {}).items():
                existing = merged[section].get(stage)
                merged[section][stage] = (
                    dict(wire)
                    if existing is None
                    else merge_wire(existing, wire)
                )
        for state, value in snapshot.get("spans", {}).items():
            merged["spans"][state] = (
                merged["spans"].get(state, 0) + int(value)
            )
    return merged


__all__ = [
    "BOUNDED_RATIOS",
    "CountingClock",
    "Counter",
    "DEFAULT_BOUNDS",
    "ENGINE_STAGES",
    "Gauge",
    "LatencyHistogram",
    "MetricRegistry",
    "PIPELINE_STAGES",
    "PublishObservation",
    "STAGE_COUNTERS",
    "Telemetry",
    "TraceSampler",
    "WIRE_STAGES",
    "effectiveness_gauges",
    "empty_snapshot",
    "merge_snapshots",
    "merge_wire",
    "render_exposition",
]
