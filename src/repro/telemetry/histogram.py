"""Fixed-bucket latency histograms with a mergeable wire form.

The histogram is the telemetry layer's only aggregatable latency
primitive: a fixed, strictly increasing tuple of bucket upper bounds
(Prometheus ``le`` semantics — a bucket counts observations ``<=`` its
bound) plus one overflow bucket and a running sum.  Because the bounds
are fixed at construction, two histograms over the same bounds merge by
element-wise addition of counts — which makes the merge associative and
commutative and preserves both total count and total sum exactly (the
property tests in ``tests/test_telemetry_properties.py`` assert all
four).  That is the contract the parallel engine relies on when it
merges per-worker histograms parent-side in any order.

The wire form (:meth:`to_wire` / :meth:`from_wire`) is a JSON-safe dict,
so histograms cross the worker pipe, the checkpoint layer and the NDJSON
stats surface without a custom codec.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Sequence

#: Default bucket upper bounds in seconds: 1 µs .. 2.5 s in a
#: 1 / 2.5 / 5 decade ladder, wide enough for both the engine's
#: per-stage times and the serving pipeline's queue waits.
DEFAULT_BOUNDS = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5,
)


class LatencyHistogram:
    """A fixed-bucket histogram of non-negative durations (seconds)."""

    __slots__ = ("bounds", "counts", "sum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError(
                f"bucket bounds must be strictly increasing, got {bounds}"
            )
        self.bounds = bounds
        #: Per-bucket counts; the final slot is the +Inf overflow bucket.
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0

    @property
    def count(self) -> int:
        return sum(self.counts)

    def observe(self, value: float) -> None:
        """Record one duration; negative values are a caller bug."""
        if value < 0:
            raise ValueError(f"duration must be >= 0, got {value}")
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value

    # -- merging ----------------------------------------------------------

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram in place."""
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds: "
                f"{self.bounds} != {other.bounds}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.sum += other.sum

    def __add__(self, other: "LatencyHistogram") -> "LatencyHistogram":
        merged = LatencyHistogram(self.bounds)
        merged.merge(self)
        merged.merge(other)
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (
            self.bounds == other.bounds
            and self.counts == other.counts
            and self.sum == other.sum
        )

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(count={self.count}, sum={self.sum!r}, "
            f"buckets={len(self.bounds) + 1})"
        )

    # -- wire form ---------------------------------------------------------

    def to_wire(self) -> Dict:
        """JSON-safe mergeable form: bounds, per-bucket counts, sum."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
        }

    @classmethod
    def from_wire(cls, payload: Dict) -> "LatencyHistogram":
        histogram = cls(payload["bounds"])
        counts = [int(count) for count in payload["counts"]]
        if len(counts) != len(histogram.counts):
            raise ValueError(
                f"wire payload has {len(counts)} buckets, expected "
                f"{len(histogram.counts)}"
            )
        histogram.counts = counts
        histogram.sum = float(payload["sum"])
        return histogram

    def cumulative(self) -> List[int]:
        """Cumulative ``le`` counts (Prometheus exposition order)."""
        total = 0
        out = []
        for count in self.counts:
            total += count
            out.append(total)
        return out


def merge_wire(a: Dict, b: Dict) -> Dict:
    """Merge two wire-form histograms without materialising objects."""
    merged = LatencyHistogram.from_wire(a)
    merged.merge(LatencyHistogram.from_wire(b))
    return merged.to_wire()
