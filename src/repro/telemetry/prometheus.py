"""Prometheus text exposition, rendered by hand.

The container image does not ship ``prometheus_client``, and the
telemetry layer's metrics are already aggregated snapshots by the time
they reach the stats surface, so the exposition format (version 0.0.4
text) is rendered directly: ``# HELP`` / ``# TYPE`` headers, cumulative
``le`` buckets for histograms, and deterministic ordering (sorted metric
and label names) so two renders of the same snapshot are byte-equal.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.telemetry.histogram import LatencyHistogram


def _format_value(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if isinstance(value, bool):  # bools are ints; refuse the footgun
        raise ValueError("metric values must be numbers, not bools")
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float(int(value)) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_histogram_family(
    name: str, help: str, series: Mapping[str, Dict]
) -> List[str]:
    """One histogram family with a ``stage`` label per wire-form series."""
    lines = [
        f"# HELP {name} {_escape_help(help)}",
        f"# TYPE {name} histogram",
    ]
    for stage in sorted(series):
        histogram = LatencyHistogram.from_wire(series[stage])
        cumulative = histogram.cumulative()
        for bound, count in zip(histogram.bounds, cumulative):
            lines.append(
                f'{name}_bucket{{stage="{stage}",le="{repr(bound)}"}} '
                f"{count}"
            )
        lines.append(
            f'{name}_bucket{{stage="{stage}",le="+Inf"}} {cumulative[-1]}'
        )
        lines.append(
            f'{name}_sum{{stage="{stage}"}} {_format_value(histogram.sum)}'
        )
        lines.append(f'{name}_count{{stage="{stage}"}} {cumulative[-1]}')
    return lines


def render_exposition(
    counters: Mapping[str, int],
    stages: Mapping[str, Dict],
    spans: Mapping[str, int],
    effectiveness: Mapping[str, float],
    gauges: Optional[Mapping[str, float]] = None,
) -> str:
    """The full ``metrics`` op payload as Prometheus exposition text.

    ``counters`` are the engine work counters, ``stages`` maps stage
    name -> histogram wire form (engine stages plus serving pipeline
    stages), ``spans`` is the trace-span lifecycle accounting, and
    ``effectiveness`` the derived filtering gauges.  ``gauges`` carries
    extra server-level point-in-time values, already fully named.
    """
    lines: List[str] = []
    for name in sorted(counters):
        metric = f"repro_engine_{name}_total"
        lines.append(f"# HELP {metric} Engine work counter {name}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(int(counters[name]))}")
    metric = "repro_publish_spans_total"
    lines.append(
        f"# HELP {metric} Publish trace spans by lifecycle state."
    )
    lines.append(f"# TYPE {metric} counter")
    for state in sorted(spans):
        lines.append(
            f'{metric}{{state="{state}"}} {_format_value(int(spans[state]))}'
        )
    metric = "repro_filtering_effectiveness"
    lines.append(
        f"# HELP {metric} Derived filtering-effectiveness ratios "
        "(work avoided per unit of work done)."
    )
    lines.append(f"# TYPE {metric} gauge")
    for ratio in sorted(effectiveness):
        lines.append(
            f'{metric}{{ratio="{ratio}"}} '
            f"{_format_value(float(effectiveness[ratio]))}"
        )
    if gauges:
        for name in sorted(gauges):
            lines.append(f"# HELP {name} Serving runtime gauge.")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(gauges[name])}")
    lines.extend(
        render_histogram_family(
            "repro_stage_latency_seconds",
            "Per-stage publish pipeline latency.",
            stages,
        )
    )
    return "\n".join(lines) + "\n"
