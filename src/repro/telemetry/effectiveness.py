"""Filtering-effectiveness gauges derived from the engine work counters.

The paper's evaluation axis is *work avoided*: blocks skipped by the
group condition (Ineq. 11), candidates dismissed by the quick relevance
bound before any similarity arithmetic, and how many exact similarity
evaluations each delivered match ultimately cost.  These gauges are pure
functions of :class:`repro.metrics.instrumentation.Counters`, so they
are exact, deterministic, and identical whether the counters came from
one engine or were merged across shards/workers.

Every ratio degrades to ``0.0`` on a zero denominator (a fresh engine
reports all-zero effectiveness rather than NaN).
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

from repro.metrics.instrumentation import Counters

#: Gauges whose value is a proportion and must stay within [0, 1].
BOUNDED_RATIOS = (
    "blocks_skipped_ratio",
    "quick_rejection_ratio",
    "group_check_skip_ratio",
    "match_rate",
    "vectorized_batch_fraction",
    "flat_skip_fraction",
)


def _ratio(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else 0.0


def effectiveness_gauges(
    counters: Union[Counters, Mapping[str, int]],
) -> Dict[str, float]:
    """Derived filtering-effectiveness gauges, keyed by gauge name."""
    values = (
        counters.as_dict() if isinstance(counters, Counters) else counters
    )
    blocks_visited = values["blocks_visited"]
    blocks_skipped = values["blocks_skipped"]
    queries_evaluated = values["queries_evaluated"]
    return {
        # Share of candidate blocks the group condition skipped outright.
        "blocks_skipped_ratio": _ratio(
            blocks_skipped, blocks_visited + blocks_skipped
        ),
        # Share of evaluated queries dismissed by the quick bound alone.
        "quick_rejection_ratio": _ratio(
            values["quick_rejections"], queries_evaluated
        ),
        # Exact similarity evaluations paid per delivered match.
        "sim_evals_per_match": _ratio(
            values["sim_evaluations"], values["matches"]
        ),
        # Postings touched per published document (traversal cost).
        "postings_per_doc": _ratio(
            values["postings_visited"], values["docs_published"]
        ),
        # Share of group checks that resulted in a skip.
        "group_check_skip_ratio": _ratio(
            blocks_skipped, values["group_checks"]
        ),
        # Share of evaluated queries that produced a result update.
        "match_rate": _ratio(values["matches"], queries_evaluated),
        # Share of publish micro-batches the adaptive kernel layer
        # committed to the vectorised shape (``.get``: counter dicts
        # from checkpoints older than the columnar layout lack the
        # batch-mode counters, and must read as all-scalar, not crash).
        "vectorized_batch_fraction": _ratio(
            values.get("batches_vectorized", 0),
            values.get("batches_vectorized", 0)
            + values.get("batches_scalar", 0),
        ),
        # Share of skipped blocks resolved by the batch-wide flat
        # prefilter rather than the per-block scalar check (``.get``:
        # counters from checkpoints older than the flat mirror lack it).
        "flat_skip_fraction": _ratio(
            values.get("flat_skips", 0), blocks_skipped
        ),
    }
