"""Scale-out: query-sharded DAS processing across engine shards."""

from repro.distributed.sharded import ROUTING_POLICIES, ShardedDasEngine

__all__ = ["ROUTING_POLICIES", "ShardedDasEngine"]
