"""Query-sharded DAS processing (Section 2's scale-out note).

"In the case that the DAS queries cannot fit into memory, we can employ
our proposed solution on multiple servers, each handling a subset of DAS
queries independently."  This module simulates that deployment: N
independent engine shards, queries routed by a pluggable policy, every
document broadcast to all shards (each query lives on exactly one shard,
so per-query semantics are untouched — sharded results are *identical*
to a single engine's, which the tests assert).

Routing policies:

``round_robin``
    Evens out query counts — the default.
``hash``
    Stable assignment by query id, so a query's shard can be recomputed
    without a routing table.
``least_loaded``
    Tracks per-shard posting counts and assigns each new query to the
    currently lightest shard (useful when query keyword counts vary a
    lot).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.config import EngineConfig
from repro.core.engine import DasEngine
from repro.core.events import Notification
from repro.core.query import DasQuery
from repro.errors import DuplicateQueryError, UnknownQueryError
from repro.metrics.instrumentation import Counters
from repro.scoring.recency import CachedDecay
from repro.stream.document import Document
from repro.telemetry import Telemetry, merge_snapshots

ROUTING_POLICIES = ("round_robin", "hash", "least_loaded")


class ShardedDasEngine:
    """N independent DAS engine shards behind one engine-like facade."""

    def __init__(
        self,
        n_shards: int,
        config: Optional[EngineConfig] = None,
        routing: str = "round_robin",
        engine_factory: Optional[Callable[[], DasEngine]] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing {routing!r}; expected one of {ROUTING_POLICIES}"
            )
        if engine_factory is None:
            base_config = config if config is not None else EngineConfig()
            # One shared Telemetry across shards: a broadcast document is
            # one logical publish, but each shard contributes a span.
            engine_factory = lambda: DasEngine(  # noqa: E731
                base_config, telemetry=telemetry
            )
        self.shards: List[DasEngine] = [engine_factory() for _ in range(n_shards)]
        self.routing = routing
        self._assignment: Dict[int, int] = {}
        self._next_round_robin = 0
        #: One decay-power memo shared by all shards within a publish
        #: (broadcast shards see the same documents, hence the same age
        #: gaps).  ``False`` marks shards with differing decay bases,
        #: where sharing would be wrong; built lazily on first publish.
        self._shared_decay: object = None

    def _decay_memo(self) -> Optional[CachedDecay]:
        """The cross-shard decay memo, or None when shards disagree."""
        shared = self._shared_decay
        if shared is None:
            bases = {shard.decay.base for shard in self.shards}
            shared = (
                CachedDecay(self.shards[0].decay)
                if len(bases) == 1
                else False
            )
            self._shared_decay = shared
        return shared if shared is not False else None

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def query_count(self) -> int:
        return sum(shard.query_count for shard in self.shards)

    def shard_of(self, query_id: int) -> int:
        """Shard index currently hosting ``query_id``."""
        shard = self._assignment.get(query_id)
        if shard is None:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        return shard

    # -- routing -----------------------------------------------------------

    def _route(self, query: DasQuery) -> int:
        if self.routing == "round_robin":
            shard = self._next_round_robin
            self._next_round_robin = (shard + 1) % self.n_shards
            return shard
        if self.routing == "hash":
            return query.query_id % self.n_shards
        # least_loaded: fewest indexed postings right now.
        loads = [
            shard._index.posting_count for shard in self.shards
        ]
        return loads.index(min(loads))

    # -- engine facade -------------------------------------------------------

    def subscribe(self, query: DasQuery) -> List[Document]:
        if query.query_id in self._assignment:
            raise DuplicateQueryError(f"query {query.query_id} already subscribed")
        shard = self._route(query)
        initial = self.shards[shard].subscribe(query)
        self._assignment[query.query_id] = shard
        return initial

    def unsubscribe(self, query_id: int) -> None:
        shard = self.shard_of(query_id)
        self.shards[shard].unsubscribe(query_id)
        del self._assignment[query_id]

    def publish(self, document: Document) -> List[Notification]:
        """Broadcast the document to every shard; merge notifications.

        Each shard holds its own document store and collection
        statistics, mirroring independent servers that each consume the
        full stream.  One decay-power memo is shared across the shard
        calls — the N shards see the same document against the same age
        gaps, so re-deriving ``B^{-(t_cur - t_c)}`` per shard is pure
        waste (the memo is exact: each power is still computed once).
        """
        memo = self._decay_memo()
        if memo is not None:
            memo.clear()
        notifications: List[Notification] = []
        for shard in self.shards:
            notifications.extend(shard.publish(document, decay_cache=memo))
        return notifications

    def publish_batch(
        self, documents: Iterable[Document]
    ) -> List[Notification]:
        """Broadcast a micro-batch to every shard; merge in document order.

        Each shard runs its own :meth:`DasEngine.publish_batch_segmented`
        (keeping the per-shard batching amortisations), then the
        per-document segments are interleaved document-major /
        shard-minor, so the merged stream equals sequential
        :meth:`publish` calls exactly.  Segment boundaries — not
        "group by subject doc id" — carry the document attribution:
        strategy modes emit notifications whose subject is not the
        published document (window promotions).
        """
        docs = list(documents)
        if not docs:
            return []
        memo = self._decay_memo()
        if memo is not None:
            memo.clear()
        per_shard = [
            shard.publish_batch_segmented(docs, decay_cache=memo)
            for shard in self.shards
        ]
        merged: List[Notification] = []
        for position in range(len(docs)):
            for segments in per_shard:
                merged.extend(segments[position])
        return merged

    def results(self, query_id: int) -> List[Document]:
        return self.shards[self.shard_of(query_id)].results(query_id)

    def current_dr(self, query_id: int) -> float:
        return self.shards[self.shard_of(query_id)].current_dr(query_id)

    # -- observability -----------------------------------------------------------

    @property
    def counters(self) -> Counters:
        """Aggregated work counters across shards."""
        total = Counters()
        for shard in self.shards:
            total = total + shard.counters
        # docs_published is per-shard (broadcast); report logical docs.
        total.docs_published //= self.n_shards
        return total

    @property
    def telemetry(self) -> Optional[Telemetry]:
        """The first shard's telemetry (shards typically share one)."""
        return self.shards[0].telemetry

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Attach one shared telemetry instance to every shard."""
        for shard in self.shards:
            shard.attach_telemetry(telemetry)

    def telemetry_snapshot(self) -> Optional[Dict]:
        """Merged telemetry across shards, deduplicated by instance.

        Shards built by the default factory share one ``Telemetry``
        object; counting it once per shard would multiply every
        histogram by ``n_shards``.  Distinct instances (custom
        factories) merge normally.
        """
        seen: Dict[int, Dict] = {}
        for shard in self.shards:
            telemetry = shard.telemetry
            if telemetry is not None and id(telemetry) not in seen:
                seen[id(telemetry)] = telemetry.snapshot()
        if not seen:
            return None
        return merge_snapshots(seen.values())

    def shard_loads(self) -> List[Dict[str, int]]:
        """Per-shard load report: queries, postings, stored documents."""
        return [
            {
                "queries": shard.query_count,
                "postings": shard._index.posting_count,
                "documents": len(shard.store),
            }
            for shard in self.shards
        ]

    def imbalance(self) -> float:
        """Max/mean posting-count ratio across shards (1.0 = perfect)."""
        loads = [shard._index.posting_count for shard in self.shards]
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 1.0
        return max(loads) / mean
