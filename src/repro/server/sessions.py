"""Per-subscriber delivery sessions with bounded queues.

A :class:`SubscriberSession` is the server side of one subscriber
connection (TCP or in-process): it owns the subscriber's query ids and a
bounded outbound queue of protocol messages.  The matcher task *offers*
messages; the transport *pulls* them with :meth:`next_message`.

The queue bound is where slow consumers meet the matcher, and the
session's policy decides what gives (see
:data:`repro.config.SLOW_CONSUMER_POLICIES`): ``block`` applies
backpressure all the way to publishers, ``drop_oldest`` sheds the
stalest message, ``coalesce`` collapses queued updates into one
result-set snapshot per query, and ``disconnect`` kicks the consumer.
Drop/coalesce/disconnect counts are exact and surface in the runtime's
stats.

All methods run on the event-loop thread; no locks beyond the per-session
:class:`asyncio.Condition` are needed.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set

from repro.config import SLOW_CONSUMER_POLICIES
from repro.server.protocol import closed_payload

#: Queue entries are ``[query_id, payload]`` lists so a coalescing
#: session can swap the payload of a still-queued entry in place.
_QUERY = 0
_PAYLOAD = 1


class SubscriberSession:
    """One subscriber's delivery queue, policy, and query ownership."""

    def __init__(
        self,
        session_id: int,
        capacity: int,
        policy: str,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in SLOW_CONSUMER_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; expected one of "
                f"{SLOW_CONSUMER_POLICIES}"
            )
        self.session_id = session_id
        self.capacity = capacity
        self.policy = policy
        #: Query ids owned (subscribed) by this session.
        self.queries: Set[int] = set()
        #: Durable subscriber name this session resumed as (eventlog
        #: tier); None for anonymous sessions whose queries retire with
        #: the connection.
        self.subscriber: Optional[str] = None
        #: Highest event-log offset enqueued to this session (-1 = none).
        self.delivered_offset = -1
        #: Highest offset the client explicitly acked on this session.
        self.acked_offset = -1
        self._items: Deque[List[Any]] = deque()
        #: coalesce only: query id -> its still-queued entry.
        self._pending: Dict[int, List[Any]] = {}
        self._cond = asyncio.Condition()
        self.closed = False
        self.close_reason: Optional[str] = None
        self._close_delivered = False
        #: Simulation hook: a stalled session stops pulling messages, so
        #: its queue fills and the slow-consumer policy kicks in.  The
        #: matcher side (:meth:`offer`) is unaffected.
        self.stalled = False
        # -- exact accounting ------------------------------------------
        self.enqueued = 0
        self.delivered = 0
        self.dropped = 0
        self.coalesced = 0

    # -- matcher side -----------------------------------------------------

    async def offer(
        self, payload: Dict[str, Any], query_id: Optional[int] = None
    ) -> bool:
        """Enqueue one message under this session's policy.

        Returns False when the message was not enqueued because the
        session is (or just became) closed.  Only the ``block`` policy
        can suspend the caller.
        """
        async with self._cond:
            if self.closed:
                return False
            if self.policy == "coalesce" and query_id is not None:
                entry = self._pending.get(query_id)
                if entry is not None:
                    # Collapse onto the queued snapshot; its slot keeps
                    # the original queue position (oldest-update order).
                    payload = dict(payload)
                    payload["coalesced"] = (
                        entry[_PAYLOAD].get("coalesced", 0) + 1
                    )
                    entry[_PAYLOAD] = payload
                    self.coalesced += 1
                    self._cond.notify_all()
                    return True
            if len(self._items) >= self.capacity:
                if self.policy == "block":
                    while len(self._items) >= self.capacity and not self.closed:
                        await self._cond.wait()
                    if self.closed:
                        return False
                elif self.policy == "disconnect":
                    self._close_locked("slow_consumer")
                    return False
                else:  # drop_oldest, or coalesce over capacity
                    victim = self._items.popleft()
                    if victim[_QUERY] is not None:
                        self._pending.pop(victim[_QUERY], None)
                    self.dropped += 1
            entry = [query_id, payload]
            self._items.append(entry)
            if self.policy == "coalesce" and query_id is not None:
                self._pending[query_id] = entry
            self.enqueued += 1
            self._cond.notify_all()
            return True

    # -- transport side ---------------------------------------------------

    async def next_message(self) -> Optional[Dict[str, Any]]:
        """Pull the next message, waiting while the queue is empty.

        After the session closes, remaining queued messages are still
        delivered, followed by one ``{"op": "closed"}`` message, then
        ``None`` forever.
        """
        async with self._cond:
            while not self.closed and (self.stalled or not self._items):
                await self._cond.wait()
            if self._items:
                entry = self._items.popleft()
                if entry[_QUERY] is not None:
                    pending = self._pending.get(entry[_QUERY])
                    if pending is entry:
                        del self._pending[entry[_QUERY]]
                self.delivered += 1
                self._cond.notify_all()
                return entry[_PAYLOAD]
            if not self._close_delivered:
                self._close_delivered = True
                return closed_payload(self.close_reason or "closed")
            return None

    # -- lifecycle --------------------------------------------------------

    def _close_locked(self, reason: str) -> None:
        self.closed = True
        self.close_reason = reason
        self._cond.notify_all()

    async def close(self, reason: str = "closed") -> None:
        """Mark the session closed; wakes both producers and consumers."""
        async with self._cond:
            if not self.closed:
                self._close_locked(reason)

    async def set_stalled(self, stalled: bool) -> None:
        """Simulate a consumer stall (True) or wake it back up (False)."""
        async with self._cond:
            self.stalled = stalled
            if not stalled:
                self._cond.notify_all()

    async def drain(self, timeout: float) -> bool:
        """Wait until the consumer emptied the queue; False on timeout."""

        async def _empty() -> None:
            async with self._cond:
                while self._items:
                    await self._cond.wait()

        try:
            await asyncio.wait_for(_empty(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    # -- observability ----------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._items)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "session_id": self.session_id,
            "policy": self.policy,
            "capacity": self.capacity,
            "depth": self.depth,
            "queries": len(self.queries),
            "enqueued": self.enqueued,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "coalesced": self.coalesced,
            "closed": self.closed,
            "close_reason": self.close_reason,
            "stalled": self.stalled,
            "subscriber": self.subscriber,
            "delivered_offset": self.delivered_offset,
            "acked_offset": self.acked_offset,
        }

    def __repr__(self) -> str:
        state = f"closed:{self.close_reason}" if self.closed else "open"
        return (
            f"SubscriberSession(id={self.session_id}, policy={self.policy}, "
            f"depth={self.depth}/{self.capacity}, {state})"
        )
