"""Newline-delimited-JSON TCP transport (``asyncio.start_server``).

One connection = one subscriber session.  The client sends request lines
(`subscribe`/`unsubscribe`/`publish`/`results`/`stats`); the server
writes reply lines and, interleaved, pushes `notify`/`snapshot`/`closed`
lines from the session's delivery queue.  A per-connection write lock
keeps reply and push lines from interleaving mid-line.

Request dispatch, error replies, and slow-consumer behaviour all live in
:class:`~repro.server.runtime.ServerRuntime` and
:class:`~repro.server.sessions.SubscriberSession`; this module only does
framing and connection lifecycle.  :class:`NdjsonTcpClient` is the
reference client used by the tests, the README quickstart and the
``serve`` CLI's documentation.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import InjectedFaultError, ProtocolError
from repro.server.protocol import (
    decode_line,
    encode_line,
    error_reply,
    raise_for_reply,
)
from repro.server.runtime import ServerRuntime

#: Refuse request lines longer than this (protects the reader buffer).
MAX_LINE_BYTES = 1 << 20


class NdjsonTcpServer:
    """NDJSON TCP front-end for a :class:`ServerRuntime`."""

    def __init__(
        self,
        runtime: ServerRuntime,
        host: Optional[str] = None,
        port: Optional[int] = None,
        policy: Optional[str] = None,
        capacity: Optional[int] = None,
    ) -> None:
        self._runtime = runtime
        self._host = host if host is not None else runtime.config.host
        self._port = port if port is not None else runtime.config.port
        self._policy = policy
        self._capacity = capacity
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()
        self.address: Optional[Tuple[str, int]] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=MAX_LINE_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        """Stop listening and tear down the remaining connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        for task in list(self._connections):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._connections.clear()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- connection handling ----------------------------------------------

    async def _write_frame(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: Dict[str, Any],
    ) -> bool:
        """Write one NDJSON frame; False ends the caller's loop.

        The ``tcp.write`` injection point simulates a connection lost
        mid-frame: a ``torn`` fault flushes only half the frame before
        closing, any other injected fault closes without writing.
        """
        data = encode_line(payload)
        injector = self._runtime.config.fault_injector
        if injector is not None:
            try:
                injector.fire("tcp.write")
            except InjectedFaultError as exc:
                async with write_lock:
                    with _suppress_all():
                        if getattr(exc, "action", "") == "torn":
                            writer.write(data[: len(data) // 2])
                            await writer.drain()
                        writer.close()
                return False
        try:
            async with write_lock:
                writer.write(data)
                await writer.drain()
        except (ConnectionError, OSError, RuntimeError):
            # A peer that vanished mid-frame surfaces as ConnectionError,
            # a raw socket failure as OSError, and a write on an
            # already-closing transport as RuntimeError — all of them
            # mean "this connection is done", none may escape into the
            # caller's loop.
            return False
        return True

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            session = self._runtime.open_session(
                policy=self._policy, capacity=self._capacity
            )
        except Exception:
            # Runtime already draining/stopped: refuse the connection.
            with _suppress_all():
                writer.close()
                await writer.wait_closed()
            self._connections.discard(task)
            return
        write_lock = asyncio.Lock()
        pusher = asyncio.create_task(
            self._push_loop(session, writer, write_lock)
        )
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                    ConnectionError,
                    OSError,
                ):
                    break
                except asyncio.CancelledError:
                    # Server stop(): end the connection quietly; teardown
                    # happens in the finally block.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    payload = decode_line(line)
                except ProtocolError as exc:
                    reply = error_reply(exc)
                else:
                    try:
                        reply = await self._runtime.handle_request(
                            session, payload
                        )
                    except Exception as exc:
                        # handle_request converts ReproError itself; an
                        # unexpected exception must still produce an
                        # error frame instead of killing the connection
                        # (and leaking the session) silently.
                        reply = error_reply(exc)
                if not await self._write_frame(writer, write_lock, reply):
                    break
        finally:
            try:
                await self._runtime.close_session(session)
            except (Exception, asyncio.CancelledError):
                pass
            pusher.cancel()
            with _suppress_all():
                await pusher
            with _suppress_all():
                writer.close()
                await writer.wait_closed()
            self._connections.discard(task)

    async def _push_loop(
        self,
        session,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        """Forward session pushes to the socket until the session ends.

        On exit the transport is closed: when a push write fails on a
        half-closed socket, the reader side of the connection may still
        be blocked in ``readline`` on a peer that will never send again.
        Closing the transport forces that read to EOF, so the
        connection handler retires the session — otherwise the session
        leaks and, under the ``block`` policy, the matcher can wedge
        forever on a delivery queue nobody drains.
        """
        try:
            while True:
                message = await session.next_message()
                if message is None:
                    break
                if not await self._write_frame(writer, write_lock, message):
                    break
        finally:
            with _suppress_all():
                writer.close()


class _suppress_all:
    """``contextlib.suppress`` for connection teardown (any error)."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return True


class NdjsonTcpClient:
    """Reference NDJSON client: request/reply plus a push mailbox.

    Usage::

        client = await NdjsonTcpClient.connect("127.0.0.1", 8765)
        reply = await client.subscribe(["coffee", "espresso"])
        await client.publish(text="fresh espresso downtown")
        note = await client.next_message(timeout=5.0)  # {"op": "notify", ...}
        await client.close()

    With ``reconnect=True`` a dropped connection is re-dialled with
    bounded exponential backoff plus jitter; requests in flight when the
    connection died fail with :class:`ConnectionError` (the caller
    decides whether to retry — the cluster coordinator replays from its
    journal instead), requests issued while disconnected wait for the
    new connection.  Tracked subscriptions are re-issued after a
    successful reconnect; because the server assigns fresh query ids,
    the old->new mapping is exposed as ``resubscriptions`` and the
    ``reconnects``/``resubscribed`` counters in
    :meth:`connection_stats`.

    The resubscribe path is inherently lossy: fresh query ids, and every
    notification generated during the outage is gone.  Against a server
    running the durability tier, pass ``subscriber="name"`` (or call
    :meth:`resume` once) instead: after each reconnect the client issues
    a ``resume`` carrying the highest event-log offset it has seen, the
    server re-attaches the *same* query ids, and the retained
    notifications from the outage window are replayed in order — no loss
    and no duplicates.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        host: Optional[str] = None,
        port: Optional[int] = None,
        reconnect: bool = False,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        max_retries: int = 6,
        jitter_seed: int = 0,
        subscriber: Optional[str] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._host = host
        self._port = port
        self._reconnect = reconnect and host is not None
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self._max_retries = max_retries
        self._jitter = random.Random(jitter_seed)
        self._closed = False
        self._connected = asyncio.Event()
        self._connected.set()
        self._next_request_id = 0
        self._pending: Dict[int, asyncio.Future] = {}
        self._messages: asyncio.Queue = asyncio.Queue()
        #: query_id -> the subscribe payload that created it (re-issued
        #: verbatim after a reconnect).
        self._subscriptions: Dict[int, Dict[str, Any]] = {}
        self._resub_task: Optional[asyncio.Task] = None
        #: Durable subscriber identity; set via the option or resume().
        self._subscriber = subscriber
        #: Highest event-log offset observed on any push or resume reply.
        self.last_offset = -1
        self.reconnects = 0
        self.resubscribed = 0
        self.resumed = 0
        self.resubscriptions: Dict[int, int] = {}
        self._reader_task = asyncio.create_task(self._read_loop())
        if subscriber is not None:
            # Attach on first use: the initial resume rides the same
            # task machinery as the post-reconnect ones.
            self._resub_task = asyncio.create_task(
                self._resume_after_reconnect()
            )

    @classmethod
    async def connect(
        cls, host: str, port: int, **options: Any
    ) -> "NdjsonTcpClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        return cls(reader, writer, host=host, port=port, **options)

    async def _read_line(self) -> bytes:
        """One line from the current reader; connection failures are EOF."""
        try:
            return await self._reader.readline()
        except (
            ConnectionError,
            OSError,
            ValueError,
            asyncio.LimitOverrunError,
            asyncio.IncompleteReadError,
        ):
            return b""

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._read_line()
                if not line:
                    if await self._handle_disconnect():
                        continue
                    break
                try:
                    payload = decode_line(line)
                except ProtocolError:
                    continue
                if "ok" in payload:
                    future = self._pending.pop(payload.get("reply_to"), None)
                    if future is not None and not future.done():
                        future.set_result(payload)
                else:
                    offset = payload.get("offset")
                    if isinstance(offset, int) and offset > self.last_offset:
                        self.last_offset = offset
                    await self._messages.put(payload)
        finally:
            self._connected.set()
            await self._messages.put(None)
            self._fail_pending(
                ConnectionError("server closed the connection")
            )

    def _fail_pending(self, exc: Exception) -> None:
        pending = list(self._pending.values())
        self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(exc)

    async def _handle_disconnect(self) -> bool:
        """Re-dial after a dropped connection; True resumes the read loop.

        In-flight requests fail immediately (their replies are lost with
        the old connection); new requests block on ``_connected`` until
        the dial succeeds.  Backoff is ``base * 2**attempt`` capped at
        ``backoff_max``, scaled by a deterministic jitter factor in
        ``[0.5, 1.5)`` so a fleet of clients does not re-dial in
        lockstep.
        """
        self._fail_pending(ConnectionError("connection lost"))
        if self._closed or not self._reconnect:
            return False
        self._connected.clear()
        for attempt in range(self._max_retries):
            delay = min(self._backoff_max, self._backoff_base * (2 ** attempt))
            await asyncio.sleep(delay * (0.5 + self._jitter.random()))
            if self._closed:
                break
            try:
                reader, writer = await asyncio.open_connection(
                    self._host, self._port, limit=MAX_LINE_BYTES
                )
            except OSError:
                continue
            with _suppress_all():
                self._writer.close()
            self._reader = reader
            self._writer = writer
            self.reconnects += 1
            self._connected.set()
            if self._subscriber is not None:
                # Durable identity: splice the stream back together via
                # resume instead of lossy fresh-id resubscription.
                self._resub_task = asyncio.create_task(
                    self._resume_after_reconnect()
                )
            elif self._subscriptions:
                self._resub_task = asyncio.create_task(self._resubscribe())
            return True
        # Retries exhausted: give up for good.  Waking the waiters is
        # mandatory — request() re-checks _closed after the wait.
        self._closed = True
        self._connected.set()
        return False

    async def _resume_after_reconnect(self) -> None:
        """Re-attach the durable subscriber on the fresh connection.

        Carries ``last_offset`` so the server acks everything already
        seen and replays exactly the outage window — the notification
        stream continues with the original query ids, gap- and
        duplicate-free.
        """
        try:
            await self.resume(self._subscriber)
        except Exception:
            # Connection dropped again or the server refused; the next
            # reconnect pass retries.
            return

    async def _resubscribe(self) -> None:
        """Re-issue tracked subscriptions on the fresh connection."""
        for old_id, payload in list(self._subscriptions.items()):
            try:
                reply = await self.request(dict(payload))
            except Exception:
                # The connection dropped again (or the server refused);
                # the next reconnect pass picks up where this one left.
                return
            new_id = reply["query_id"]
            self._subscriptions.pop(old_id, None)
            self._subscriptions[new_id] = payload
            self.resubscriptions[old_id] = new_id
            self.resubscribed += 1

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        while True:
            if self._reconnect:
                await self._connected.wait()
            if self._closed:
                raise ConnectionError("client is closed")
            request_id = self._next_request_id
            self._next_request_id += 1
            framed = dict(payload)
            framed["id"] = request_id
            future = asyncio.get_running_loop().create_future()
            self._pending[request_id] = future
            try:
                self._writer.write(encode_line(framed))
                await self._writer.drain()
            except (ConnectionError, OSError, RuntimeError) as exc:
                self._pending.pop(request_id, None)
                if self._reconnect and not self._closed:
                    # The transport died under us before the reader
                    # noticed.  The line never completed, so resending
                    # after the dial-out cannot double-apply.
                    await asyncio.sleep(0.01)
                    continue
                raise ConnectionError(f"write failed: {exc}") from None
            reply = await future
            return raise_for_reply(reply)

    def connection_stats(self) -> Dict[str, Any]:
        """Reconnect/resubscribe accounting for stats surfaces."""
        return {
            "reconnects": self.reconnects,
            "resubscribed": self.resubscribed,
            "resubscriptions": dict(self.resubscriptions),
            "connected": self._connected.is_set() and not self._closed,
            "closed": self._closed,
            "tracked_subscriptions": len(self._subscriptions),
            "subscriber": self._subscriber,
            "resumed": self.resumed,
            "last_offset": self.last_offset,
        }

    def abort_connection(self) -> None:
        """Drop the live transport without closing the client.

        Chaos-harness hook: to a reconnecting client this is exactly a
        network partition — the reader hits EOF, pending requests fail
        with ``ConnectionError``, and the backoff dial-out takes over.
        """
        with _suppress_all():
            self._writer.close()

    # -- ops --------------------------------------------------------------

    async def subscribe(
        self,
        keywords: Optional[Iterable[str]] = None,
        text: Optional[str] = None,
        location: Optional[Sequence[float]] = None,
        window: Optional[int] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "subscribe"}
        if keywords is not None:
            payload["keywords"] = list(keywords)
        if text is not None:
            payload["text"] = text
        if location is not None:
            payload["location"] = list(location)
        if window is not None:
            payload["window"] = window
        reply = await self.request(dict(payload))
        self._subscriptions[reply["query_id"]] = payload
        return reply

    async def unsubscribe(self, query_id: int) -> Dict[str, Any]:
        reply = await self.request(
            {"op": "unsubscribe", "query_id": query_id}
        )
        self._subscriptions.pop(query_id, None)
        return reply

    async def publish(
        self,
        tokens: Optional[Sequence[str]] = None,
        text: Optional[str] = None,
        created_at: Optional[float] = None,
        location: Optional[Sequence[float]] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "publish"}
        if tokens is not None:
            payload["tokens"] = list(tokens)
        if text is not None:
            payload["text"] = text
        if created_at is not None:
            payload["created_at"] = created_at
        if location is not None:
            payload["location"] = list(location)
        return await self.request(payload)

    async def resume(
        self, subscriber: str, offset: Optional[int] = None
    ) -> Dict[str, Any]:
        """Attach this connection to a durable subscriber identity.

        ``offset`` defaults to the highest offset this client has seen
        (acking it server-side); pass ``-1`` to replay every retained
        notification instead.
        """
        if offset is None and self.last_offset >= 0:
            offset = self.last_offset
        payload: Dict[str, Any] = {"op": "resume", "subscriber": subscriber}
        if offset is not None and offset >= 0:
            payload["offset"] = offset
        reply = await self.request(payload)
        self._subscriber = subscriber
        self.resumed += 1
        return reply

    async def ack(self, offset: Optional[int] = None) -> Dict[str, Any]:
        """Confirm delivery up to ``offset`` (default: all seen)."""
        if offset is None:
            offset = self.last_offset
        return await self.request({"op": "ack", "offset": int(offset)})

    async def dlq(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """Inspect the server's dead-letter queue."""
        payload: Dict[str, Any] = {"op": "dlq"}
        if limit is not None:
            payload["limit"] = limit
        return await self.request(payload)

    async def results(self, query_id: int) -> List[Dict[str, Any]]:
        reply = await self.request({"op": "results", "query_id": query_id})
        return reply["results"]

    async def stats(self) -> Dict[str, Any]:
        reply = await self.request({"op": "stats"})
        return reply["stats"]

    async def metrics(self) -> str:
        """Prometheus text exposition of the server's telemetry."""
        reply = await self.request({"op": "metrics"})
        return reply["metrics"]

    async def send_raw(self, data: bytes) -> None:
        """Write raw bytes (tests use this for malformed lines)."""
        self._writer.write(data)
        await self._writer.drain()

    async def next_message(
        self, timeout: Optional[float] = None
    ) -> Optional[Dict[str, Any]]:
        """Next pushed message, or None once the connection ended."""
        if timeout is None:
            return await self._messages.get()
        return await asyncio.wait_for(self._messages.get(), timeout)

    async def close(self) -> None:
        self._closed = True
        if self._resub_task is not None:
            self._resub_task.cancel()
            with _suppress_all():
                await self._resub_task
        self._reader_task.cancel()
        with _suppress_all():
            await self._reader_task
        with _suppress_all():
            self._writer.close()
            await self._writer.wait_closed()
