"""Newline-delimited-JSON TCP transport (``asyncio.start_server``).

One connection = one subscriber session.  The client sends request lines
(`subscribe`/`unsubscribe`/`publish`/`results`/`stats`); the server
writes reply lines and, interleaved, pushes `notify`/`snapshot`/`closed`
lines from the session's delivery queue.  A per-connection write lock
keeps reply and push lines from interleaving mid-line.

Request dispatch, error replies, and slow-consumer behaviour all live in
:class:`~repro.server.runtime.ServerRuntime` and
:class:`~repro.server.sessions.SubscriberSession`; this module only does
framing and connection lifecycle.  :class:`NdjsonTcpClient` is the
reference client used by the tests, the README quickstart and the
``serve`` CLI's documentation.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import InjectedFaultError, ProtocolError
from repro.server.protocol import (
    decode_line,
    encode_line,
    error_reply,
    raise_for_reply,
)
from repro.server.runtime import ServerRuntime

#: Refuse request lines longer than this (protects the reader buffer).
MAX_LINE_BYTES = 1 << 20


class NdjsonTcpServer:
    """NDJSON TCP front-end for a :class:`ServerRuntime`."""

    def __init__(
        self,
        runtime: ServerRuntime,
        host: Optional[str] = None,
        port: Optional[int] = None,
        policy: Optional[str] = None,
        capacity: Optional[int] = None,
    ) -> None:
        self._runtime = runtime
        self._host = host if host is not None else runtime.config.host
        self._port = port if port is not None else runtime.config.port
        self._policy = policy
        self._capacity = capacity
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()
        self.address: Optional[Tuple[str, int]] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=MAX_LINE_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        """Stop listening and tear down the remaining connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        for task in list(self._connections):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._connections.clear()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- connection handling ----------------------------------------------

    async def _write_frame(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: Dict[str, Any],
    ) -> bool:
        """Write one NDJSON frame; False ends the caller's loop.

        The ``tcp.write`` injection point simulates a connection lost
        mid-frame: a ``torn`` fault flushes only half the frame before
        closing, any other injected fault closes without writing.
        """
        data = encode_line(payload)
        injector = self._runtime.config.fault_injector
        if injector is not None:
            try:
                injector.fire("tcp.write")
            except InjectedFaultError as exc:
                async with write_lock:
                    with _suppress_all():
                        if getattr(exc, "action", "") == "torn":
                            writer.write(data[: len(data) // 2])
                            await writer.drain()
                        writer.close()
                return False
        try:
            async with write_lock:
                writer.write(data)
                await writer.drain()
        except ConnectionError:
            return False
        return True

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            session = self._runtime.open_session(
                policy=self._policy, capacity=self._capacity
            )
        except Exception:
            # Runtime already draining/stopped: refuse the connection.
            with _suppress_all():
                writer.close()
                await writer.wait_closed()
            self._connections.discard(task)
            return
        write_lock = asyncio.Lock()
        pusher = asyncio.create_task(
            self._push_loop(session, writer, write_lock)
        )
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                    ConnectionError,
                ):
                    break
                except asyncio.CancelledError:
                    # Server stop(): end the connection quietly; teardown
                    # happens in the finally block.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    payload = decode_line(line)
                except ProtocolError as exc:
                    reply = error_reply(exc)
                else:
                    reply = await self._runtime.handle_request(
                        session, payload
                    )
                if not await self._write_frame(writer, write_lock, reply):
                    break
        finally:
            try:
                await self._runtime.close_session(session)
            except (Exception, asyncio.CancelledError):
                pass
            pusher.cancel()
            with _suppress_all():
                await pusher
            with _suppress_all():
                writer.close()
                await writer.wait_closed()
            self._connections.discard(task)

    async def _push_loop(
        self,
        session,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        """Forward session pushes to the socket until the session ends."""
        while True:
            message = await session.next_message()
            if message is None:
                break
            if not await self._write_frame(writer, write_lock, message):
                break


class _suppress_all:
    """``contextlib.suppress`` for connection teardown (any error)."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return True


class NdjsonTcpClient:
    """Reference NDJSON client: request/reply plus a push mailbox.

    Usage::

        client = await NdjsonTcpClient.connect("127.0.0.1", 8765)
        reply = await client.subscribe(["coffee", "espresso"])
        await client.publish(text="fresh espresso downtown")
        note = await client.next_message(timeout=5.0)  # {"op": "notify", ...}
        await client.close()
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_request_id = 0
        self._pending: Dict[int, asyncio.Future] = {}
        self._messages: asyncio.Queue = asyncio.Queue()
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "NdjsonTcpClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    payload = decode_line(line)
                except ProtocolError:
                    continue
                if "ok" in payload:
                    future = self._pending.pop(payload.get("reply_to"), None)
                    if future is not None and not future.done():
                        future.set_result(payload)
                else:
                    await self._messages.put(payload)
        finally:
            await self._messages.put(None)
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("server closed the connection")
                    )
            self._pending.clear()

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        request_id = self._next_request_id
        self._next_request_id += 1
        payload = dict(payload)
        payload["id"] = request_id
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_line(payload))
        await self._writer.drain()
        reply = await future
        return raise_for_reply(reply)

    # -- ops --------------------------------------------------------------

    async def subscribe(
        self,
        keywords: Optional[Iterable[str]] = None,
        text: Optional[str] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "subscribe"}
        if keywords is not None:
            payload["keywords"] = list(keywords)
        if text is not None:
            payload["text"] = text
        return await self.request(payload)

    async def unsubscribe(self, query_id: int) -> Dict[str, Any]:
        return await self.request(
            {"op": "unsubscribe", "query_id": query_id}
        )

    async def publish(
        self,
        tokens: Optional[Sequence[str]] = None,
        text: Optional[str] = None,
        created_at: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "publish"}
        if tokens is not None:
            payload["tokens"] = list(tokens)
        if text is not None:
            payload["text"] = text
        if created_at is not None:
            payload["created_at"] = created_at
        return await self.request(payload)

    async def results(self, query_id: int) -> List[Dict[str, Any]]:
        reply = await self.request({"op": "results", "query_id": query_id})
        return reply["results"]

    async def stats(self) -> Dict[str, Any]:
        reply = await self.request({"op": "stats"})
        return reply["stats"]

    async def metrics(self) -> str:
        """Prometheus text exposition of the server's telemetry."""
        reply = await self.request({"op": "metrics"})
        return reply["metrics"]

    async def send_raw(self, data: bytes) -> None:
        """Write raw bytes (tests use this for malformed lines)."""
        self._writer.write(data)
        await self._writer.drain()

    async def next_message(
        self, timeout: Optional[float] = None
    ) -> Optional[Dict[str, Any]]:
        """Next pushed message, or None once the connection ended."""
        if timeout is None:
            return await self._messages.get()
        return await asyncio.wait_for(self._messages.get(), timeout)

    async def close(self) -> None:
        self._reader_task.cancel()
        with _suppress_all():
            await self._reader_task
        with _suppress_all():
            self._writer.close()
            await self._writer.wait_closed()
