"""The asyncio serving runtime: ingestion pipeline + fan-out delivery.

Architecture (one event loop, one matcher):

::

    publishers --await put--> [bounded ingest queue] --> matcher task
                                                           |  adaptive micro-batch
                                                           v  (run_in_executor)
                                                     engine.publish_batch
                                                           |
                              per-subscriber sessions <----+  route notifications
                              (bounded, slow-consumer policy)

Every engine operation — subscribe, unsubscribe, publish, results — flows
through the single ingestion queue and is executed by the single matcher
task, so the engine only ever sees one call at a time and the dequeue
order *is* the accepted serialization: under any interleaving of
concurrent publishers, each subscriber observes exactly the notification
subsequence of one sequential publish order (the order acknowledged ids
were assigned).  Engine calls run on a one-thread executor so the event
loop keeps accepting requests and feeding consumers while a batch
matches.

Control operations act as batch barriers: the matcher flushes the
publish batch it is coalescing before executing them, which gives
read-your-writes semantics to ``results`` and makes subscriptions take
effect at a well-defined point of the accepted order.

Shutdown (``stop(drain=True)``) stops accepting new work, lets the
matcher flush everything already accepted, then flushes delivery queues
against ``ServerConfig.drain_timeout`` — under the ``block`` policy every
accepted document's notifications reach their consumers (no loss).

With ``ServerConfig.eventlog_dir`` set, the runtime gains the durability
tier (DESIGN.md §14): every accepted op is appended to a write-ahead
:class:`repro.eventlog.EventLog` *before* the engine matches it, start
recovers from the newest checkpoint plus a log replay, durable
subscribers catch up over outages via the ``resume``/``ack`` ops,
undeliverable notifications land in a dead-letter queue, and per-session
token buckets throttle hot publishers.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import suppress
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import SLOW_CONSUMER_POLICIES, ServerConfig
from repro.core.engine import DasEngine
from repro.core.events import Notification
from repro.core.query import DasQuery
from repro.distributed.sharded import ShardedDasEngine
from repro.errors import (
    ConfigurationError,
    ReplicationError,
    ReproError,
    ServerClosedError,
    UnknownQueryError,
)
from repro.eventlog import (
    DeadLetterQueue,
    SubscriberRegistry,
    TokenBucket,
    ack_record,
    publish_record,
    recover,
    subscribe_record,
    unsubscribe_record,
    write_checkpoint,
)
from repro.metrics.instrumentation import Counters
from repro.persistence.checkpoint import engine_checkpoint, restore_payload
from repro.persistence.journal import validate_entry
from repro.pubsub.service import PublishSubscribeService
from repro.server.batching import AdaptiveBatcher
from repro.server.protocol import (
    document_from_payload,
    document_payload,
    error_reply,
    notification_payload,
    ok_reply,
    parse_request,
    snapshot_payload,
)
from repro.server.sessions import SubscriberSession
from repro.stream.document import Document
from repro.telemetry import (
    PIPELINE_STAGES,
    LatencyHistogram,
    Telemetry,
    effectiveness_gauges,
    empty_snapshot,
    render_exposition,
)

#: Sentinel queued by ``stop`` after the last accepted item (FIFO puts
#: guarantee nothing lands behind it once submissions are rejected).
_STOP = object()


class _PublishItem:
    __slots__ = (
        "tokens",
        "text",
        "created_at",
        "location",
        "future",
        "enqueued_at",
    )

    def __init__(
        self, tokens, text, created_at, future, enqueued_at=0.0, location=None
    ) -> None:
        self.tokens = tokens
        self.text = text
        self.created_at = created_at
        self.location = location
        self.future = future
        #: Runtime clock reading at ingest-queue admission; the matcher
        #: observes ``dequeue - enqueued_at`` as ingest-queue wait.
        self.enqueued_at = enqueued_at


class _ControlItem:
    __slots__ = ("kind", "session", "args", "future")

    def __init__(self, kind, session, args, future) -> None:
        self.kind = kind
        self.session = session
        self.args = args
        self.future = future


class EngineFacade:
    """Uniform engine-like facade over the three wrappable shapes.

    Normalises :class:`DasEngine`, :class:`ShardedDasEngine` and
    :class:`PublishSubscribeService` to the five calls the matcher needs.
    All engine-touching methods run on the runtime's executor thread.
    """

    def __init__(self, engine: object) -> None:
        self._engine = engine
        self._is_service = isinstance(engine, PublishSubscribeService)
        self._next_query_id = self._query_floor()

    @property
    def engine(self) -> object:
        return self._engine

    def _shards(self) -> Sequence[DasEngine]:
        if isinstance(self._engine, ShardedDasEngine):
            return self._engine.shards
        if self._is_service:
            return [self._engine.engine]
        return [self._engine]

    def _query_floor(self) -> int:
        # Engines living out-of-process (ParallelShardedEngine) expose
        # explicit floor hooks; in-process shapes are introspected.
        floor = getattr(self._engine, "query_id_floor", None)
        if floor is not None:
            return floor()
        if isinstance(self._engine, ShardedDasEngine):
            assignment = self._engine._assignment
            return max(assignment) + 1 if assignment else 0
        engine = self._engine.engine if self._is_service else self._engine
        last = getattr(engine, "_last_query_id", None)
        return 0 if last is None else last + 1

    def doc_id_floor(self) -> int:
        floor = getattr(self._engine, "doc_id_floor", None)
        if floor is not None:
            return floor()
        floors = []
        for shard in self._shards():
            last = getattr(shard.store, "_last_id", None)
            floors.append(0 if last is None else last + 1)
        return max(floors) if floors else 0

    def clock_now(self) -> float:
        now = getattr(self._engine, "clock_now", None)
        if now is not None:
            return now()
        return self._shards()[0].clock.now

    def subscribe(
        self,
        keywords: Iterable[str],
        location: Optional[Tuple[float, float]] = None,
        window: Optional[int] = None,
    ) -> Tuple[int, List[Document]]:
        if self._is_service:
            if location is not None or window is not None:
                raise ReproError(
                    "subscribe options (location/window) are not supported "
                    "for PublishSubscribeService engines"
                )
            subscription = self._engine.subscribe(list(keywords))
            query_id = subscription.query_id
            return query_id, self._engine.results(query_id)
        query_id = max(self._next_query_id, self._query_floor())
        initial = self._engine.subscribe(
            DasQuery(query_id, keywords, location=location, window=window)
        )
        self._next_query_id = query_id + 1
        return query_id, initial

    def next_query_id(self) -> int:
        """The id the next subscribe will be assigned (without taking it).

        The eventlog tier appends the subscribe record — which must name
        the query id — *before* the engine call, so the matcher peeks
        the id here and registers it via :meth:`subscribe_as`.
        """
        return max(self._next_query_id, self._query_floor())

    def subscribe_as(
        self,
        query_id: int,
        keywords: Iterable[str],
        location: Optional[Tuple[float, float]] = None,
        window: Optional[int] = None,
    ) -> List[Document]:
        """Subscribe under an externally assigned id (journal replay).

        The cluster tier assigns query ids coordinator-side so every
        replica registers the same query under the same id; the local
        auto-id floor is bumped past it so direct subscribes on the
        same node never collide.
        """
        if self._is_service:
            raise ReproError(
                "replicate is not supported for PublishSubscribeService engines"
            )
        initial = self._engine.subscribe(
            DasQuery(int(query_id), keywords, location=location, window=window)
        )
        self._next_query_id = max(self._next_query_id, int(query_id) + 1)
        return initial

    def replace_engine(self, engine: object) -> None:
        """Swap in a restored engine (checkpoint handoff)."""
        self._engine = engine
        self._is_service = isinstance(engine, PublishSubscribeService)
        self._next_query_id = self._query_floor()

    def unsubscribe(self, query_id: int) -> None:
        self._engine.unsubscribe(query_id)

    def publish_batch(
        self, documents: Sequence[Document]
    ) -> List[Notification]:
        return self._engine.publish_batch(documents)

    def results(self, query_id: int) -> List[Document]:
        return self._engine.results(query_id)

    def counters(self) -> Counters:
        if self._is_service:
            return self._engine.engine.counters
        return self._engine.counters

    def _telemetry_owner(self) -> object:
        """The object carrying telemetry (the service wraps its engine)."""
        return self._engine.engine if self._is_service else self._engine

    def ensure_telemetry(self) -> None:
        """Attach a default wall-clock telemetry if the engine has none.

        No-op for engines that already carry one (e.g. the simulation
        harness wires a deterministic clock before starting the runtime)
        and for shapes without an ``attach_telemetry`` hook (parallel
        workers create their own telemetry in-process).
        """
        owner = self._telemetry_owner()
        attach = getattr(owner, "attach_telemetry", None)
        if attach is not None and getattr(owner, "telemetry", None) is None:
            attach(Telemetry())

    def telemetry_snapshot(self) -> Optional[Dict]:
        owner = self._telemetry_owner()
        snapshot = getattr(owner, "telemetry_snapshot", None)
        return snapshot() if snapshot is not None else None


class ServerRuntime:
    """Async serving runtime around any engine-like object."""

    def __init__(
        self, engine: object, config: Optional[ServerConfig] = None
    ) -> None:
        self._config = config if config is not None else ServerConfig()
        self._owns_engine = False
        if self._config.parallel_workers > 1:
            engine = self._parallelize(engine, self._config.parallel_workers)
        self._facade = EngineFacade(engine)
        self._batcher = AdaptiveBatcher(self._config.max_batch_size)
        self._now = self._config.time_source or time.time
        self._injector = self._config.fault_injector
        self._state = "new"
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ingest: Optional[asyncio.Queue] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._matcher_task: Optional[asyncio.Task] = None
        self._sessions: Dict[int, SubscriberSession] = {}
        self._owners: Dict[int, SubscriberSession] = {}
        self._next_session_id = 0
        self._next_doc_id = 0
        self._last_created_at = 0.0
        self._inflight: List[object] = []
        self._accepted = 0
        self._published = 0
        self._disconnects = 0
        self._matcher_errors = 0
        self._delivery_errors = 0
        self._failed_on_stop = 0
        self._unflushed = 0
        #: Cluster-tier replica bookkeeping: offset of the next journal
        #: entry this node expects via ``replicate`` (DESIGN.md §13).
        self._replica_offset = 0
        self._replicated_entries = 0
        self._handoffs = 0
        self._retired_drops = {policy: 0 for policy in SLOW_CONSUMER_POLICIES}
        self._retired_coalesced = 0
        # -- durability tier (None unless eventlog_dir is configured) --
        self._eventlog = None
        self._dlq: Optional[DeadLetterQueue] = None
        self._registry: Optional[SubscriberRegistry] = None
        #: query_id -> durable subscriber name (survives detach; the
        #: live ``_owners`` mapping only covers attached sessions).
        self._durable_owners: Dict[int, str] = {}
        self._checkpoint_offset = -1
        self._appended_since_checkpoint = 0
        self._checkpoints_written = 0
        self._checkpoint_errors = 0
        self._recovery: Optional[Dict[str, Any]] = None
        #: session_id -> publish token bucket (throttle_rate > 0 only).
        self._buckets: Dict[int, TokenBucket] = {}
        self._throttled_publishes = 0
        self._throttle_waited = 0.0
        #: Serving-pipeline stage histograms (engine stages live in the
        #: engine's Telemetry; merged into one surface by stats()).
        self._pipeline = {
            stage: LatencyHistogram() for stage in PIPELINE_STAGES
        }

    def _parallelize(self, engine: object, n_workers: int) -> object:
        """Honour ``ServerConfig.parallel_workers``: move a fresh engine
        into shard worker processes.

        Only a fresh :class:`DasEngine` can be wrapped here (live state
        is not shipped to workers; bring a checkpoint back up with
        :meth:`repro.parallel.ParallelShardedEngine.from_checkpoint`
        instead).  An engine that is already parallel is used as-is.
        The runtime owns wrapped workers and stops them on ``stop()``.
        """
        from repro.parallel import ParallelShardedEngine

        if isinstance(engine, ParallelShardedEngine):
            return engine
        if (
            not isinstance(engine, DasEngine)
            or engine.query_count
            or len(engine.store)
        ):
            raise ConfigurationError(
                "parallel_workers requires a fresh DasEngine "
                "(or pass a ParallelShardedEngine directly)"
            )
        parallel = ParallelShardedEngine(n_workers, engine.config)
        self._owns_engine = True
        return parallel

    # -- introspection ----------------------------------------------------

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def engine(self) -> object:
        return self._facade.engine

    @property
    def state(self) -> str:
        return self._state

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        if self._state != "new":
            raise ServerClosedError(f"runtime already {self._state}")
        self._loop = asyncio.get_running_loop()
        self._ingest = asyncio.Queue(self._config.ingest_capacity)
        if not self._config.inline_matcher:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-matcher"
            )
        if self._config.eventlog_dir is not None:
            self._open_eventlog()
        self._next_doc_id = self._facade.doc_id_floor()
        self._last_created_at = self._facade.clock_now()
        self._facade.ensure_telemetry()
        self._matcher_task = asyncio.create_task(self._matcher_loop())
        self._state = "running"

    def _open_eventlog(self) -> None:
        """Open (and recover from) the configured event-log directory.

        Runs once in ``start`` before the matcher exists, so recovery
        replay is the first thing the engine sees.  When the directory
        holds a checkpoint, the engine restored from it *replaces* the
        fresh one this runtime was constructed with.
        """
        config = self._config
        if isinstance(self._facade.engine, PublishSubscribeService):
            raise ConfigurationError(
                "eventlog_dir is not supported for PublishSubscribeService "
                "engines (no externally assigned query ids)"
            )
        os.makedirs(config.eventlog_dir, exist_ok=True)
        self._dlq = DeadLetterQueue(
            config.eventlog_dir, fsync=config.eventlog_fsync
        )
        registry = SubscriberRegistry(
            outbox_capacity=config.outbox_capacity,
            max_attempts=config.dlq_max_attempts,
            dlq=self._dlq,
        )
        provided = self._facade.engine
        fresh = (
            self._facade.next_query_id() == 0
            and self._facade.doc_id_floor() == 0
        )
        state = recover(
            config.eventlog_dir,
            provided,
            registry=registry,
            fsync=config.eventlog_fsync,
            segment_entries=config.eventlog_segment_entries,
            parallel=config.parallel_workers > 1,
            injector=self._injector,
        )
        if state.engine is not provided:
            if not fresh:
                state.log.close()
                self._dlq.close()
                raise ConfigurationError(
                    "eventlog recovery found a checkpoint but the provided "
                    "engine already holds state; pass a fresh engine"
                )
            if self._owns_engine:
                close = getattr(provided, "close", None)
                if close is not None:
                    close()
            if config.parallel_workers > 1:
                # The restored parallel engine's workers are ours to stop.
                self._owns_engine = True
        # Always re-wrap: recovery replay bypassed the facade's id floor.
        self._facade.replace_engine(state.engine)
        self._eventlog = state.log
        self._registry = state.registry
        self._checkpoint_offset = state.checkpoint_offset
        for name in registry.names():
            for query_id in registry.get(name).queries:
                self._durable_owners[query_id] = name
        self._recovery = {
            "checkpoint_offset": state.checkpoint_offset,
            "replayed": state.replayed,
            "replay_errors": len(state.replay_errors),
        }

    async def stop(self, drain: bool = True) -> None:
        """Graceful (or immediate) shutdown.

        With ``drain=True``: stop accepting, flush the ingestion queue,
        then flush delivery queues — all against the configured
        ``drain_timeout`` deadline.  Stalled consumers are closed when
        the deadline passes.
        """
        if self._state in ("stopped", "new"):
            self._state = "stopped"
            return
        if self._state == "draining":
            return
        self._state = "draining"
        deadline = self._loop.time() + self._config.drain_timeout
        if drain:
            await self._ingest.put(_STOP)
            try:
                await asyncio.wait_for(
                    asyncio.shield(self._matcher_task),
                    max(0.001, deadline - self._loop.time()),
                )
            except asyncio.TimeoutError:
                self._matcher_task.cancel()
                with suppress(asyncio.CancelledError):
                    await self._matcher_task
            except Exception:
                # A crashed matcher must not abort shutdown: everything it
                # never processed is failed below via _fail_pending.
                self._matcher_errors += 1
            for session in list(self._sessions.values()):
                remaining = deadline - self._loop.time()
                if remaining > 0 and not session.closed:
                    await session.drain(remaining)
        else:
            self._matcher_task.cancel()
            with suppress(asyncio.CancelledError, Exception):
                await self._matcher_task
        for session in list(self._sessions.values()):
            self._unflushed += session.depth
            await session.close("shutdown")
            self._remove_session(session)
        self._failed_on_stop += self._fail_pending(
            ServerClosedError("server stopped")
        )
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self._eventlog is not None:
            self._eventlog.close()
        if self._dlq is not None:
            self._dlq.close()
        if self._owns_engine:
            close = getattr(self._facade.engine, "close", None)
            if close is not None:
                close()
        self._state = "stopped"

    def _fail_pending(self, exc: Exception) -> int:
        """Fail futures of items the matcher never processed.

        Returns how many submissions were failed, so ``stop`` can report
        lost-on-shutdown work instead of silently dropping it (the drain
        contract is *flush or report*).
        """
        leftovers = list(self._inflight)
        self._inflight.clear()
        while self._ingest is not None and not self._ingest.empty():
            leftovers.append(self._ingest.get_nowait())
        failed = 0
        for item in leftovers:
            future = getattr(item, "future", None)
            if future is not None and not future.done():
                future.set_exception(exc)
                failed += 1
        return failed

    # -- session management ------------------------------------------------

    def open_session(
        self,
        policy: Optional[str] = None,
        capacity: Optional[int] = None,
    ) -> SubscriberSession:
        if self._state not in ("new", "running"):
            raise ServerClosedError(f"runtime is {self._state}")
        session = SubscriberSession(
            self._next_session_id,
            capacity if capacity is not None else self._config.outbound_capacity,
            policy if policy is not None else self._config.slow_consumer_policy,
        )
        self._next_session_id += 1
        self._sessions[session.session_id] = session
        return session

    async def close_session(self, session: SubscriberSession) -> None:
        """Close a session and release its subscriptions.

        Anonymous sessions retire (unsubscribe) their queries; a durable
        subscriber merely *detaches* — its queries stay live in the
        engine and notifications keep accruing to its retained outbox
        until it resumes (or they dead-letter).
        """
        await session.close("client")
        if session.subscriber is not None:
            self._detach_subscriber(session)
        elif self._state == "running" and session.queries:
            await self._submit_control("retire", session, None)
        else:
            for query_id in list(session.queries):
                self._owners.pop(query_id, None)
            session.queries.clear()
        self._remove_session(session)

    def _detach_subscriber(self, session: SubscriberSession) -> None:
        """Disconnect a durable subscriber without touching the engine."""
        if self._registry is not None:
            self._registry.detach(session.subscriber)
        for query_id in list(session.queries):
            if self._owners.get(query_id) is session:
                self._owners.pop(query_id)
        session.queries.clear()

    def _remove_session(self, session: SubscriberSession) -> None:
        if self._sessions.pop(session.session_id, None) is not None:
            self._retired_drops[session.policy] += session.dropped
            self._retired_coalesced += session.coalesced

    # -- public operations -------------------------------------------------

    def _require_running(self, op: str) -> None:
        if self._state != "running":
            raise ServerClosedError(
                f"cannot {op}: runtime is {self._state}"
            )

    async def _submit_control(
        self, kind: str, session: Optional[SubscriberSession], args: object
    ) -> object:
        future = self._loop.create_future()
        # No await between the state check and the queue put: FIFO puts
        # guarantee the item lands ahead of any later stop() sentinel.
        self._require_running(kind)
        await self._ingest.put(_ControlItem(kind, session, args, future))
        return await future

    async def subscribe(
        self,
        session: SubscriberSession,
        keywords: Iterable[str],
        location: Optional[Tuple[float, float]] = None,
        window: Optional[int] = None,
    ) -> Tuple[int, List[Document]]:
        """Register a subscription owned by ``session``.

        ``location``/``window`` are the strategy-mode subscribe options
        (spatial anchor, per-query sliding-window override); they pass
        straight through to :class:`~repro.core.query.DasQuery`, whose
        validation — and the engine's mode check — surfaces as a
        structured error to the caller.
        """
        result = await self._submit_control(
            "subscribe", session, (tuple(keywords), location, window)
        )
        return result

    async def unsubscribe(
        self, query_id: int, session: Optional[SubscriberSession] = None
    ) -> None:
        await self._submit_control("unsubscribe", session, query_id)

    async def results(self, query_id: int) -> List[Document]:
        return await self._submit_control("results", None, query_id)

    async def publish(
        self,
        tokens: Optional[Sequence[str]] = None,
        text: Optional[str] = None,
        created_at: Optional[float] = None,
        session: Optional[SubscriberSession] = None,
        location: Optional[Tuple[float, float]] = None,
    ) -> Dict[str, float]:
        """Submit one document; resolves once its notifications are
        enqueued to every (non-stalled) subscriber session.

        Returns ``{"doc_id", "created_at"}`` — the accepted identity —
        plus ``"offset"`` when the event log is enabled.  ``session``
        identifies the publisher for per-session throttling.
        """
        if tokens is None and text is None:
            raise ReproError("publish requires tokens or text")
        self._require_running("publish")
        if self._config.throttle_rate > 0.0 and session is not None:
            await self._throttle(session)
        self._require_running("publish")
        if self._injector is not None:
            self._injector.fire("ingest.put")
        future = self._loop.create_future()
        await self._ingest.put(
            _PublishItem(
                tokens,
                text,
                created_at,
                future,
                enqueued_at=self._now(),
                location=location,
            )
        )
        return await future

    async def _throttle(self, session: SubscriberSession) -> None:
        """Queue-based load leveling: await (never reject) a hot client.

        One token bucket per session; the bucket clock is the event
        loop's monotonic clock so waits always elapse, even when the
        runtime's ``time_source`` is a simulated clock.
        """
        bucket = self._buckets.get(session.session_id)
        if bucket is None:
            bucket = self._buckets[session.session_id] = TokenBucket(
                self._config.throttle_rate, self._config.throttle_burst
            )
        waited = 0.0
        while True:
            wait = bucket.take(self._loop.time())
            if wait <= 0.0:
                break
            if waited == 0.0:
                self._throttled_publishes += 1
            waited += wait
            await asyncio.sleep(wait)
        if waited > 0.0:
            self._throttle_waited += waited
            self._pipeline["throttle_wait"].observe(waited)

    def _require_eventlog(self, op: str) -> None:
        if self._eventlog is None:
            raise ConfigurationError(
                f"{op} requires the event log (set eventlog_dir)"
            )

    async def resume(
        self,
        session: SubscriberSession,
        subscriber: str,
        offset: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Attach ``session`` to a durable subscriber and replay its
        retained notifications above ``offset`` (default: its acked
        floor).  Runs through the matcher barrier so the replayed
        entries and subsequent live notifications form one gap-free,
        duplicate-free stream."""
        self._require_eventlog("resume")
        result = await self._submit_control(
            "resume", session, (subscriber, offset)
        )
        return result

    def ack(
        self, session: SubscriberSession, offset: int
    ) -> Dict[str, Any]:
        """Confirm delivery up to ``offset`` for the session's durable
        subscriber; logged so recovery trims the outbox identically."""
        self._require_eventlog("ack")
        name = session.subscriber if session is not None else None
        if name is None:
            raise ReproError(
                "ack requires a session resumed as a durable subscriber"
            )
        self._eventlog.append(ack_record(name, int(offset)))
        self._appended_since_checkpoint += 1
        trimmed = self._registry.ack(name, int(offset))
        session.acked_offset = max(session.acked_offset, int(offset))
        return {
            "subscriber": name,
            "acked": self._registry.get(name).acked,
            "trimmed": trimmed,
        }

    def dlq_report(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The ``dlq`` op payload (also works with the log disabled)."""
        if self._dlq is None:
            return {"enabled": False, "stats": None, "entries": []}
        return {
            "enabled": True,
            "stats": self._dlq.stats(),
            "entries": self._dlq.entries(limit),
        }

    async def checkpoint_eventlog(self) -> Dict[str, Any]:
        """Write an event-log checkpoint now (matcher barrier)."""
        self._require_eventlog("checkpoint")
        return await self._submit_control("eventlog_checkpoint", None, None)

    def stats(self) -> Dict[str, Any]:
        """Admin surface: queue depths, batching, per-policy drops,
        engine counters."""
        sessions = [
            session.as_dict() for session in self._sessions.values()
        ]
        drops = dict(self._retired_drops)
        coalesced = self._retired_coalesced
        for session in self._sessions.values():
            drops[session.policy] += session.dropped
            coalesced += session.coalesced
        counters = self._facade.counters().as_dict()
        return {
            "state": self._state,
            "accepted": self._accepted,
            "published": self._published,
            "ingest_depth": self._ingest.qsize() if self._ingest else 0,
            "ingest_capacity": self._config.ingest_capacity,
            "batch_target": self._batcher.target,
            "batches": self._batcher.histogram.as_dict(),
            "sessions": sessions,
            "policy_drops": drops,
            "coalesced": coalesced,
            "disconnects": self._disconnects,
            "matcher_errors": self._matcher_errors,
            "delivery_errors": self._delivery_errors,
            "failed_on_stop": self._failed_on_stop,
            "unflushed": self._unflushed,
            "counters": counters,
            "workers": self._worker_stats(),
            "cluster": self._cluster_stats(),
            "telemetry": self._telemetry_section(counters),
            "eventlog": self._eventlog_section(),
            "dlq": self._dlq.stats() if self._dlq is not None else None,
            "subscribers": (
                self._registry.stats() if self._registry is not None else None
            ),
            "throttling": self._throttling_section(),
        }

    def _eventlog_section(self) -> Optional[Dict[str, Any]]:
        """Durability section of stats(); None when the log is disabled."""
        if self._eventlog is None:
            return None
        section = self._eventlog.stats()
        section["checkpoint_offset"] = self._checkpoint_offset
        section["checkpoints_written"] = self._checkpoints_written
        section["checkpoint_errors"] = self._checkpoint_errors
        section["appended_since_checkpoint"] = self._appended_since_checkpoint
        section["recovery"] = self._recovery
        return section

    def _throttling_section(self) -> Optional[Dict[str, Any]]:
        if self._config.throttle_rate <= 0.0:
            return None
        return {
            "rate": self._config.throttle_rate,
            "burst": self._config.throttle_burst,
            "throttled_publishes": self._throttled_publishes,
            "total_wait": round(self._throttle_waited, 6),
            "buckets": {
                session_id: bucket.snapshot()
                for session_id, bucket in sorted(self._buckets.items())
            },
        }

    def _worker_stats(self) -> Optional[Dict[str, Any]]:
        """Worker liveness/recovery section, None for in-process engines."""
        worker_stats = getattr(self._facade.engine, "worker_stats", None)
        return worker_stats() if worker_stats is not None else None

    def _cluster_stats(self) -> Optional[Dict[str, Any]]:
        """Coordinator shard/membership section, None off-cluster."""
        cluster_stats = getattr(self._facade.engine, "cluster_stats", None)
        return cluster_stats() if cluster_stats is not None else None

    def node_stats(self) -> Dict[str, Any]:
        """The ``cluster_stats`` op payload of a *node*: replica offset,
        replication accounting and the engine state a coordinator's
        heartbeat/membership loop watches."""
        return {
            "applied_offset": self._replica_offset,
            "replicated_entries": self._replicated_entries,
            "handoffs": self._handoffs,
            "accepted": self._accepted,
            "published": self._published,
            "queries": getattr(self._facade.engine, "query_count", None),
            "next_doc_id": self._next_doc_id,
            "counters": self._facade.counters().as_dict(),
            "telemetry": self._facade.telemetry_snapshot(),
        }

    def _telemetry_section(self, counters: Dict[str, int]) -> Dict[str, Any]:
        """One unified telemetry view: engine stages (merged across
        shards/workers), serving-pipeline stages, span accounting, and
        the derived filtering-effectiveness gauges."""
        snapshot = self._facade.telemetry_snapshot()
        if snapshot is None:
            snapshot = empty_snapshot()
        stages = dict(snapshot["stages"])
        for stage, histogram in self._pipeline.items():
            stages[stage] = histogram.to_wire()
        return {
            "stages": stages,
            "spans": snapshot["spans"],
            "effectiveness": effectiveness_gauges(counters),
        }

    def metrics_text(self) -> str:
        """The ``metrics`` op payload: Prometheus text exposition."""
        counters = self._facade.counters().as_dict()
        telemetry = self._telemetry_section(counters)
        gauges = {
            "repro_batch_target": self._batcher.target,
            "repro_ingest_queue_depth": (
                self._ingest.qsize() if self._ingest else 0
            ),
            "repro_sessions_open": len(self._sessions),
        }
        return render_exposition(
            counters,
            telemetry["stages"],
            telemetry["spans"],
            telemetry["effectiveness"],
            gauges=gauges,
        )

    # -- transport-facing dispatch ----------------------------------------

    async def handle_request(
        self, session: SubscriberSession, payload: object
    ) -> Dict[str, Any]:
        """Execute one protocol request; always returns a reply dict."""
        reply_to = payload.get("id") if isinstance(payload, dict) else None
        try:
            request = parse_request(payload)
            op = request["op"]
            if op == "subscribe":
                keywords = request.get("keywords")
                if keywords is None:
                    from repro.text.tokenizer import tokenize

                    keywords = tokenize(request["text"])
                location = request.get("location")
                query_id, initial = await self.subscribe(
                    session,
                    keywords,
                    location=tuple(location) if location is not None else None,
                    window=request.get("window"),
                )
                return ok_reply(
                    reply_to,
                    query_id=query_id,
                    initial=[document_payload(doc) for doc in initial],
                )
            if op == "unsubscribe":
                await self.unsubscribe(request["query_id"], session=session)
                return ok_reply(reply_to, query_id=request["query_id"])
            if op == "publish":
                doc_location = request.get("location")
                ack = await self.publish(
                    tokens=request.get("tokens"),
                    text=request.get("text"),
                    created_at=request.get("created_at"),
                    session=session,
                    location=(
                        tuple(doc_location)
                        if doc_location is not None
                        else None
                    ),
                )
                return ok_reply(reply_to, **ack)
            if op == "resume":
                result = await self.resume(
                    session, request["subscriber"], request.get("offset")
                )
                return ok_reply(reply_to, **result)
            if op == "ack":
                return ok_reply(
                    reply_to, **self.ack(session, request["offset"])
                )
            if op == "dlq":
                return ok_reply(
                    reply_to, **self.dlq_report(request.get("limit"))
                )
            if op == "results":
                documents = await self.results(request["query_id"])
                return ok_reply(
                    reply_to,
                    query_id=request["query_id"],
                    results=[document_payload(doc) for doc in documents],
                )
            if op == "metrics":
                return ok_reply(reply_to, metrics=self.metrics_text())
            if op == "replicate":
                result = await self._submit_control(
                    "replicate",
                    None,
                    (
                        request["offset"],
                        request["entries"],
                        bool(request.get("notify")),
                    ),
                )
                return ok_reply(reply_to, **result)
            if op == "handoff":
                result = await self._submit_control(
                    "handoff", None, (request["checkpoint"], request["offset"])
                )
                return ok_reply(reply_to, **result)
            if op == "cluster_stats":
                if request.get("checkpoint"):
                    result = await self._submit_control("checkpoint", None, None)
                    return ok_reply(reply_to, **result)
                # The heartbeat path skips the batch barrier on purpose:
                # a membership probe must answer even when the matcher is
                # deep in a publish backlog.
                return ok_reply(reply_to, node=self.node_stats())
            return ok_reply(reply_to, stats=self.stats())
        except ReproError as exc:
            return error_reply(exc, reply_to)

    # -- matcher ----------------------------------------------------------

    async def _call_engine(self, fn, *args):
        """Run an engine call off-loop, or inline when so configured.

        ``inline_matcher`` removes the runtime's only cross-thread
        handoff, which makes the accepted interleaving a pure function
        of the submission order (the simulation harness relies on this).
        """
        if self._executor is None:
            return fn(*args)
        return await self._loop.run_in_executor(self._executor, fn, *args)

    async def _matcher_loop(self) -> None:
        while True:
            item = await self._ingest.get()
            if item is _STOP:
                return
            held = None
            if isinstance(item, _PublishItem):
                batch = [item]
                target = self._batcher.target
                while len(batch) < target:
                    try:
                        nxt = self._ingest.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if isinstance(nxt, _PublishItem):
                        batch.append(nxt)
                    else:
                        held = nxt
                        break
                self._inflight = list(batch)
                try:
                    await self._run_publish_batch(batch)
                except Exception as exc:
                    # One poisoned batch must not kill the matcher (and
                    # with it every queued future): fail this batch's
                    # futures and keep serving.
                    self._matcher_errors += 1
                    for failed in batch:
                        if not failed.future.done():
                            failed.future.set_exception(exc)
                self._inflight.clear()
                self._batcher.record(len(batch), self._ingest.qsize())
            else:
                held = item
            if held is _STOP:
                return
            if held is not None:
                self._inflight = [held]
                await self._run_control(held)
                self._inflight.clear()
            if self._eventlog is not None:
                await self._maybe_checkpoint()

    async def _run_control(self, item: _ControlItem) -> None:
        try:
            if item.kind == "subscribe":
                keywords, location, window = item.args
                if self._eventlog is None:
                    query_id, initial = await self._call_engine(
                        self._facade.subscribe, keywords, location, window
                    )
                else:
                    # WAL discipline: the subscribe record (naming the
                    # id it will get) is durable before the engine call.
                    query_id = self._facade.next_query_id()
                    name = (
                        item.session.subscriber
                        if item.session is not None
                        else None
                    )
                    self._eventlog.append(
                        subscribe_record(
                            query_id,
                            list(keywords),
                            subscriber=name,
                            location=location,
                            window=window,
                        )
                    )
                    self._appended_since_checkpoint += 1
                    initial = await self._call_engine(
                        self._facade.subscribe_as,
                        query_id,
                        keywords,
                        location,
                        window,
                    )
                    if name is not None:
                        self._registry.record_subscribe(
                            name, query_id, keywords
                        )
                        self._durable_owners[query_id] = name
                self._owners[query_id] = item.session
                if item.session is not None:
                    item.session.queries.add(query_id)
                result = (query_id, initial)
            elif item.kind == "unsubscribe":
                query_id = item.args
                owner = self._owners.get(query_id)
                if item.session is not None and owner is not item.session:
                    # A durable subscriber may unsubscribe its own
                    # (re-attached) queries even while routing lags.
                    name = (
                        item.session.subscriber
                        if item.session is not None
                        else None
                    )
                    if name is None or self._durable_owners.get(query_id) != name:
                        raise UnknownQueryError(
                            f"query {query_id} is not owned by this session"
                        )
                if self._eventlog is not None:
                    self._eventlog.append(
                        unsubscribe_record(
                            query_id,
                            subscriber=self._durable_owners.get(query_id),
                        )
                    )
                    self._appended_since_checkpoint += 1
                    self._registry.record_unsubscribe(query_id)
                    self._durable_owners.pop(query_id, None)
                await self._call_engine(self._facade.unsubscribe, query_id)
                self._owners.pop(query_id, None)
                if owner is not None:
                    owner.queries.discard(query_id)
                result = None
            elif item.kind == "resume":
                result = await self._resume(item.session, item.args)
            elif item.kind == "eventlog_checkpoint":
                result = await self._write_eventlog_checkpoint()
            elif item.kind == "results":
                if self._injector is not None:
                    self._injector.fire("engine.results")
                result = await self._call_engine(
                    self._facade.results, item.args
                )
            elif item.kind == "retire":
                await self._retire_queries(item.session)
                result = None
            elif item.kind == "replicate":
                offset, entries, notify = item.args
                result = await self._call_engine(
                    self._apply_entries, offset, entries, notify
                )
            elif item.kind == "handoff":
                payload, offset = item.args
                result = await self._call_engine(
                    self._install_checkpoint, payload, offset
                )
            elif item.kind == "checkpoint":
                # Stats + checkpoint through one barrier so the payload
                # and the reported offset describe the same state.
                checkpoint = await self._call_engine(
                    engine_checkpoint, self._facade.engine
                )
                result = {"node": self.node_stats(), "checkpoint": checkpoint}
            else:  # pragma: no cover - internal invariant
                raise ReproError(f"unknown control kind {item.kind!r}")
        except Exception as exc:
            if not item.future.done():
                item.future.set_exception(exc)
        else:
            if not item.future.done():
                item.future.set_result(result)

    async def _run_publish_batch(self, items: List[_PublishItem]) -> None:
        dequeued_at = self._now()
        ingest_histogram = self._pipeline["ingest_queue"]
        prepared = []
        for item in items:
            ingest_histogram.observe(
                max(0.0, dequeued_at - item.enqueued_at)
            )
            doc_id = self._next_doc_id
            self._next_doc_id += 1
            if item.created_at is not None:
                timestamp = max(float(item.created_at), self._last_created_at)
            else:
                timestamp = max(self._now(), self._last_created_at)
            self._last_created_at = timestamp
            prepared.append((item, doc_id, timestamp))
            self._accepted += 1

        def _build_documents():
            documents = []
            for publish_item, doc_id, timestamp in prepared:
                if publish_item.tokens is not None:
                    documents.append(
                        Document.from_tokens(
                            doc_id,
                            publish_item.tokens,
                            timestamp,
                            publish_item.text,
                            publish_item.location,
                        )
                    )
                else:
                    documents.append(
                        Document.from_text(
                            doc_id,
                            publish_item.text,
                            timestamp,
                            publish_item.location,
                        )
                    )
            return documents

        def _build_and_publish():
            documents = _build_documents()
            return documents, self._facade.publish_batch(documents)

        offsets: Optional[Dict[int, int]] = None
        try:
            if self._eventlog is None:
                if self._injector is not None:
                    self._injector.fire("engine.publish_batch")
                batch_started = self._now()
                documents, notifications = await self._call_engine(
                    _build_and_publish
                )
            else:
                # WAL discipline: documents are built on the loop and
                # their records are durable *before* the engine matches
                # them.  One append_many call = one fsync for the batch.
                documents = _build_documents()
                append_started = self._now()
                assigned = self._eventlog.append_many(
                    [
                        publish_record(document_payload(document))
                        for document in documents
                    ]
                )
                self._pipeline["eventlog_append"].observe(
                    max(0.0, self._now() - append_started)
                )
                self._appended_since_checkpoint += len(assigned)
                offsets = {
                    document.doc_id: offset
                    for document, offset in zip(documents, assigned)
                }
                # The post-append / pre-match crash window: a fault here
                # loses nothing — the records are durable and recovery
                # replays them (at-least-once for in-doubt publishes).
                if self._injector is not None:
                    self._injector.fire("eventlog.match")
                    self._injector.fire("engine.publish_batch")
                batch_started = self._now()
                notifications = await self._call_engine(
                    self._facade.publish_batch, documents
                )
            self._pipeline["micro_batch"].observe(
                max(0.0, self._now() - batch_started)
            )
        except Exception as exc:
            self._matcher_errors += 1
            for publish_item, _doc_id, _timestamp in prepared:
                if not publish_item.future.done():
                    publish_item.future.set_exception(exc)
            return
        self._published += len(documents)
        notify_started = self._now()
        try:
            await self._route(notifications, offsets)
        except Exception:
            # Delivery failures must not fail the publish acks: the
            # documents *are* in the engine.  Count and move on.
            self._delivery_errors += 1
        finally:
            self._pipeline["notify"].observe(
                max(0.0, self._now() - notify_started)
            )
        for publish_item, doc_id, timestamp in prepared:
            if not publish_item.future.done():
                ack: Dict[str, Any] = {
                    "doc_id": doc_id,
                    "created_at": timestamp,
                }
                if offsets is not None:
                    ack["offset"] = offsets[doc_id]
                publish_item.future.set_result(ack)

    async def _route(
        self,
        notifications: List[Notification],
        offsets: Optional[Dict[int, int]] = None,
    ) -> None:
        """Fan notifications out to their owning sessions.

        Coalescing sessions receive one result-set snapshot per touched
        query per batch instead of per-change notifications.  With the
        event log enabled (``offsets`` maps doc id -> global offset),
        every notification for a durable subscriber is also retained in
        its outbox until acked — whether or not it is attached.
        """
        touched: Dict[int, List[int]] = {}
        for notification in notifications:
            offset = (
                offsets.get(notification.document.doc_id)
                if offsets is not None
                else None
            )
            if offset is not None and self._registry is not None:
                name = self._durable_owners.get(notification.query_id)
                if name is not None:
                    self._registry.offer(
                        name,
                        offset,
                        notification.query_id,
                        notification_payload(notification, offset=offset),
                    )
            session = self._owners.get(notification.query_id)
            if session is None or session.closed:
                continue
            if session.policy == "coalesce":
                queries = touched.setdefault(session.session_id, [])
                if notification.query_id not in queries:
                    queries.append(notification.query_id)
                continue
            delivered = await session.offer(
                notification_payload(notification, offset=offset),
                notification.query_id,
            )
            if delivered and offset is not None:
                session.delivered_offset = max(
                    session.delivered_offset, offset
                )
            if not delivered and session.closed:
                await self._disconnect_session(session)
        for session_id, query_ids in touched.items():
            session = self._sessions.get(session_id)
            if session is None or session.closed:
                continue
            for query_id in query_ids:
                if self._owners.get(query_id) is not session:
                    continue
                if self._injector is not None:
                    self._injector.fire("engine.results")
                documents = await self._call_engine(
                    self._facade.results, query_id
                )
                delivered = await session.offer(
                    snapshot_payload(query_id, documents), query_id
                )
                if not delivered and session.closed:
                    await self._disconnect_session(session)
                    break

    async def _disconnect_session(self, session: SubscriberSession) -> None:
        """A slow-consumer disconnect: drop its subscriptions and retire.

        Durable subscribers detach instead — the outage is exactly what
        their retained outbox exists for.
        """
        if session.session_id not in self._sessions:
            return
        self._disconnects += 1
        if session.subscriber is not None:
            self._detach_subscriber(session)
        else:
            await self._retire_queries(session)
        self._remove_session(session)

    async def _retire_queries(self, session: SubscriberSession) -> None:
        """Unsubscribe every query a closing session owns (matcher ctx).

        With the event log enabled each retirement is logged first, so
        recovery does not resurrect queries whose anonymous owner is
        gone.
        """
        for query_id in list(session.queries):
            if self._owners.get(query_id) is session:
                if self._eventlog is not None:
                    self._eventlog.append(
                        unsubscribe_record(
                            query_id,
                            subscriber=self._durable_owners.get(query_id),
                        )
                    )
                    self._appended_since_checkpoint += 1
                    self._registry.record_unsubscribe(query_id)
                    self._durable_owners.pop(query_id, None)
                try:
                    await self._call_engine(
                        self._facade.unsubscribe, query_id
                    )
                except ReproError:
                    pass
                self._owners.pop(query_id, None)
        session.queries.clear()

    # -- durability tier (DESIGN.md §14) -----------------------------------

    async def _resume(
        self, session: SubscriberSession, args: Tuple[str, Optional[int]]
    ) -> Dict[str, Any]:
        """Matcher-side ``resume``: attach, restore ownership, replay.

        Runs behind the batch barrier, so every notification generated
        before this point is either in the replayed outbox suffix or
        below the resume offset — the client's stream has no gap and no
        duplicate at the splice point.
        """
        name, offset = args
        state = self._registry.get_or_create(name)
        if state.session_id is not None and state.session_id != session.session_id:
            live = self._sessions.get(state.session_id)
            if live is not None and not live.closed:
                raise ReproError(
                    f"subscriber {name!r} is already attached to another "
                    f"session"
                )
        if session.subscriber is not None and session.subscriber != name:
            raise ReproError(
                f"session already resumed as {session.subscriber!r}"
            )
        self._registry.attach(name, session.session_id)
        session.subscriber = name
        for query_id in state.queries:
            self._owners[query_id] = session
            session.queries.add(query_id)
            self._durable_owners[query_id] = name
        if offset is not None and offset >= 0:
            self._eventlog.append(ack_record(name, int(offset)))
            self._appended_since_checkpoint += 1
            self._registry.ack(name, int(offset))
            session.acked_offset = max(session.acked_offset, int(offset))
        replayed = 0
        for entry in self._registry.pending(name, offset):
            delivered = await session.offer(
                dict(entry["payload"]), entry["query_id"]
            )
            if not delivered:
                break
            replayed += 1
            session.delivered_offset = max(
                session.delivered_offset, entry["offset"]
            )
        return {
            "subscriber": name,
            "acked": state.acked,
            "queries": sorted(state.queries),
            "replayed": replayed,
        }

    async def _maybe_checkpoint(self) -> None:
        """Auto-checkpoint after every N appended records (matcher ctx).

        A failed checkpoint (including an injected ``checkpoint.write``
        fault) is counted, never fatal: the log still holds everything,
        recovery just replays a longer suffix.
        """
        every = self._config.eventlog_checkpoint_every
        if every <= 0 or self._appended_since_checkpoint < every:
            return
        try:
            await self._write_eventlog_checkpoint()
        except Exception:
            self._checkpoint_errors += 1
            self._appended_since_checkpoint = 0

    async def _write_eventlog_checkpoint(self) -> Dict[str, Any]:
        """Checkpoint engine + registry at the current log end, then
        drop the log segments the checkpoint made redundant and compact
        the head segment down to the subscriber replay floor."""
        offset = self._eventlog.end
        engine_payload = await self._call_engine(
            engine_checkpoint, self._facade.engine
        )
        write_checkpoint(
            self._config.eventlog_dir,
            offset,
            engine_payload,
            self._registry.snapshot(),
            injector=self._injector,
        )
        # Reclaim only what is BOTH checkpoint-covered and fully acked:
        # a durable subscriber that has not confirmed an offset may still
        # resume against the retained log, so the lowest ack pins the
        # floor (a silent subscriber therefore pins the log — visible as
        # ``base`` lagging ``checkpoint_offset`` in stats.eventlog).
        # Offset ``min_acked`` itself is confirmed delivered: floor +1.
        min_acked = self._registry.min_acked()
        floor = offset if min_acked is None else min(offset, min_acked + 1)
        reclaimed = self._eventlog.compact_to(floor)
        self._checkpoint_offset = offset
        self._appended_since_checkpoint = 0
        self._checkpoints_written += 1
        return {
            "offset": offset,
            "checkpoints": self._checkpoints_written,
            "log_base": self._eventlog.base,
            "reclaimed_bytes": reclaimed,
        }

    # -- cluster node ops (DESIGN.md §13) ----------------------------------

    def _apply_entries(
        self, offset: int, entries: Sequence[Any], notify: bool
    ) -> Dict[str, Any]:
        """Apply a contiguous journal suffix to the local engine.

        The suffix must start exactly at this node's applied offset —
        a gap means the coordinator skipped entries this replica never
        saw, and applying the rest would silently fork its state, so
        the whole batch is rejected with :class:`ReplicationError`
        before any entry is touched.

        ``results`` aligns with ``entries``: a subscribe entry yields
        its initial result's doc ids, a publish entry yields
        ``[query_id, doc_id, replaced_id|None]`` notification triples
        when ``notify`` (primaries) and ``None`` when not (standbys,
        which skip the encode cost), an unsubscribe yields ``None``.
        """
        if offset != self._replica_offset:
            raise ReplicationError(
                f"replicate offset {offset} != applied offset "
                f"{self._replica_offset}"
            )
        results: List[Any] = []
        for entry in entries:
            parsed = validate_entry(entry)
            kind = parsed[0]
            if kind == "subscribe":
                _, query_id, terms, options = parsed
                location = options.get("location")
                initial = self._facade.subscribe_as(
                    query_id,
                    terms,
                    location=tuple(location) if location is not None else None,
                    window=options.get("window"),
                )
                results.append([doc.doc_id for doc in initial])
            elif kind == "unsubscribe":
                self._facade.unsubscribe(parsed[1])
                results.append(None)
            else:
                documents = [document_from_payload(p) for p in parsed[1]]
                notifications = self._facade.publish_batch(documents)
                self._accepted += len(documents)
                self._published += len(documents)
                for document in documents:
                    self._next_doc_id = max(
                        self._next_doc_id, document.doc_id + 1
                    )
                    self._last_created_at = max(
                        self._last_created_at, document.created_at
                    )
                results.append(
                    [
                        [
                            n.query_id,
                            n.document.doc_id,
                            (
                                n.replaced.doc_id
                                if n.replaced is not None
                                else None
                            ),
                        ]
                        for n in notifications
                    ]
                    if notify
                    else None
                )
            self._replica_offset += 1
            self._replicated_entries += 1
        return {"offset": self._replica_offset, "results": results}

    def _install_checkpoint(self, payload: Dict, offset: int) -> Dict[str, Any]:
        """Install a checkpoint wholesale (the ``handoff`` op).

        Used to seed a fresh replica whose journal history was already
        truncated, and to promote this node onto another shard's state.
        Replaces the engine, realigns the id floors, and adopts the
        coordinator's offset as the applied offset; any queries owned by
        direct client sessions are dropped (post-handoff the node's
        subscriptions belong to the replication stream).
        """
        engine = restore_payload(payload)
        self._facade.replace_engine(engine)
        self._facade.ensure_telemetry()
        self._next_doc_id = self._facade.doc_id_floor()
        self._last_created_at = self._facade.clock_now()
        self._replica_offset = int(offset)
        self._handoffs += 1
        self._owners.clear()
        for session in self._sessions.values():
            session.queries.clear()
        return {"offset": self._replica_offset, "handoffs": self._handoffs}
