"""Adaptive micro-batch sizing for the ingestion matcher.

The matcher drains the ingestion queue into micro-batches for
``publish_batch``.  Batch size is a latency/throughput dial: large
batches amortise per-batch work (postings-lookup memo, decay memo) but
delay the first notification of the batch.  Rather than fixing the size,
the batcher adapts it to observed backlog — the same signal loop used by
group-commit databases and network interrupt coalescing:

* after a drain that left the queue **non-empty** (the matcher is the
  bottleneck) the target doubles, up to the configured cap;
* after a drain that **emptied** the queue (publishers are the
  bottleneck) the target halves, back towards single-document latency.

Every realised batch size is recorded in a
:class:`~repro.metrics.instrumentation.BatchHistogram` for the admin
stats surface.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.instrumentation import BatchHistogram


class AdaptiveBatcher:
    """Backlog-driven micro-batch target in ``[1, max_batch_size]``."""

    def __init__(
        self,
        max_batch_size: int,
        histogram: Optional[BatchHistogram] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        self.max_batch_size = max_batch_size
        self.histogram = histogram if histogram is not None else BatchHistogram()
        self._target = 1

    @property
    def target(self) -> int:
        """Cap for the next drain."""
        return self._target

    def record(self, batch_size: int, backlog: int) -> None:
        """Account one drained batch and adapt the next target.

        ``backlog`` is the ingestion-queue depth right after the drain.
        """
        self.histogram.record(batch_size)
        if backlog > 0:
            self._target = min(self.max_batch_size, self._target * 2)
        else:
            self._target = max(1, self._target // 2)
