"""In-process transport: the session protocol without a socket.

An :class:`InProcessClient` speaks the exact dict shapes of the NDJSON
protocol (see :mod:`repro.server.protocol`) directly against a
:class:`~repro.server.runtime.ServerRuntime` in the same event loop —
no serialisation, no TCP.  Tests and benchmarks use it to exercise the
full ingestion/delivery pipeline; anything validated here behaves
identically over the TCP transport, which shares the same dispatch
(`ServerRuntime.handle_request`) and session machinery.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.server.protocol import raise_for_reply
from repro.server.runtime import ServerRuntime
from repro.server.sessions import SubscriberSession


class InProcessClient:
    """Client handle bound to one subscriber session of a runtime."""

    def __init__(
        self,
        runtime: ServerRuntime,
        policy: Optional[str] = None,
        capacity: Optional[int] = None,
    ) -> None:
        self._runtime = runtime
        self.session: SubscriberSession = runtime.open_session(
            policy=policy, capacity=capacity
        )

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one protocol request; returns the successful reply or
        raises the reply's structured :mod:`repro.errors` error."""
        reply = await self._runtime.handle_request(self.session, payload)
        return raise_for_reply(reply)

    # -- ops --------------------------------------------------------------

    async def subscribe(
        self,
        keywords: Optional[Iterable[str]] = None,
        text: Optional[str] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "subscribe"}
        if keywords is not None:
            payload["keywords"] = list(keywords)
        if text is not None:
            payload["text"] = text
        return await self.request(payload)

    async def unsubscribe(self, query_id: int) -> Dict[str, Any]:
        return await self.request(
            {"op": "unsubscribe", "query_id": query_id}
        )

    async def publish(
        self,
        tokens: Optional[Sequence[str]] = None,
        text: Optional[str] = None,
        created_at: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "publish"}
        if tokens is not None:
            payload["tokens"] = list(tokens)
        if text is not None:
            payload["text"] = text
        if created_at is not None:
            payload["created_at"] = created_at
        return await self.request(payload)

    async def resume(
        self, subscriber: str, offset: Optional[int] = None
    ) -> Dict[str, Any]:
        """Attach the session to a durable subscriber (eventlog tier)."""
        payload: Dict[str, Any] = {"op": "resume", "subscriber": subscriber}
        if offset is not None:
            payload["offset"] = offset
        return await self.request(payload)

    async def ack(self, offset: int) -> Dict[str, Any]:
        """Confirm delivery up to the given event-log offset."""
        return await self.request({"op": "ack", "offset": int(offset)})

    async def dlq(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """Inspect the server's dead-letter queue."""
        payload: Dict[str, Any] = {"op": "dlq"}
        if limit is not None:
            payload["limit"] = limit
        return await self.request(payload)

    async def results(self, query_id: int) -> List[Dict[str, Any]]:
        reply = await self.request({"op": "results", "query_id": query_id})
        return reply["results"]

    async def stats(self) -> Dict[str, Any]:
        reply = await self.request({"op": "stats"})
        return reply["stats"]

    async def metrics(self) -> str:
        """Prometheus text exposition of the server's telemetry."""
        reply = await self.request({"op": "metrics"})
        return reply["metrics"]

    # -- delivery ---------------------------------------------------------

    async def next_message(
        self, timeout: Optional[float] = None
    ) -> Optional[Dict[str, Any]]:
        """Pull the next pushed message (notify/snapshot/closed).

        Returns None once the session is fully closed, or raises
        :class:`asyncio.TimeoutError` when ``timeout`` elapses.
        """
        if timeout is None:
            return await self.session.next_message()
        return await asyncio.wait_for(self.session.next_message(), timeout)

    async def close(self) -> None:
        await self._runtime.close_session(self.session)
