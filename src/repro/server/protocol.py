"""Session protocol shared by the in-process and NDJSON TCP transports.

Every message — request, reply, or server push — is one JSON object; on
the TCP transport each object is one ``\\n``-terminated line (NDJSON).
The in-process transport exchanges the *same* dict shapes without the
serialisation round-trip, so a client tested in-process behaves
identically over the wire.

Requests carry an ``op`` plus op-specific fields and an optional client
``id`` echoed back as ``reply_to``:

====================  =====================================================
op                    fields
====================  =====================================================
``subscribe``         ``keywords`` (list of terms) or ``text`` (tokenised)
``unsubscribe``       ``query_id``
``publish``           ``tokens`` (list) or ``text``; optional ``created_at``
``results``           ``query_id``
``stats``             —
``metrics``           — (reply carries Prometheus exposition text)
``replicate``         ``offset``, ``entries`` (journal suffix), ``notify``
``handoff``           ``checkpoint`` (engine payload), ``offset``
``cluster_stats``     optional ``checkpoint`` (include an engine payload)
``resume``            ``subscriber`` (durable name); optional ``offset``
``ack``               ``offset`` (delivery confirmed up to it)
``dlq``               optional ``limit`` (newest N dead-letter entries)
====================  =====================================================

The last three are the cluster tier's control plane (DESIGN.md §13):
``replicate`` applies a contiguous op-journal suffix to the node's
engine (the coordinator drives *both* primaries and standbys with it),
``handoff`` installs a checkpoint payload wholesale (seeding a replica
whose journal history was truncated), and ``cluster_stats`` is the
heartbeat/observability probe.

``resume``/``ack``/``dlq`` are the durability tier (DESIGN.md §14,
requires the server to run with an event log): ``resume`` attaches the
connection to a durable subscriber identity and replays every retained
notification above the given offset (same query ids as before the
outage), ``ack`` confirms delivery up to an offset so the server can
trim the retained outbox, and ``dlq`` inspects the dead-letter queue.
When the event log is enabled, every pushed ``notify`` payload carries
the global ``offset`` of the publish that produced it — the value a
client hands back to ``resume``/``ack``.

Replies are ``{"ok": true, "reply_to": ..., ...}`` on success and
``{"ok": false, "reply_to": ..., "error": {"type", "message"}}`` on
failure, where ``type`` is the :mod:`repro.errors` class name so clients
can re-raise structured errors.  Server pushes are ``{"op": "notify"}``
(one result-set change), ``{"op": "snapshot"}`` (a coalesced result-set
snapshot) and ``{"op": "closed"}`` (the session ended).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

import repro.errors as errors
from repro.core.events import Notification
from repro.errors import ProtocolError, ReproError
from repro.stream.document import Document

#: Request operations understood by the serving runtime.
REQUEST_OPS = (
    "subscribe",
    "unsubscribe",
    "publish",
    "results",
    "stats",
    "metrics",
    "replicate",
    "handoff",
    "cluster_stats",
    "resume",
    "ack",
    "dlq",
)

#: repro error-class name -> class, for structured client-side re-raising.
ERROR_TYPES: Dict[str, type] = {
    name: obj
    for name, obj in vars(errors).items()
    if isinstance(obj, type) and issubclass(obj, ReproError)
}


# -- payload builders (server -> client) ---------------------------------


def document_payload(document: Document) -> Dict[str, Any]:
    """Wire form of a document: id, timestamp, tf map, optional text."""
    payload: Dict[str, Any] = {
        "doc_id": document.doc_id,
        "created_at": document.created_at,
        "tf": dict(document.vector.items()),
    }
    if document.text is not None:
        payload["text"] = document.text
    if document.location is not None:
        payload["loc"] = list(document.location)
    return payload


def document_from_payload(payload: Dict[str, Any]) -> Document:
    """Rebuild a :class:`Document` from :func:`document_payload` output."""
    from repro.text.vectors import TermVector

    return Document(
        int(payload["doc_id"]),
        TermVector(payload["tf"]),
        float(payload["created_at"]),
        payload.get("text"),
        payload.get("loc"),
    )


def notification_payload(
    notification: Notification, offset: Optional[int] = None
) -> Dict[str, Any]:
    """One result-set change; ``offset`` is the event-log offset of the
    publish that produced it (present only when the log is enabled)."""
    replaced = notification.replaced
    payload = {
        "op": "notify",
        "query_id": notification.query_id,
        "document": document_payload(notification.document),
        "replaced": (
            document_payload(replaced) if replaced is not None else None
        ),
    }
    if offset is not None:
        payload["offset"] = int(offset)
    return payload


def snapshot_payload(
    query_id: int, documents: List[Document], coalesced: int = 0
) -> Dict[str, Any]:
    """A coalesced delivery: the query's full current result set."""
    return {
        "op": "snapshot",
        "query_id": query_id,
        "results": [document_payload(document) for document in documents],
        "coalesced": coalesced,
    }


def closed_payload(reason: str) -> Dict[str, Any]:
    return {"op": "closed", "reason": reason}


def ok_reply(reply_to: Optional[Any] = None, **fields: Any) -> Dict[str, Any]:
    reply: Dict[str, Any] = {"ok": True}
    if reply_to is not None:
        reply["reply_to"] = reply_to
    reply.update(fields)
    return reply


def error_reply(
    exc: BaseException, reply_to: Optional[Any] = None
) -> Dict[str, Any]:
    """Structured error reply; ``type`` names the repro error class."""
    reply: Dict[str, Any] = {
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }
    if reply_to is not None:
        reply["reply_to"] = reply_to
    return reply


def raise_for_reply(reply: Dict[str, Any]) -> Dict[str, Any]:
    """Return a successful reply, or re-raise its structured error."""
    if reply.get("ok"):
        return reply
    error = reply.get("error") or {}
    exc_type = ERROR_TYPES.get(error.get("type"), ReproError)
    raise exc_type(error.get("message", "server error"))


# -- request validation (client -> server) --------------------------------


def _validate_location(location: Any, op: str) -> None:
    """Shape check for strategy-mode locations: an (x, y) number pair.

    Range enforcement for *query* locations (unit square) stays with the
    spatial strategy, which owns that semantic; here we only guarantee
    the value cannot wedge the matcher."""
    if location is None:
        return
    if (
        not isinstance(location, (list, tuple))
        or len(location) != 2
        or any(
            not isinstance(value, (int, float)) or isinstance(value, bool)
            for value in location
        )
    ):
        raise ProtocolError(
            f"{op} 'location' must be a pair of numbers [x, y]"
        )


def parse_request(payload: Any) -> Dict[str, Any]:
    """Validate one inbound request object; raises :class:`ProtocolError`."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(payload).__name__}")
    op = payload.get("op")
    if op not in REQUEST_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {REQUEST_OPS}"
        )
    if op in ("unsubscribe", "results"):
        if not isinstance(payload.get("query_id"), int):
            raise ProtocolError(f"{op} requires an integer 'query_id'")
    if op == "subscribe":
        keywords = payload.get("keywords")
        text = payload.get("text")
        if keywords is None and text is None:
            raise ProtocolError("subscribe requires 'keywords' or 'text'")
        if keywords is not None and not isinstance(keywords, (list, tuple)):
            raise ProtocolError("'keywords' must be a list of terms")
        _validate_location(payload.get("location"), "subscribe")
        window = payload.get("window")
        if window is not None and (
            not isinstance(window, int)
            or isinstance(window, bool)
            or window < 1
        ):
            raise ProtocolError(
                "subscribe 'window' must be a positive integer"
            )
    if op == "publish":
        _validate_location(payload.get("location"), "publish")
        tokens = payload.get("tokens")
        text = payload.get("text")
        if tokens is None and text is None:
            raise ProtocolError("publish requires 'tokens' or 'text'")
        if tokens is not None and not isinstance(tokens, (list, tuple)):
            raise ProtocolError("'tokens' must be a list of terms")
        created_at = payload.get("created_at")
        if created_at is not None and not isinstance(created_at, (int, float)):
            raise ProtocolError("'created_at' must be a number")
    if op == "replicate":
        offset = payload.get("offset")
        if not isinstance(offset, int) or isinstance(offset, bool) or offset < 0:
            raise ProtocolError("replicate requires a non-negative integer 'offset'")
        entries = payload.get("entries")
        if not isinstance(entries, (list, tuple)):
            raise ProtocolError("replicate requires 'entries' (a list)")
        for entry in entries:
            if not isinstance(entry, (list, tuple)) or not entry:
                raise ProtocolError(
                    "each replicate entry must be a non-empty list"
                )
        notify = payload.get("notify")
        if notify is not None and not isinstance(notify, bool):
            raise ProtocolError("'notify' must be a boolean")
    if op == "handoff":
        if not isinstance(payload.get("checkpoint"), dict):
            raise ProtocolError("handoff requires a 'checkpoint' object")
        offset = payload.get("offset")
        if not isinstance(offset, int) or isinstance(offset, bool) or offset < 0:
            raise ProtocolError("handoff requires a non-negative integer 'offset'")
    if op == "cluster_stats":
        want = payload.get("checkpoint")
        if want is not None and not isinstance(want, bool):
            raise ProtocolError("cluster_stats 'checkpoint' must be a boolean")
    if op == "resume":
        subscriber = payload.get("subscriber")
        if not isinstance(subscriber, str) or not subscriber:
            raise ProtocolError(
                "resume requires a non-empty string 'subscriber'"
            )
        offset = payload.get("offset")
        if offset is not None and (
            not isinstance(offset, int) or isinstance(offset, bool)
        ):
            raise ProtocolError("resume 'offset' must be an integer")
    if op == "ack":
        offset = payload.get("offset")
        if not isinstance(offset, int) or isinstance(offset, bool) or offset < 0:
            raise ProtocolError("ack requires a non-negative integer 'offset'")
    if op == "dlq":
        limit = payload.get("limit")
        if limit is not None and (
            not isinstance(limit, int) or isinstance(limit, bool) or limit < 1
        ):
            raise ProtocolError("dlq 'limit' must be a positive integer")
    return payload


# -- NDJSON framing -------------------------------------------------------


def encode_line(payload: Dict[str, Any]) -> bytes:
    """One message as a ``\\n``-terminated UTF-8 JSON line."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one NDJSON line; raises :class:`ProtocolError` on bad input."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON line: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"expected a JSON object per line, got {type(payload).__name__}"
        )
    return payload
