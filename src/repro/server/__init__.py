"""Async serving runtime: ingestion pipeline, delivery, transports.

The subsystem that turns the in-process engines into a long-running
network service (see DESIGN.md §8):

* :class:`ServerRuntime` — bounded ingestion queue + single matcher task
  coalescing publishes into adaptive micro-batches;
* :class:`SubscriberSession` — bounded per-subscriber delivery with
  ``block`` / ``drop_oldest`` / ``coalesce`` / ``disconnect`` policies;
* :class:`InProcessClient` — the session protocol without a socket;
* :class:`NdjsonTcpServer` / :class:`NdjsonTcpClient` — the same
  protocol as newline-delimited JSON over TCP.
"""

from repro.server.batching import AdaptiveBatcher
from repro.server.inprocess import InProcessClient
from repro.server.runtime import EngineFacade, ServerRuntime
from repro.server.sessions import SubscriberSession
from repro.server.tcp import NdjsonTcpClient, NdjsonTcpServer

__all__ = [
    "AdaptiveBatcher",
    "EngineFacade",
    "InProcessClient",
    "NdjsonTcpClient",
    "NdjsonTcpServer",
    "ServerRuntime",
    "SubscriberSession",
]
