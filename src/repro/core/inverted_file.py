"""Block-based query inverted file (Section 4.3, Figure 2).

One postings list per term; each list is a sequence of
:class:`~repro.core.blocks.PostingsBlock` objects whose id ranges are
disjoint and ascending, so the block containing a query id is found by
bisection over a flat ``max_id`` array maintained incrementally (the
previous implementation rebuilt that array on every lookup).  With
``block_size = None`` the file degrades to a plain (unblocked) inverted
file — the structure used by the IRT baseline.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.blocks import PostingsBlock
from repro.core.query import DasQuery


class PostingsList:
    """All blocks of one term."""

    __slots__ = ("term", "blocks", "_max_ids")

    def __init__(self, term: str) -> None:
        self.term = term
        self.blocks: List[PostingsBlock] = []
        #: ``blocks[i].max_id`` mirror kept in lockstep for O(log B)
        #: ``find_block`` without a per-call list rebuild.
        self._max_ids: List[int] = []

    def append(self, query_id: int, block_size: Optional[int]) -> PostingsBlock:
        """Append a posting, opening a new block when the last one is full."""
        if not self.blocks or (
            block_size is not None and len(self.blocks[-1]) >= block_size
        ):
            self.blocks.append(PostingsBlock())
            self._max_ids.append(query_id)
        block = self.blocks[-1]
        block.append(query_id)
        self._max_ids[-1] = query_id
        return block

    def find_block(self, query_id: int) -> Optional[PostingsBlock]:
        """Block whose id range contains ``query_id`` (None if absent)."""
        index = bisect_left(self._max_ids, query_id)
        if index >= len(self.blocks):
            return None
        block = self.blocks[index]
        return block if query_id in block.query_ids else None

    def remove(self, query_id: int) -> bool:
        for i, block in enumerate(self.blocks):
            if block.query_ids and block.min_id <= query_id <= block.max_id:
                if block.remove(query_id):
                    if not block.query_ids:
                        del self.blocks[i]
                        del self._max_ids[i]
                    else:
                        self._max_ids[i] = block.max_id
                    return True
                return False
        return False

    @property
    def posting_count(self) -> int:
        return sum(len(block) for block in self.blocks)

    def __iter__(self) -> Iterator[PostingsBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)


class QueryInvertedFile:
    """Term -> postings list mapping for all subscribed queries."""

    def __init__(self, block_size: Optional[int]) -> None:
        if block_size is not None and block_size < 1:
            raise ValueError(f"block_size must be >= 1 or None, got {block_size}")
        self._block_size = block_size
        self._lists: Dict[str, PostingsList] = {}
        # Incremental totals: the per-batch vectorization heuristic reads
        # these every micro-batch, so they must not be O(terms) walks.
        self._postings_total = 0
        self._blocks_total = 0
        #: Optional flat-array mirror (ISSUE 9) notified of every
        #: structural change — including the inserts a checkpoint restore
        #: replays directly against the index, which is what keeps the
        #: mirror rebuildable without a separate restore hook.
        self.mirror = None

    @property
    def block_size(self) -> Optional[int]:
        return self._block_size

    def insert(self, query: DasQuery) -> List[Tuple[str, PostingsBlock]]:
        """Add a query to every keyword's list; returns touched blocks."""
        touched = []
        for term in query.terms:
            postings = self._lists.get(term)
            if postings is None:
                postings = PostingsList(term)
                self._lists[term] = postings
            before = len(postings.blocks)
            block = postings.append(query.query_id, self._block_size)
            opened = len(postings.blocks) - before
            self._blocks_total += opened
            self._postings_total += 1
            if self.mirror is not None:
                self.mirror.on_insert(term, query.query_id, opened > 0)
            touched.append((term, block))
        return touched

    def remove(self, query: DasQuery) -> None:
        for term in query.terms:
            postings = self._lists.get(term)
            if postings is None:
                continue
            before = len(postings.blocks)
            if postings.remove(query.query_id):
                self._postings_total -= 1
                deleted = before - len(postings.blocks)
                self._blocks_total -= deleted
                if self.mirror is not None:
                    self.mirror.on_remove(term, query.query_id, deleted > 0)
            if not postings.blocks:
                del self._lists[term]
                if self.mirror is not None:
                    self.mirror.on_term_dropped(term)

    def list_for(self, term: str) -> Optional[PostingsList]:
        return self._lists.get(term)

    def blocks_for_query(
        self, query: DasQuery
    ) -> Iterator[Tuple[str, PostingsBlock]]:
        """The (term, block) memberships of a query — one per keyword."""
        for term in query.terms:
            postings = self._lists.get(term)
            if postings is None:
                continue
            block = postings.find_block(query.query_id)
            if block is not None:
                yield term, block

    # -- accounting (Figure 8) --------------------------------------------------

    @property
    def term_count(self) -> int:
        return len(self._lists)

    @property
    def posting_count(self) -> int:
        return self._postings_total

    @property
    def block_count(self) -> int:
        return self._blocks_total

    def mcs_document_count(self) -> int:
        """Total document references held by MCS summaries."""
        total = 0
        for postings in self._lists.values():
            for block in postings:
                if block.mcs_sets:
                    total += sum(len(cover) for cover in block.mcs_sets)
        return total

    def terms(self) -> Iterable[str]:
        return self._lists.keys()

    def items(self) -> Iterator[Tuple[str, PostingsBlock]]:
        """Every (term, block) pair, term-major in insertion order.

        Read-only traversal for invariant checkers and diagnostics;
        callers must not mutate block metadata.
        """
        for term, postings in self._lists.items():
            for block in postings:
                yield term, block
