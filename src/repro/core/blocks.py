"""Postings blocks of the query inverted file (Figure 2, Section 4.3).

Each block holds at most ``p_max`` query ids (ascending) and is augmented
with the five components listed in Section 4.3:

1. ``min_id`` / ``max_id`` of its postings;
2. ``DTRel_min(b)`` (Eq. 13) — minimum over members of the
   time-independent part of ``dr_q(q.d_e)``;
3. ``TRel(q_m, q_m.d_e)`` (Eq. 14) — maximum oldest-document relevance;
4. ``q_e.d_e`` — the earliest oldest-document timestamp among members;
5. the MCS-based result summary (Section 5).

Metadata is refreshed *lazily*: result updates mark the block dirty (in
every postings list the query appears in) and the values are recomputed
from per-query O(1) summaries the next time the block participates in a
group-filtering decision.  This keeps the bound safe — a stale
``DTRel_min`` could over- or under-estimate the true threshold, and an
over-estimate would drop true results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.mcs import (
    BlockUniverse,
    CoverSet,
    build_universe,
    greedy_mcs_gen,
)
from repro.core.result_set import QueryResultSet

_NEG_INF = float("-inf")


class PostingsBlock:
    """One block of a postings list, with group-filtering summaries."""

    __slots__ = (
        "query_ids",
        "meta_dirty",
        "has_unfilled",
        "unfilled_ids",
        "dtrel_min",
        "trel_max_de",
        "earliest_de",
        "mcs_sets",
        "mcs_initial_count",
        "universe_min_tf",
        "universe_max_norm",
        "covers_cache",
        "member_slots",
    )

    def __init__(self) -> None:
        self.query_ids: List[int] = []
        self.meta_dirty: bool = True
        self.has_unfilled: bool = True
        #: Members whose result sets are still warming up.  They admit
        #: every matching document, so a group skip must still evaluate
        #: them individually; the block summaries cover the filled rest.
        self.unfilled_ids: List[int] = []
        self.dtrel_min: float = _NEG_INF
        self.trel_max_de: float = 0.0
        self.earliest_de: float = 0.0
        #: None means "not built yet"; an empty list means "built but no
        #: covering set exists" (the bound then degrades to BIRT's 0).
        self.mcs_sets: Optional[List[CoverSet]] = None
        self.mcs_initial_count: int = 0
        self.universe_min_tf: int = 0
        self.universe_max_norm: float = 0.0
        #: Kernel-backend packed form of ``mcs_sets``, keyed by the cover
        #: list's identity (see ``filtering.block_similarity_lower_bound``).
        self.covers_cache: Optional[tuple] = None
        #: Cached columnar slot array for the current membership (ISSUE 6);
        #: invalidated whenever membership changes.
        self.member_slots: Optional[object] = None

    # -- postings ------------------------------------------------------------

    @property
    def min_id(self) -> int:
        return self.query_ids[0]

    @property
    def max_id(self) -> int:
        return self.query_ids[-1]

    def __len__(self) -> int:
        return len(self.query_ids)

    def append(self, query_id: int) -> None:
        """Add a posting; ids arrive in ascending order by construction."""
        if self.query_ids and query_id <= self.query_ids[-1]:
            raise ValueError(
                f"posting {query_id} out of order (last {self.query_ids[-1]})"
            )
        self.query_ids.append(query_id)
        self.meta_dirty = True
        self.member_slots = None
        # A new member invalidates coverage of every existing MCS.
        self.mcs_sets = None
        self.mcs_initial_count = 0

    def remove(self, query_id: int) -> bool:
        """Remove a posting (unsubscription); returns True if present."""
        try:
            self.query_ids.remove(query_id)
        except ValueError:
            return False
        self.meta_dirty = True
        self.member_slots = None
        # Shrinking membership keeps existing covers valid (they still
        # cover every remaining query), so the MCS summary survives.
        return True

    # -- metadata -----------------------------------------------------------

    def refresh_metadata(
        self,
        result_sets: Dict[int, QueryResultSet],
        alpha: float,
        coeff: Optional[float] = None,
    ) -> None:
        """Recompute components (2)-(4) from per-query O(1) summaries.

        Members still warming up (``|R| < k``) are collected into
        :attr:`unfilled_ids`; the threshold summaries cover the *filled*
        members only, so a group skip remains valid for them while the
        unfilled members are evaluated individually by the engine.
        ``coeff`` optionally carries the precomputed diversity
        coefficient through to the per-member summaries.
        """
        dtrel_min = float("inf")
        trel_max = 0.0
        earliest = float("inf")
        unfilled: List[int] = []
        for query_id in self.query_ids:
            result_set = result_sets[query_id]
            if not result_set.is_full:
                unfilled.append(query_id)
                continue
            static = result_set.static_dr_oldest(alpha, coeff)
            if static < dtrel_min:
                dtrel_min = static
            oldest = result_set.oldest
            if oldest.trel > trel_max:
                trel_max = oldest.trel
            created = oldest.document.created_at
            if created < earliest:
                earliest = created
        self.unfilled_ids = unfilled
        self.has_unfilled = bool(unfilled)
        if len(unfilled) == len(self.query_ids):
            # Nothing filled: no meaningful summary exists.
            self.dtrel_min = _NEG_INF
            self.trel_max_de = 0.0
            self.earliest_de = 0.0
        else:
            self.dtrel_min = dtrel_min
            self.trel_max_de = trel_max
            self.earliest_de = earliest
        self.meta_dirty = False

    def refresh_from_columns(self, columns) -> bool:
        """Vectorized refresh from :class:`QuerySummaryColumns`.

        Returns True when the columnar store covered every member (all
        filled), in which case the summaries are refreshed bit-identically
        to :meth:`refresh_metadata` (min/max over the same float64s).
        Returns False when any member is unknown or unfilled — the caller
        falls back to the scalar path, which handles warm-up members.
        """
        slots = self.member_slots
        if slots is None:
            slots = columns.slots_for(self.query_ids)
            if slots is None:
                return False
            self.member_slots = slots
        summary = columns.summarize(slots)
        if summary is None:
            return False
        self.dtrel_min, self.trel_max_de, self.earliest_de = summary
        self.unfilled_ids = []
        self.has_unfilled = False
        self.meta_dirty = False
        return True

    # -- MCS summary -----------------------------------------------------------

    def needs_mcs_rebuild(self, delta_s: float) -> bool:
        """Section 7.1 rebuild policy: ratio of surviving MCSs below δ_s."""
        if self.mcs_sets is None:
            return True
        if self.mcs_initial_count == 0:
            return False
        return len(self.mcs_sets) / self.mcs_initial_count < delta_s

    def rebuild_mcs(
        self,
        term: str,
        result_sets: Dict[int, QueryResultSet],
    ) -> BlockUniverse:
        """(Re)generate the MCS summary from the members' current results.

        Only *filled* members participate: the group bound is applied to
        them alone (warm-up members are always evaluated individually),
        so covers need not span queries that are still filling up.
        """
        filled = [
            query_id
            for query_id in self.query_ids
            if result_sets[query_id].is_full
        ]
        universe = build_universe(term, filled, result_sets)
        self.mcs_sets = greedy_mcs_gen(filled, universe)
        self.mcs_initial_count = len(self.mcs_sets)
        self.universe_min_tf = universe.min_term_frequency
        self.universe_max_norm = universe.max_norm
        return universe

    def invalidate_mcs_with(self, doc_ids: Set[int]) -> int:
        """Drop MCSs containing any of ``doc_ids``; returns the drop count.

        Called when a member query's result changed: both the evicted
        document and the member's new oldest document stop counting
        toward coverage, so covers relying on them must go (Section 7.1).
        Removing covers keeps Eq. 19 correct — it only loosens the bound.
        """
        if not self.mcs_sets or not doc_ids:
            return 0
        before = len(self.mcs_sets)
        surviving = [
            cover
            for cover in self.mcs_sets
            if doc_ids.isdisjoint(cover.doc_ids)
        ]
        if len(surviving) == before:
            # Unchanged: keep the existing list object so packed-cover
            # caches keyed by its identity stay valid.
            return 0
        self.mcs_sets = surviving
        return before - len(surviving)
