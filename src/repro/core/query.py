"""The Diversity-Aware Top-k Subscription query (Definition 2).

A DAS query is the pair ``<id, ψ>`` of a query id and keyword set; its
result set lives in :mod:`repro.core.result_set` and is owned by the
engine that the query is subscribed to.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.errors import ConfigurationError, EmptyQueryError


class DasQuery:
    """Immutable subscription: an id plus a deduplicated keyword tuple.

    Strategy modes (DESIGN.md §16) attach two optional options:
    ``location`` — an ``(x, y)`` pair in the unit square, required by the
    spatial-keyword mode — and ``window`` — a per-query count-based
    window, capped by the engine at ``config.window_size``.
    """

    __slots__ = ("query_id", "terms", "location", "window")

    def __init__(
        self,
        query_id: int,
        keywords: Iterable[str],
        location: Optional[Tuple[float, float]] = None,
        window: Optional[int] = None,
    ) -> None:
        terms: Tuple[str, ...] = tuple(sorted(set(keywords)))
        if not terms:
            raise EmptyQueryError(f"query {query_id} has no keywords")
        if any(not term for term in terms):
            raise EmptyQueryError(f"query {query_id} contains an empty keyword")
        if location is not None:
            try:
                x, y = location
                location = (float(x), float(y))
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"query {query_id} location must be an (x, y) pair, "
                    f"got {location!r}"
                ) from None
        if window is not None:
            if isinstance(window, bool) or not isinstance(window, int):
                raise ConfigurationError(
                    f"query {query_id} window must be an integer, "
                    f"got {window!r}"
                )
            if window < 1:
                raise ConfigurationError(
                    f"query {query_id} window must be >= 1, got {window}"
                )
        self.query_id = query_id
        self.terms = terms
        self.location = location
        self.window = window

    @classmethod
    def from_text(cls, query_id: int, text: str) -> "DasQuery":
        """Tokenise free text into a subscription."""
        from repro.text.tokenizer import tokenize

        return cls(query_id, tokenize(text))

    def matches(self, terms: Iterable[str]) -> bool:
        """True when the document shares at least one keyword (Def. 2 (1))."""
        own = self.terms
        return any(term in own for term in terms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DasQuery):
            return NotImplemented
        return self.query_id == other.query_id and self.terms == other.terms

    def __hash__(self) -> int:
        return hash((self.query_id, self.terms))

    def __repr__(self) -> str:
        extras = ""
        if self.location is not None:
            extras += f", location={self.location}"
        if self.window is not None:
            extras += f", window={self.window}"
        return f"DasQuery(id={self.query_id}, terms={list(self.terms)}{extras})"
