"""Pluggable ranking/expiry strategies (DESIGN.md §16).

The paper fixes one scenario — time-decayed text relevance with
diversity (Eq. 1/4) — but the maintenance machinery around it (inverted
matching, result sets, checkpoints, engine shapes, the serving runtime)
is scenario-agnostic.  This module is the seam: a strategy object owns
the scoring function ``R(q, d)`` and the eviction rule, and
:class:`~repro.core.engine.DasEngine` delegates ``subscribe`` /
``publish`` / ``results`` / ``current_dr`` / checkpoint state to it when
one is active.

``mode="decay"`` deliberately maps to *no* strategy object: the paper's
hot path (Algorithm 2 with Lemmas 2-7) stays exactly as it was, so the
default mode is bit-identical to the pre-seam engine.

Two strategies ship behind the seam:

:class:`WindowStrategy` (``mode="window"``)
    Count-based sliding window.  Only the newest ``config.window_size``
    documents are alive; each query may narrow that with a per-query
    ``window`` option.  Scores are pure text relevance cached at first
    encounter; the result set is the top-k live candidates by
    ``(score, seq)`` with newest-wins tie-breaking.  The genuinely new
    maintenance path: when a top-k member *expires*, the best retained
    candidate is promoted in its place (one notification per promotion,
    carrying the expired member as ``replaced``); expiry without a
    candidate shrinks the result silently.

:class:`SpatialStrategy` (``mode="spatial"``)
    Spatial-keyword scoring: ``w·proximity + (1-w)·TRel`` over queries
    carrying a location in the unit square.  Queries live in a uniform
    grid; per published document, whole cells are pruned with the same
    upper-bound discipline as Eq. 12 (see
    :func:`repro.core.filtering.spatial_cell_filters_out`), which is
    provably unable to drop a qualifying query.

Each strategy also supplies its brute-force oracle
(:func:`make_oracle`) and its invariant set
(:meth:`Strategy.check_invariants`) so the differential/property/chaos
proof tiers generalise beyond the decay scenario.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.core.events import Notification
from repro.core.filtering import (
    TIE_EPSILON,
    cell_proximity_upper_bound,
    spatial_cell_filters_out,
    spatial_proximity,
    spatial_score,
)
from repro.core.query import DasQuery
from repro.errors import ConfigurationError
from repro.stream.document import Document

_NEG_INF = float("-inf")


def make_strategy(engine) -> Optional["Strategy"]:
    """The engine's strategy object, or ``None`` for the decay mode.

    Returning ``None`` (not a pass-through object) keeps the decay hot
    path free of any per-call indirection."""
    mode = engine.config.mode
    if mode == "decay":
        return None
    if mode == "window":
        return WindowStrategy(engine)
    if mode == "spatial":
        return SpatialStrategy(engine)
    raise ConfigurationError(f"unknown strategy mode {mode!r}")


def make_oracle(config, **kwargs):
    """Brute-force reference engine for the config's mode.

    The decay mode keeps :class:`~repro.baselines.naive.NaiveEngine`;
    the strategy modes get their own full re-rank oracles."""
    if config.mode == "window":
        from repro.baselines.strategy_oracles import WindowOracle

        return WindowOracle(config, **kwargs)
    if config.mode == "spatial":
        from repro.baselines.strategy_oracles import SpatialOracle

        return SpatialOracle(config, **kwargs)
    from repro.baselines.naive import NaiveEngine

    return NaiveEngine(config, **kwargs)


def effective_window(query: DasQuery, window_size: int) -> int:
    """A query's count-based window, capped by the engine-wide bound.

    The global retention buffer holds ``config.window_size`` documents,
    so no per-query option may look further back than that."""
    if query.window is None:
        return window_size
    return min(query.window, window_size)


class Strategy:
    """Interface the engine delegates to while a non-decay mode is active."""

    #: Mode string, matching ``EngineConfig.mode``.
    mode = "abstract"

    def __init__(self, engine) -> None:
        self._engine = engine

    # Every method below operates under the engine's dup/order/unknown
    # query-id guards: the engine validates ids, the strategy maintains
    # per-query state.

    def subscribe(self, query: DasQuery) -> List[Document]:
        raise NotImplementedError

    def unsubscribe(self, query: DasQuery) -> None:
        raise NotImplementedError

    def publish(self, document: Document) -> List[Notification]:
        raise NotImplementedError

    def results(self, query_id: int) -> List[Document]:
        raise NotImplementedError

    def current_dr(self, query_id: int) -> float:
        raise NotImplementedError

    def checkpoint_state(self) -> Dict:
        """JSON-safe strategy state for ``persistence.checkpoint``."""
        raise NotImplementedError

    def restore_state(self, state: Dict) -> None:
        """Rebuild from :meth:`checkpoint_state` output.  The engine's
        store and ``_queries`` are already restored when this runs."""
        raise NotImplementedError

    def referenced_doc_ids(self) -> Set[int]:
        """Documents the strategy still needs (checkpoint retention)."""
        raise NotImplementedError

    def check_invariants(self) -> List[str]:
        """Mode-specific invariant audit; returns violation descriptions.

        Called by the simulation harness's ``InvariantMonitor`` in place
        of the decay-specific Lemma 1 / Eq. 12 checks."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Window-expiry strategy


class _WindowQueryState:
    """Per-query window state: the retained candidate buffer + top-k."""

    __slots__ = ("query", "window", "candidates", "arrivals", "result", "order")

    def __init__(self, query: DasQuery, window: int, order: int = 0) -> None:
        self.query = query
        self.window = window
        #: doc_id -> (score, seq); score is TRel cached at first
        #: encounter, seq the document's global arrival number.
        self.candidates: Dict[int, Tuple[float, int]] = {}
        #: (seq, doc_id) in arrival order, for O(1) expiry.
        self.arrivals = deque()
        #: Top-k doc ids, best first by (score, seq) descending.
        self.result: List[int] = []
        #: Subscription counter — publish visits affected queries in
        #: subscription order, matching the naive every-state walk.
        self.order = order


class WindowStrategy(Strategy):
    """Count-based sliding window with promotion-on-expiry.

    Publish work is indexed two ways so cost scales with the *affected*
    queries, not the subscribed ones: a term -> query-ids map picks the
    queries that can match the document, and an expiry schedule keyed by
    arrival seq picks the queries with a candidate aging out at exactly
    this arrival (a doc entering query ``q`` at seq ``s`` leaves at seq
    ``s + window_q``; seq advances by one per publish, so each bucket is
    visited exactly when it falls due).  Both are pure indexes over the
    same per-query state the naive walk used — observable behaviour is
    unchanged and stays byte-identical to :class:`WindowOracle`."""

    mode = "window"

    def __init__(self, engine) -> None:
        super().__init__(engine)
        #: Global arrival counter; documents never share a seq, so the
        #: (score, seq) ranking key is a strict total order.
        self._seq = 0
        #: The newest ``config.window_size`` documents, oldest first,
        #: each pinned in the store until it leaves the window.
        self._window = deque()
        self._states: Dict[int, _WindowQueryState] = {}
        self._order = 0
        #: term -> ids of live queries holding that term.
        self._term_queries: Dict[str, Set[int]] = {}
        #: expire seq -> ids of queries with an arrival due then.
        #: Entries for since-unsubscribed queries are skipped on pop.
        self._expiry: Dict[int, List[int]] = {}

    # -- ranking ----------------------------------------------------------

    def _resort(self, state: _WindowQueryState) -> None:
        candidates = state.candidates
        state.result.sort(key=lambda doc_id: candidates[doc_id], reverse=True)

    # -- subscription -----------------------------------------------------

    def subscribe(self, query: DasQuery) -> List[Document]:
        engine = self._engine
        self._order += 1
        state = _WindowQueryState(
            query,
            effective_window(query, engine.config.window_size),
            self._order,
        )
        # Catch-up seeding: score every live window document against the
        # collection statistics *as of now* and cache that score — the
        # same first-encounter caching a post-subscribe arrival gets.
        horizon = self._seq - state.window
        terms = query.terms
        scorer = engine.scorer
        store = engine.store
        for seq, doc_id in self._window:
            if seq <= horizon:
                continue
            document = store.get(doc_id)
            if not any(term in document.vector for term in terms):
                continue
            state.candidates[doc_id] = (
                scorer.trel(terms, document.vector),
                seq,
            )
            state.arrivals.append((seq, doc_id))
        state.result = sorted(
            state.candidates,
            key=lambda doc_id: state.candidates[doc_id],
            reverse=True,
        )[: engine.config.k]
        self._states[query.query_id] = state
        self._index(query)
        for seq, _doc_id in state.arrivals:
            self._expiry.setdefault(seq + state.window, []).append(
                query.query_id
            )
        return [store.get(doc_id) for doc_id in state.result]

    def unsubscribe(self, query: DasQuery) -> None:
        del self._states[query.query_id]
        for term in set(query.terms):
            ids = self._term_queries.get(term)
            if ids is None:
                continue
            ids.discard(query.query_id)
            if not ids:
                del self._term_queries[term]
        # Expiry-schedule entries for this query go stale; publish
        # drops them when their bucket falls due.

    def _index(self, query: DasQuery) -> None:
        for term in set(query.terms):
            self._term_queries.setdefault(term, set()).add(query.query_id)

    # -- document processing ----------------------------------------------

    def publish(self, document: Document) -> List[Notification]:
        engine = self._engine
        if document.created_at > engine.clock.now:
            engine.clock.advance_to(document.created_at)
        engine.stats.add(document.vector)
        engine.store.add(document)
        engine.counters.docs_published += 1
        self._seq += 1
        seq = self._seq
        self._window.append((seq, document.doc_id))
        engine.store.pin(document.doc_id)
        while len(self._window) > engine.config.window_size:
            _old_seq, old_id = self._window.popleft()
            engine.store.unpin(old_id)

        notifications: List[Notification] = []
        vector = document.vector
        k = engine.config.k
        store = engine.store
        counters = engine.counters
        # Affected queries only: the ones with a candidate falling due at
        # this seq (expiry schedule) plus the ones sharing a term with the
        # document (term index).  Every other query's state is provably
        # untouched by the naive every-state walk, so skipping it cannot
        # change behaviour.  Subscription order is preserved for byte-
        # identical notification interleaving.
        matched: Set[int] = set()
        if vector:
            for term in vector.terms():
                ids = self._term_queries.get(term)
                if ids:
                    matched.update(ids)
        due = self._expiry.pop(seq, None)
        affected = matched
        if due:
            states = self._states
            affected = matched.union(q for q in due if q in states)
        for query_id in sorted(
            affected, key=lambda q: self._states[q].order
        ):
            state = self._states[query_id]
            self._expire(state, seq, notifications)
            if query_id not in matched:
                continue
            query = state.query
            counters.queries_evaluated += 1
            score = engine.scorer.trel(query.terms, vector)
            state.candidates[document.doc_id] = (score, seq)
            state.arrivals.append((seq, document.doc_id))
            self._expiry.setdefault(seq + state.window, []).append(query_id)
            result = state.result
            if len(result) < k:
                result.append(document.doc_id)
                self._resort(state)
                counters.matches += 1
                notifications.append(
                    Notification(query.query_id, document, None)
                )
                continue
            worst_id = result[-1]
            if (score, seq) > state.candidates[worst_id]:
                # The displaced member stays in the candidate buffer: it
                # can be promoted back when a newer member expires.
                result[-1] = document.doc_id
                self._resort(state)
                counters.matches += 1
                notifications.append(
                    Notification(
                        query.query_id, document, store.get(worst_id)
                    )
                )
        return notifications

    def _expire(
        self,
        state: _WindowQueryState,
        seq_now: int,
        notifications: List[Notification],
    ) -> None:
        """Age out candidates past the query's window; re-select for any
        expiring top-k member from the retained candidate buffer."""
        horizon = seq_now - state.window
        arrivals = state.arrivals
        if not arrivals or arrivals[0][0] > horizon:
            return
        engine = self._engine
        expired_members: List[int] = []
        while arrivals and arrivals[0][0] <= horizon:
            _seq, doc_id = arrivals.popleft()
            state.candidates.pop(doc_id, None)
            engine.counters.window_expiries += 1
            try:
                state.result.remove(doc_id)
            except ValueError:
                continue
            expired_members.append(doc_id)
        if not expired_members:
            return
        members = set(state.result)
        for expired_id in expired_members:
            best_id = None
            best_key = None
            for doc_id, key in state.candidates.items():
                if doc_id in members:
                    continue
                if best_key is None or key > best_key:
                    best_key = key
                    best_id = doc_id
            if best_id is None:
                continue  # shrink silently: nothing retained to promote
            state.result.append(best_id)
            members.add(best_id)
            engine.counters.window_promotions += 1
            notifications.append(
                Notification(
                    state.query.query_id,
                    engine.store.get(best_id),
                    engine.store.get(expired_id),
                )
            )
        self._resort(state)

    # -- views ------------------------------------------------------------

    def _state_of(self, query_id: int) -> _WindowQueryState:
        return self._states[query_id]

    def results(self, query_id: int) -> List[Document]:
        state = self._state_of(query_id)
        store = self._engine.store
        return [store.get(doc_id) for doc_id in state.result]

    def current_dr(self, query_id: int) -> float:
        state = self._state_of(query_id)
        return sum(
            state.candidates[doc_id][0] for doc_id in state.result
        )

    # -- persistence ------------------------------------------------------

    def checkpoint_state(self) -> Dict:
        return {
            "seq": self._seq,
            "window": [[seq, doc_id] for seq, doc_id in self._window],
            "queries": {
                str(query_id): {
                    "window": state.window,
                    "candidates": [
                        [doc_id, score, seq]
                        for seq, doc_id in state.arrivals
                        for score, _seq in (state.candidates[doc_id],)
                    ],
                    "result": list(state.result),
                }
                for query_id, state in self._states.items()
            },
        }

    def restore_state(self, state: Dict) -> None:
        engine = self._engine
        self._seq = int(state["seq"])
        self._window = deque(
            (int(seq), int(doc_id)) for seq, doc_id in state["window"]
        )
        for _seq, doc_id in self._window:
            engine.store.pin(doc_id)
        self._states = {}
        self._order = 0
        self._term_queries = {}
        self._expiry = {}
        for query_id, query in engine._queries.items():
            row = state["queries"][str(query_id)]
            self._order += 1
            qstate = _WindowQueryState(query, int(row["window"]), self._order)
            for doc_id, score, seq in row["candidates"]:
                qstate.candidates[int(doc_id)] = (float(score), int(seq))
                qstate.arrivals.append((int(seq), int(doc_id)))
                self._expiry.setdefault(
                    int(seq) + qstate.window, []
                ).append(query_id)
            qstate.result = [int(doc_id) for doc_id in row["result"]]
            self._states[query_id] = qstate
            self._index(query)

    def referenced_doc_ids(self) -> Set[int]:
        return {doc_id for _seq, doc_id in self._window}

    # -- invariants --------------------------------------------------------

    def check_invariants(self) -> List[str]:
        violations: List[str] = []
        k = self._engine.config.k
        if len(self._window) > self._engine.config.window_size:
            violations.append(
                f"global window holds {len(self._window)} documents, "
                f"capacity {self._engine.config.window_size}"
            )
        for query_id, state in self._states.items():
            horizon = self._seq - state.window
            if len(state.result) > k:
                violations.append(
                    f"query {query_id} result has {len(state.result)} > k"
                )
            for doc_id in state.result:
                if doc_id not in state.candidates:
                    violations.append(
                        f"query {query_id} result member {doc_id} is not "
                        "a retained candidate"
                    )
            for doc_id, (_score, seq) in state.candidates.items():
                if seq <= horizon:
                    violations.append(
                        f"query {query_id} retains expired candidate "
                        f"{doc_id} (seq {seq} <= horizon {horizon})"
                    )
            # The result must be exactly the top-k of the candidates.
            expected = sorted(
                state.candidates,
                key=lambda doc_id: state.candidates[doc_id],
                reverse=True,
            )[:k]
            if state.result != expected:
                violations.append(
                    f"query {query_id} result {state.result} is not the "
                    f"top-k of its candidate buffer {expected}"
                )
        return violations


# ---------------------------------------------------------------------------
# Spatial-keyword strategy


class _SpatialQueryState:
    """Per-query spatial state: cached member scores + top-k ordering."""

    __slots__ = ("query", "cell", "scores", "result")

    def __init__(self, query: DasQuery, cell: Tuple[int, int]) -> None:
        self.query = query
        self.cell = cell
        #: doc_id -> composed score, members only.
        self.scores: Dict[int, float] = {}
        #: Top-k doc ids, best first by (score, doc_id) descending.
        self.result: List[int] = []


class SpatialStrategy(Strategy):
    """Grid-pruned spatial-keyword top-k."""

    mode = "spatial"

    def __init__(self, engine) -> None:
        super().__init__(engine)
        self._grid = engine.config.spatial_cells
        #: (ix, iy) -> query ids located in the cell, ascending.
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        #: (ix, iy) -> cached min worst-member score (the Eq. 12-style
        #: threshold); invalidated whenever a member result changes.
        self._thresholds: Dict[Tuple[int, int], float] = {}
        self._states: Dict[int, _SpatialQueryState] = {}

    # -- grid -------------------------------------------------------------

    def _cell_of(self, location: Tuple[float, float]) -> Tuple[int, int]:
        grid = self._grid
        return (
            min(int(location[0] * grid), grid - 1),
            min(int(location[1] * grid), grid - 1),
        )

    def _cell_bounds(
        self, cell: Tuple[int, int]
    ) -> Tuple[float, float, float, float]:
        grid = self._grid
        return (
            cell[0] / grid,
            cell[1] / grid,
            (cell[0] + 1) / grid,
            (cell[1] + 1) / grid,
        )

    def _cell_threshold(self, cell: Tuple[int, int]) -> float:
        """Minimum worst-member score over the cell's *full* queries;
        ``-inf`` while any member query is still filling (it admits
        every matching document, so the cell can never be skipped)."""
        try:
            return self._thresholds[cell]
        except KeyError:
            pass
        k = self._engine.config.k
        threshold = float("inf")
        for query_id in self._cells[cell]:
            state = self._states[query_id]
            if len(state.result) < k:
                threshold = _NEG_INF
                break
            worst = state.scores[state.result[-1]]
            if worst < threshold:
                threshold = worst
        self._thresholds[cell] = threshold
        return threshold

    def _resort(self, state: _SpatialQueryState) -> None:
        scores = state.scores
        state.result.sort(
            key=lambda doc_id: (scores[doc_id], doc_id), reverse=True
        )

    # -- subscription -----------------------------------------------------

    def subscribe(self, query: DasQuery) -> List[Document]:
        if query.location is None:
            raise ConfigurationError(
                f"query {query.query_id}: spatial mode requires a "
                "query location"
            )
        x, y = query.location
        if not (0.0 <= x <= 1.0 and 0.0 <= y <= 1.0):
            raise ConfigurationError(
                f"query {query.query_id} location {query.location} is "
                "outside the unit square"
            )
        engine = self._engine
        cell = self._cell_of(query.location)
        state = _SpatialQueryState(query, cell)
        # Seed from the newest stored matching documents, like the decay
        # mode's initializer, but ranked by the composed spatial score.
        seeds = engine.store.recent_matching(
            query.terms, engine.config.init_scan_limit
        )
        for document in seeds:
            state.scores[document.doc_id] = self._score(query, document)
        state.result = sorted(
            state.scores,
            key=lambda doc_id: (state.scores[doc_id], doc_id),
            reverse=True,
        )[: engine.config.k]
        state.scores = {
            doc_id: state.scores[doc_id] for doc_id in state.result
        }
        for doc_id in state.result:
            engine.store.pin(doc_id)
        self._states[query.query_id] = state
        self._cells.setdefault(cell, []).append(query.query_id)
        self._thresholds.pop(cell, None)
        return [engine.store.get(doc_id) for doc_id in state.result]

    def unsubscribe(self, query: DasQuery) -> None:
        state = self._states.pop(query.query_id)
        for doc_id in state.result:
            self._engine.store.unpin(doc_id)
        members = self._cells[state.cell]
        members.remove(query.query_id)
        if not members:
            del self._cells[state.cell]
        self._thresholds.pop(state.cell, None)

    # -- scoring ----------------------------------------------------------

    def _score(self, query: DasQuery, document: Document) -> float:
        engine = self._engine
        trel = engine.scorer.trel(query.terms, document.vector)
        proximity = spatial_proximity(query.location, document.location)
        return spatial_score(
            proximity, trel, engine.config.spatial_weight
        )

    # -- document processing ----------------------------------------------

    def publish(self, document: Document) -> List[Notification]:
        engine = self._engine
        if document.created_at > engine.clock.now:
            engine.clock.advance_to(document.created_at)
        engine.stats.add(document.vector)
        engine.store.add(document)
        engine.counters.docs_published += 1
        notifications: List[Notification] = []
        vector = document.vector
        if not vector:
            return notifications
        # TRel̃ upper bound: every PS factor is <= 1 and a matching query
        # shares at least one document term, so the largest document-term
        # PS dominates the text relevance of every reachable query
        # (the Eq. 18 argument).
        trel_upper = max(
            engine.scorer.ps(vector, term) for term in vector.terms()
        )
        weight = engine.config.spatial_weight
        k = engine.config.k
        counters = engine.counters
        for cell in sorted(self._cells):
            proximity_upper = cell_proximity_upper_bound(
                self._cell_bounds(cell), document.location
            )
            if spatial_cell_filters_out(
                proximity_upper,
                trel_upper,
                self._cell_threshold(cell),
                weight,
            ):
                counters.cells_skipped += 1
                continue
            counters.cells_visited += 1
            for query_id in self._cells[cell]:
                state = self._states[query_id]
                query = state.query
                if not any(t in vector for t in query.terms):
                    continue
                counters.queries_evaluated += 1
                score = self._score(query, document)
                result = state.result
                if len(result) < k:
                    state.scores[document.doc_id] = score
                    result.append(document.doc_id)
                    self._resort(state)
                    engine.store.pin(document.doc_id)
                    counters.matches += 1
                    notifications.append(
                        Notification(query_id, document, None)
                    )
                    self._thresholds.pop(cell, None)
                    continue
                worst_id = result[-1]
                if score > state.scores[worst_id] + TIE_EPSILON:
                    del state.scores[worst_id]
                    state.scores[document.doc_id] = score
                    result[-1] = document.doc_id
                    self._resort(state)
                    engine.store.unpin(worst_id)
                    engine.store.pin(document.doc_id)
                    counters.matches += 1
                    notifications.append(
                        Notification(
                            query_id,
                            document,
                            engine.store.get(worst_id),
                        )
                    )
                    self._thresholds.pop(cell, None)
        return notifications

    # -- views ------------------------------------------------------------

    def results(self, query_id: int) -> List[Document]:
        state = self._states[query_id]
        store = self._engine.store
        return [store.get(doc_id) for doc_id in state.result]

    def current_dr(self, query_id: int) -> float:
        state = self._states[query_id]
        return sum(state.scores[doc_id] for doc_id in state.result)

    # -- persistence ------------------------------------------------------

    def checkpoint_state(self) -> Dict:
        return {
            "queries": {
                str(query_id): {
                    "result": [
                        [doc_id, state.scores[doc_id]]
                        for doc_id in state.result
                    ]
                }
                for query_id, state in self._states.items()
            }
        }

    def restore_state(self, state: Dict) -> None:
        engine = self._engine
        self._states = {}
        self._cells = {}
        self._thresholds = {}
        for query_id, query in engine._queries.items():
            row = state["queries"][str(query_id)]
            cell = self._cell_of(query.location)
            qstate = _SpatialQueryState(query, cell)
            for doc_id, score in row["result"]:
                qstate.scores[int(doc_id)] = float(score)
                qstate.result.append(int(doc_id))
                engine.store.pin(int(doc_id))
            self._states[query_id] = qstate
            self._cells.setdefault(cell, []).append(query_id)

    def referenced_doc_ids(self) -> Set[int]:
        referenced: Set[int] = set()
        for state in self._states.values():
            referenced.update(state.result)
        return referenced

    # -- invariants --------------------------------------------------------

    def check_invariants(self) -> List[str]:
        violations: List[str] = []
        engine = self._engine
        k = engine.config.k
        for query_id, state in self._states.items():
            if len(state.result) > k:
                violations.append(
                    f"query {query_id} result has {len(state.result)} > k"
                )
            if self._cell_of(state.query.location) != state.cell:
                violations.append(
                    f"query {query_id} is filed in cell {state.cell}, "
                    f"expected {self._cell_of(state.query.location)}"
                )
            if query_id not in self._cells.get(state.cell, []):
                violations.append(
                    f"query {query_id} missing from its grid cell "
                    f"{state.cell}"
                )
            expected = sorted(
                state.scores,
                key=lambda doc_id: (state.scores[doc_id], doc_id),
                reverse=True,
            )
            if state.result != expected:
                violations.append(
                    f"query {query_id} result ordering {state.result} "
                    f"!= score ordering {expected}"
                )
            for doc_id in state.result:
                document = engine.store.get(doc_id)
                if not any(
                    t in document.vector for t in state.query.terms
                ):
                    violations.append(
                        f"query {query_id} member {doc_id} shares no "
                        "keyword with the query"
                    )
        # Cached thresholds must match a fresh recomputation.
        for cell, cached in list(self._thresholds.items()):
            self._thresholds.pop(cell)
            if self._cell_threshold(cell) != cached:
                violations.append(
                    f"cell {cell} cached threshold {cached} is stale "
                    f"(exact {self._thresholds[cell]})"
                )
        return violations
