"""Columnar mirrors of per-query summary state (ISSUE 6 tentpole).

The scalar block-metadata refresh (:meth:`PostingsBlock.refresh_metadata`)
walks every member's result set and recomputes ``static_dr_oldest`` from
scratch — an O(members × k) pass per dirty block.  The engine already
*knows* each query's oldest-entry summary the moment a result set
changes; this module keeps those three scalars (static DR of the oldest
result, its TRel, its creation time) in parallel numpy arrays indexed by
a stable per-query slot, so a dirty block refreshes with one vectorized
gather + min/max reduction instead of a Python loop.

Bit-identity contract: ``update`` stores values produced by the *same*
scalar code path (``QueryResultSet.static_dr_oldest``) that the scalar
refresh would call, as float64.  A min/max over identical float64s is
order-independent and exact, so columnar and scalar refreshes yield
bit-identical block summaries — PAPER-mode thresholds included.

The mirror is an acceleration structure only: engines on the pure-python
backend never build it, and ``REPRO_DISABLE_COLUMNAR=1`` turns it off
everywhere (the differential suite runs both ways).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via engines, not direct import
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

_INITIAL_CAPACITY = 64


class QuerySummaryColumns:
    """Slot-addressed columnar store of per-query oldest-result summaries.

    Columns (all float64 / bool, parallel, capacity-doubled):

    - ``static_dr``: ``alpha*TRel(d_e) + coeff*((k-1) - sim_acc(d_e))``
      for the oldest result ``d_e`` — the static part of Eq. 13's
      threshold, exactly as :meth:`QueryResultSet.static_dr_oldest`
      computes it.
    - ``trel_de``: the oldest result's cached TRel.
    - ``created_de``: the oldest result's creation timestamp.
    - ``filled``: True iff the query's result set holds k results
      (warm-up queries don't participate in block thresholds).

    Slots are recycled through a free list so long-running subscribe /
    unsubscribe churn doesn't grow the arrays unboundedly.
    """

    __slots__ = (
        "static_dr",
        "trel_de",
        "created_de",
        "filled",
        "slot_of",
        "_free",
        "_next",
    )

    def __init__(self) -> None:
        if np is None:  # pragma: no cover - guarded by engine gating
            raise RuntimeError("QuerySummaryColumns requires numpy")
        capacity = _INITIAL_CAPACITY
        self.static_dr = np.zeros(capacity, dtype=np.float64)
        self.trel_de = np.zeros(capacity, dtype=np.float64)
        self.created_de = np.zeros(capacity, dtype=np.float64)
        self.filled = np.zeros(capacity, dtype=np.bool_)
        self.slot_of: Dict[int, int] = {}
        self._free: List[int] = []
        self._next = 0

    def _grow_to(self, capacity: int) -> None:
        current = len(self.static_dr)
        new_capacity = current
        while new_capacity < capacity:
            new_capacity *= 2
        if new_capacity == current:
            return
        for name in ("static_dr", "trel_de", "created_de"):
            old = getattr(self, name)
            grown = np.zeros(new_capacity, dtype=np.float64)
            grown[:current] = old
            setattr(self, name, grown)
        grown_filled = np.zeros(new_capacity, dtype=np.bool_)
        grown_filled[:current] = self.filled
        self.filled = grown_filled

    def assign(self, query_id: int) -> int:
        """Allocate (or return) the slot for ``query_id``."""
        slot = self.slot_of.get(query_id)
        if slot is not None:
            return slot
        if self._free:
            slot = self._free.pop()
        else:
            slot = self._next
            self._next += 1
            self._grow_to(self._next)
        self.slot_of[query_id] = slot
        self.filled[slot] = False
        return slot

    def release(self, query_id: int) -> None:
        """Return ``query_id``'s slot to the free list."""
        slot = self.slot_of.pop(query_id, None)
        if slot is None:
            return
        self.filled[slot] = False
        self._free.append(slot)

    def update(self, query_id: int, result_set, alpha: float, coeff: float) -> None:
        """Refresh ``query_id``'s columns from its (scalar) result set."""
        slot = self.slot_of.get(query_id)
        if slot is None:
            slot = self.assign(query_id)
        if not result_set.is_full:
            self.filled[slot] = False
            return
        oldest = result_set.oldest
        self.static_dr[slot] = result_set.static_dr_oldest(alpha, coeff)
        self.trel_de[slot] = oldest.trel
        self.created_de[slot] = oldest.document.created_at
        self.filled[slot] = True

    def slots_for(self, query_ids: Sequence[int]):
        """Slot index array for ``query_ids``; None if any id is unknown."""
        slot_of = self.slot_of
        try:
            slots = [slot_of[query_id] for query_id in query_ids]
        except KeyError:
            return None
        return np.asarray(slots, dtype=np.intp)

    def summarize(self, slots) -> Optional[Tuple[float, float, float]]:
        """``(dtrel_min, trel_max_de, earliest_de)`` over ``slots``.

        Returns None when any member is unfilled (warm-up) — the caller
        falls back to the scalar refresh, which knows how to skip
        unfilled members.
        """
        filled = self.filled.take(slots)
        if not filled.all():
            return None
        static = self.static_dr.take(slots)
        trel = self.trel_de.take(slots)
        created = self.created_de.take(slots)
        return (
            float(static.min()),
            # The scalar refresh seeds trel_max at 0.0; clamp to match.
            max(0.0, float(trel.max())),
            float(created.min()),
        )
