"""Engine output events."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.stream.document import Document


@dataclass(frozen=True)
class Notification:
    """A result-set change pushed to a subscriber.

    ``replaced`` is None during warm-up (the result set was still
    filling) and carries the evicted oldest document otherwise.
    """

    query_id: int
    document: Document
    replaced: Optional[Document] = None

    @property
    def is_replacement(self) -> bool:
        return self.replaced is not None
