"""Filtering conditions and bounds (Sections 4-5, Lemmas 2-4 and 7).

Free functions over block summaries and precomputed per-document values,
so both the engine and the test-suite (which checks every bound against
its exact counterpart) can call them directly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import GroupBoundMode
from repro.core.blocks import PostingsBlock
from repro.core.mcs import min_similarity_floor
from repro.kernels import default_kernels
from repro.scoring.diversity import diversity_coefficient
from repro.scoring.recency import ExponentialDecay
from repro.text.vectors import TermVector

#: Strict-improvement guard: a replacement must beat the old contribution
#: by more than this margin.  Mathematical ties (common with duplicated
#: documents) then resolve identically across engines despite different
#: floating-point evaluation orders.
TIE_EPSILON = 1e-9

_NEG_INF = float("-inf")


def accepts(dr_new: float, dr_oldest: float) -> bool:
    """Definition 2/3: the new document wins only on strict improvement."""
    return dr_new > dr_oldest + TIE_EPSILON


def quick_relevance_bound(trel_new: float, alpha: float) -> float:
    """Appendix A.1's cheap upper bound on ``dr_q(d_n)``.

    Treat every dissimilarity as its maximum 1:
    ``dr_q(d_n) <= α·TRel(q, d_n) + 2(1-α)``.
    """
    return alpha * trel_new + 2.0 * (1.0 - alpha)


def threshold_from_summaries(
    dtrel_min: float,
    trel_max_de: float,
    recency: float,
    alpha: float,
) -> float:
    """The Eq. 12 threshold arithmetic over bare scalars.

    Shared by the scalar path and the columnar refresh so both sides
    evaluate the identical float expression (bit-identity is what lets
    the columnar layout stand in for the object walk)."""
    return dtrel_min - alpha * trel_max_de * (1.0 - recency)


def block_threshold_lower_bound(
    block: PostingsBlock,
    decay: ExponentialDecay,
    now: float,
    alpha: float,
) -> float:
    """``FT̃_b`` (Eq. 12, Lemma 2) from the block's O(1) summaries.

    The threshold covers the block's *filled* members; warm-up members
    admit everything and are evaluated individually by the engine.  A
    block with no filled member has no threshold (-inf).
    """
    if block.dtrel_min == _NEG_INF:
        return _NEG_INF
    recency = decay.at(block.earliest_de, now)
    return threshold_from_summaries(
        block.dtrel_min, block.trel_max_de, recency, alpha
    )


def block_trel_upper_bound(active_ps_values: Sequence[float]) -> float:
    """``TRel̃_max(b, d_n)`` (Eq. 18, Lemma 4).

    ``active_ps_values`` are the ``PS(d_n, w_i)`` of the document terms
    whose postings cursor has not yet passed the block.  Because every
    ``PS`` is at most 1, the product over a query's keywords cannot
    exceed any single factor, hence the maximum single factor bounds the
    block's best text relevance.
    """
    return max(active_ps_values) if active_ps_values else 0.0


def block_similarity_lower_bound(
    block: PostingsBlock,
    vector: TermVector,
    term: str,
    k: int,
    mode: GroupBoundMode,
    kernels=None,
) -> float:
    """``Sim̃_min(b, d_n)`` (Eq. 19) from the block's MCS summary.

    ``PAPER`` follows Eq. 19 verbatim — ``k - |S|`` residual slots, each
    floored at ``minSim(U_w(b), d_n)`` (Eq. 20).  ``STRICT`` assumes only
    ``k - 1 - |S|`` residual slots at similarity 0, which is provably a
    lower bound of the true minimum (see DESIGN.md §2).

    The per-cover minimum similarities are evaluated by the ``kernels``
    backend (pure Python by default) over a packed form cached on the
    block and keyed by the identity of its cover list, so it survives
    exactly as long as the MCS summary itself.
    """
    covers = block.mcs_sets
    if not covers:
        if mode is GroupBoundMode.STRICT:
            return 0.0
        floor = min_similarity_floor(
            block.universe_min_tf, block.universe_max_norm, term, vector
        )
        return floor * k if block.mcs_sets is not None else 0.0
    if kernels is None:
        kernels = default_kernels()
    cache = block.covers_cache
    if cache is None or cache[0] is not covers or cache[1] is not kernels:
        cache = (covers, kernels, kernels.pack_covers(covers))
        block.covers_cache = cache
    total = kernels.cover_min_sim_sum(cache[2], covers, vector)
    if mode is GroupBoundMode.STRICT:
        residual_slots = (k - 1) - len(covers)
        floor = 0.0
    else:
        residual_slots = k - len(covers)
        floor = min_similarity_floor(
            block.universe_min_tf, block.universe_max_norm, term, vector
        )
    if residual_slots > 0 and floor > 0.0:
        total += floor * residual_slots
    return total


def group_filters_out(
    trel_upper: float,
    sim_lower: float,
    threshold_lower: float,
    alpha: float,
    k: int,
    coeff: Optional[float] = None,
) -> bool:
    """Lemma 7: the whole block can be skipped for this document.

    ``coeff`` is the diversity coefficient ``(2-2α)/(k-1)``; pass it to
    avoid recomputing the loop-invariant value on every check.
    """
    if coeff is None:
        coeff = diversity_coefficient(alpha, k)
    upper = alpha * trel_upper + coeff * ((k - 1) - sim_lower)
    return upper <= threshold_lower


def exact_group_threshold(
    result_sets,
    query_ids: Sequence[int],
    decay: ExponentialDecay,
    now: float,
    alpha: float,
) -> float:
    """``min{dr_{q_i}(q_i.d_e)}`` — the exact value Lemma 2 lower-bounds.

    Reference implementation used by tests; returns -inf if any member is
    unfilled.
    """
    threshold = float("inf")
    for query_id in query_ids:
        result_set = result_sets[query_id]
        if not result_set.is_full:
            return _NEG_INF
        value = result_set.dr_oldest(now, decay, alpha)
        if value < threshold:
            threshold = value
    return threshold
