"""Filtering conditions and bounds (Sections 4-5, Lemmas 2-4 and 7).

Free functions over block summaries and precomputed per-document values,
so both the engine and the test-suite (which checks every bound against
its exact counterpart) can call them directly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import GroupBoundMode
from repro.core.blocks import PostingsBlock
from repro.core.mcs import min_similarity_floor
from repro.kernels import default_kernels
from repro.scoring.diversity import diversity_coefficient
from repro.scoring.recency import ExponentialDecay
from repro.text.vectors import TermVector

#: Strict-improvement guard: a replacement must beat the old contribution
#: by more than this margin.  Mathematical ties (common with duplicated
#: documents) then resolve identically across engines despite different
#: floating-point evaluation orders.
TIE_EPSILON = 1e-9

_NEG_INF = float("-inf")


def accepts(dr_new: float, dr_oldest: float) -> bool:
    """Definition 2/3: the new document wins only on strict improvement."""
    return dr_new > dr_oldest + TIE_EPSILON


def quick_relevance_bound(trel_new: float, alpha: float) -> float:
    """Appendix A.1's cheap upper bound on ``dr_q(d_n)``.

    Treat every dissimilarity as its maximum 1:
    ``dr_q(d_n) <= α·TRel(q, d_n) + 2(1-α)``.
    """
    return alpha * trel_new + 2.0 * (1.0 - alpha)


def threshold_from_summaries(
    dtrel_min: float,
    trel_max_de: float,
    recency: float,
    alpha: float,
) -> float:
    """The Eq. 12 threshold arithmetic over bare scalars.

    Shared by the scalar path and the columnar refresh so both sides
    evaluate the identical float expression (bit-identity is what lets
    the columnar layout stand in for the object walk)."""
    return dtrel_min - alpha * trel_max_de * (1.0 - recency)


def block_threshold_lower_bound(
    block: PostingsBlock,
    decay: ExponentialDecay,
    now: float,
    alpha: float,
) -> float:
    """``FT̃_b`` (Eq. 12, Lemma 2) from the block's O(1) summaries.

    The threshold covers the block's *filled* members; warm-up members
    admit everything and are evaluated individually by the engine.  A
    block with no filled member has no threshold (-inf).
    """
    if block.dtrel_min == _NEG_INF:
        return _NEG_INF
    recency = decay.at(block.earliest_de, now)
    return threshold_from_summaries(
        block.dtrel_min, block.trel_max_de, recency, alpha
    )


def block_trel_upper_bound(active_ps_values: Sequence[float]) -> float:
    """``TRel̃_max(b, d_n)`` (Eq. 18, Lemma 4).

    ``active_ps_values`` are the ``PS(d_n, w_i)`` of the document terms
    whose postings cursor has not yet passed the block.  Because every
    ``PS`` is at most 1, the product over a query's keywords cannot
    exceed any single factor, hence the maximum single factor bounds the
    block's best text relevance.
    """
    return max(active_ps_values) if active_ps_values else 0.0


def block_similarity_lower_bound(
    block: PostingsBlock,
    vector: TermVector,
    term: str,
    k: int,
    mode: GroupBoundMode,
    kernels=None,
) -> float:
    """``Sim̃_min(b, d_n)`` (Eq. 19) from the block's MCS summary.

    ``PAPER`` follows Eq. 19 verbatim — ``k - |S|`` residual slots, each
    floored at ``minSim(U_w(b), d_n)`` (Eq. 20).  ``STRICT`` assumes only
    ``k - 1 - |S|`` residual slots at similarity 0, which is provably a
    lower bound of the true minimum (see DESIGN.md §2).

    The per-cover minimum similarities are evaluated by the ``kernels``
    backend (pure Python by default) over a packed form cached on the
    block and keyed by the identity of its cover list, so it survives
    exactly as long as the MCS summary itself.
    """
    covers = block.mcs_sets
    if not covers:
        if mode is GroupBoundMode.STRICT:
            return 0.0
        floor = min_similarity_floor(
            block.universe_min_tf, block.universe_max_norm, term, vector
        )
        return floor * k if block.mcs_sets is not None else 0.0
    if kernels is None:
        kernels = default_kernels()
    cache = block.covers_cache
    if cache is None or cache[0] is not covers or cache[1] is not kernels:
        cache = (covers, kernels, kernels.pack_covers(covers))
        block.covers_cache = cache
    total = kernels.cover_min_sim_sum(cache[2], covers, vector)
    if mode is GroupBoundMode.STRICT:
        residual_slots = (k - 1) - len(covers)
        floor = 0.0
    else:
        residual_slots = k - len(covers)
        floor = min_similarity_floor(
            block.universe_min_tf, block.universe_max_norm, term, vector
        )
    if residual_slots > 0 and floor > 0.0:
        total += floor * residual_slots
    return total


def group_filters_out(
    trel_upper: float,
    sim_lower: float,
    threshold_lower: float,
    alpha: float,
    k: int,
    coeff: Optional[float] = None,
) -> bool:
    """Lemma 7: the whole block can be skipped for this document.

    ``coeff`` is the diversity coefficient ``(2-2α)/(k-1)``; pass it to
    avoid recomputing the loop-invariant value on every check.
    """
    if coeff is None:
        coeff = diversity_coefficient(alpha, k)
    upper = alpha * trel_upper + coeff * ((k - 1) - sim_lower)
    return upper <= threshold_lower


#: Diagonal of the unit square — the maximum possible distance between a
#: query location and a document location, used to normalise proximity.
UNIT_DIAGONAL = 2.0 ** 0.5


def spatial_proximity(
    query_location: Optional[Sequence[float]],
    doc_location: Optional[Sequence[float]],
) -> float:
    """Distance-weighted proximity in ``[0, 1]`` over the unit square.

    ``1 - dist / sqrt(2)``: 1 at co-location, 0 at opposite corners.  A
    document without a location contributes zero proximity (it can still
    win on text relevance alone).
    """
    if query_location is None or doc_location is None:
        return 0.0
    dx = query_location[0] - doc_location[0]
    dy = query_location[1] - doc_location[1]
    return 1.0 - (dx * dx + dy * dy) ** 0.5 / UNIT_DIAGONAL


def spatial_score(
    proximity: float, trel: float, spatial_weight: float
) -> float:
    """The composed spatial-keyword score ``w·prox + (1-w)·TRel``.

    One shared expression so the engine-side grid path and the
    brute-force oracle evaluate the identical float arithmetic."""
    return spatial_weight * proximity + (1.0 - spatial_weight) * trel


def cell_proximity_upper_bound(
    cell_bounds: Sequence[float],
    doc_location: Optional[Sequence[float]],
) -> float:
    """Upper bound on :func:`spatial_proximity` over a grid cell.

    ``cell_bounds`` is ``(x0, y0, x1, y1)``; the bound uses the minimum
    distance from the document location to the cell rectangle, so it
    dominates the proximity of every query located inside the cell.
    """
    if doc_location is None:
        return 0.0
    x0, y0, x1, y1 = cell_bounds
    x, y = doc_location
    dx = max(x0 - x, 0.0, x - x1)
    dy = max(y0 - y, 0.0, y - y1)
    return 1.0 - (dx * dx + dy * dy) ** 0.5 / UNIT_DIAGONAL


def spatial_cell_filters_out(
    proximity_upper: float,
    trel_upper: float,
    cell_threshold: float,
    spatial_weight: float,
) -> bool:
    """Eq. 12-style skip discipline for one grid cell.

    ``cell_threshold`` is the minimum worst-member score over the cell's
    *full* queries (``-inf`` while any is filling).  Admission demands a
    strict ``score > worst + TIE_EPSILON`` improvement and the composed
    upper bound dominates every admissible score in the cell, so a
    positive verdict can never drop a qualifying query."""
    upper = spatial_score(proximity_upper, trel_upper, spatial_weight)
    return upper <= cell_threshold + TIE_EPSILON


def exact_group_threshold(
    result_sets,
    query_ids: Sequence[int],
    decay: ExponentialDecay,
    now: float,
    alpha: float,
) -> float:
    """``min{dr_{q_i}(q_i.d_e)}`` — the exact value Lemma 2 lower-bounds.

    Reference implementation used by tests; returns -inf if any member is
    unfilled.
    """
    threshold = float("inf")
    for query_id in query_ids:
        result_set = result_sets[query_id]
        if not result_set.is_full:
            return _NEG_INF
        value = result_set.dr_oldest(now, decay, alpha)
        if value < threshold:
            threshold = value
    return threshold
