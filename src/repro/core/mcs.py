"""Minimal Covering Sets (Definitions 4-5) and GreedyMcsGen (Algorithm 1).

For a block ``b`` in term ``w``'s postings list, the *universe*
``U_w(b)`` holds the documents that (1) appear in some member query's
result minus its oldest document and (2) contain ``w``.  A minimal
covering set is a set of universe documents such that every query of the
block holds at least one of them; maximising the number of *disjoint*
MCSs is NP-hard (Theorem 1), so :func:`greedy_mcs_gen` implements the
paper's greedy algorithm (approximation ratio ``s_max/2 + ε``,
Theorem 2), with two robustness refinements over the pseudo-code:

* an incomplete cover (the universe ran dry, or some query has no
  universe document at all) is *discarded* rather than emitted — an
  incomplete "MCS" would make the group bound of Eq. 19 unsafe;
* each emitted cover is post-minimised (redundant members are dropped and
  returned to the universe), enforcing Definition 5's condition (2).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.result_set import QueryResultSet
from repro.stream.document import Document


class CoverSet:
    """One minimal covering set: member documents plus their id set.

    The id frozenset makes invalidation checks (does this cover contain a
    document that just left some member query's result?) O(1) per id
    instead of a scan — invalidation runs on every result update, so this
    is a hot path.
    """

    __slots__ = ("documents", "doc_ids")

    def __init__(self, documents: Sequence[Document]) -> None:
        self.documents: Tuple[Document, ...] = tuple(documents)
        self.doc_ids: FrozenSet[int] = frozenset(
            document.doc_id for document in documents
        )

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self):
        return iter(self.documents)

    def __repr__(self) -> str:
        return f"CoverSet({sorted(self.doc_ids)})"


class BlockUniverse:
    """``U_w(b)`` plus the per-document coverage map ``Q_s(b, d)``.

    Attributes
    ----------
    documents:
        doc_id -> :class:`Document` for every universe member.
    coverage:
        doc_id -> set of query ids whose result (minus the oldest) holds
        the document.
    min_term_frequency / max_norm:
        ``min{tf_w(d)}`` and ``max{||d||}`` over the universe — the
        time-independent ingredients of ``minSim`` (Eq. 20).
    """

    __slots__ = ("term", "documents", "coverage", "min_term_frequency", "max_norm")

    def __init__(self, term: str) -> None:
        self.term = term
        self.documents: Dict[int, Document] = {}
        self.coverage: Dict[int, Set[int]] = {}
        self.min_term_frequency: int = 0
        self.max_norm: float = 0.0

    @property
    def is_empty(self) -> bool:
        return not self.documents


def build_universe(
    term: str,
    query_ids: Iterable[int],
    result_sets: Dict[int, QueryResultSet],
) -> BlockUniverse:
    """Collect ``U_w(b)`` from the block members' current results."""
    universe = BlockUniverse(term)
    min_tf: int = 0
    max_norm: float = 0.0
    for query_id in query_ids:
        result_set = result_sets[query_id]
        for entry in result_set.entries[1:]:
            document = entry.document
            tf = document.vector.frequency(term)
            if tf == 0:
                continue
            doc_id = document.doc_id
            holders = universe.coverage.get(doc_id)
            if holders is None:
                universe.documents[doc_id] = document
                universe.coverage[doc_id] = {query_id}
                if min_tf == 0 or tf < min_tf:
                    min_tf = tf
                if document.vector.norm > max_norm:
                    max_norm = document.vector.norm
            else:
                holders.add(query_id)
    universe.min_term_frequency = min_tf
    universe.max_norm = max_norm
    return universe


def greedy_mcs_gen(
    query_ids: Sequence[int],
    universe: BlockUniverse,
) -> List[CoverSet]:
    """Algorithm 1: greedily emit disjoint minimal covering sets.

    Returns MCSs as :class:`CoverSet` objects holding :class:`Document`
    references (resolved once, so bound evaluation needs no store
    lookups).

    Coverage sets are folded into integer bitmasks (one bit per block
    member) so the inner greedy loop — "which remaining document covers
    the most uncovered queries" — is an AND plus a popcount instead of a
    set intersection.  Selection order (including tie-breaks) is
    identical to the direct set formulation.
    """
    all_queries = set(query_ids)
    if not all_queries or universe.is_empty:
        return []
    bit_of = {query_id: 1 << i for i, query_id in enumerate(all_queries)}
    full_mask = (1 << len(bit_of)) - 1
    coverage = universe.coverage
    cover_mask: Dict[int, int] = {}
    for doc_id, holders in coverage.items():
        mask = 0
        for query_id in holders:
            # Holders outside the block's queries contribute nothing
            # (the set formulation intersected them away).
            bit = bit_of.get(query_id)
            if bit is not None:
                mask |= bit
        cover_mask[doc_id] = mask
    remaining: Set[int] = set(universe.documents)
    covers: List[CoverSet] = []
    while remaining:
        selected: List[int] = []
        uncovered = full_mask
        while uncovered:
            best_doc = -1
            best_count = 0
            for doc_id in remaining:
                count = (cover_mask[doc_id] & uncovered).bit_count()
                if count > best_count:
                    best_count = count
                    best_doc = doc_id
            if best_doc < 0:
                break  # no universe document covers the rest
            selected.append(best_doc)
            remaining.discard(best_doc)
            uncovered &= ~cover_mask[best_doc]
        if uncovered:
            # Incomplete cover: put the members back and stop — later
            # passes cannot do better because `remaining` only shrank.
            remaining.update(selected)
            break
        minimal = _minimise_cover(selected, cover_mask, full_mask)
        for doc_id in selected:
            if doc_id not in minimal:
                remaining.add(doc_id)
        covers.append(
            CoverSet([universe.documents[doc_id] for doc_id in minimal])
        )
    return covers


def _minimise_cover(
    selected: Sequence[int],
    cover_mask: Dict[int, int],
    full_mask: int,
) -> Set[int]:
    """Drop members whose removal keeps the set covering (Def. 5 (2))."""
    kept: Set[int] = set(selected)
    for doc_id in list(selected):
        without = kept - {doc_id}
        if not without:
            continue
        covered = 0
        for other in without:
            covered |= cover_mask[other]
        if covered & full_mask == full_mask:
            kept = without
    return kept


def verify_cover(
    cover: Iterable[Document],
    coverage: Dict[int, Set[int]],
    all_queries: Set[int],
) -> bool:
    """True iff every query of the block holds a member of ``cover``."""
    covered: Set[int] = set()
    for document in cover:
        covered |= coverage.get(document.doc_id, set())
    return covered >= all_queries


def make_universe_for_benchmark(
    n_queries: int,
    n_documents: int,
    seed: int = 0,
    coverage_probability: float = 0.25,
) -> Tuple[BlockUniverse, List[int]]:
    """Synthetic universe for benchmarking :func:`greedy_mcs_gen`.

    Each document covers every query independently with
    ``coverage_probability``, plus one guaranteed "hub" document covering
    everything so at least one cover always exists.
    """
    import random

    from repro.text.vectors import TermVector

    rng = random.Random(seed)
    query_ids = list(range(n_queries))
    universe = BlockUniverse("w")
    for doc_id in range(n_documents):
        holders = {
            query_id
            for query_id in query_ids
            if rng.random() < coverage_probability
        }
        if doc_id == 0:
            holders = set(query_ids)
        if not holders:
            continue
        universe.documents[doc_id] = Document(
            doc_id, TermVector({"w": 1}), float(doc_id)
        )
        universe.coverage[doc_id] = holders
    universe.min_term_frequency = 1
    universe.max_norm = 1.0
    return universe, query_ids


def min_similarity_floor(
    universe_min_tf: int,
    universe_max_norm: float,
    term: str,
    vector,
) -> float:
    """``minSim(U_w(b), d_n)`` (Eq. 20).

    Zero when the universe is empty or the new document lacks the term
    (the latter cannot happen on the traversal path, but keeps the
    function total).
    """
    if universe_min_tf <= 0 or universe_max_norm <= 0.0:
        return 0.0
    tf_new = vector.frequency(term)
    if tf_new == 0 or vector.norm == 0.0:
        return 0.0
    return (universe_min_tf * tf_new) / (universe_max_norm * vector.norm)
