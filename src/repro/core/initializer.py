"""Result-set initialisation for new subscriptions (Section 3).

"When the system receives a DAS query, the query is firstly initialized
by traversing the document lists" — the store's recent matching
documents seed the result set.  Two strategies are provided:

``relevant`` (default)
    The k candidates with the best ``α · R(q, d)`` (relevance × recency)
    scores.  This is what ranked retrieval over the document lists gives
    and seeds the result set with strong filtering thresholds — the
    replacement rule then diversifies it as the stream flows.

``recent``
    The k most recent matching documents, in arrival order.  Cheapest;
    thresholds start weak, so early match rates are high.

``greedy``
    Greedy max-sum construction: repeatedly add the candidate with the
    best marginal ``α·R + (2-2α)/(k-1)·Σ d(·, selected)`` contribution.
    Matches the DR objective best at subscription time at O(k·m)
    similarity cost over m candidates (m is capped at ``4k``).

All strategies are shared by the optimised engine and the naive oracle,
so their states agree from the first published document onward.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.scoring.diversity import diversity_coefficient
from repro.scoring.recency import ExponentialDecay
from repro.scoring.relevance import LanguageModelScorer
from repro.stream.document import Document
from repro.stream.document_store import DocumentStore
from repro.text.vectors import dissimilarity

INIT_STRATEGIES = ("relevant", "recent", "greedy")
DEFAULT_INIT_STRATEGY = "relevant"


def select_initial_documents(
    store: DocumentStore,
    terms: Sequence[str],
    k: int,
    scan_limit: int,
    strategy: str = DEFAULT_INIT_STRATEGY,
    scorer: LanguageModelScorer = None,
    decay: ExponentialDecay = None,
    now: float = 0.0,
    alpha: float = 0.3,
) -> List[Document]:
    """Choose up to ``k`` seed documents, returned in arrival order.

    The returned list is sorted ascending by document id so the caller
    can admit them sequentially (each admit treats its document as the
    newest so far).
    """
    if strategy not in INIT_STRATEGIES:
        raise ValueError(
            f"unknown init strategy {strategy!r}; expected one of {INIT_STRATEGIES}"
        )
    candidates = store.recent_matching(terms, scan_limit)
    if not candidates:
        return []
    if strategy == "recent" or len(candidates) <= k:
        chosen = candidates[:k]
    elif strategy == "relevant":
        if scorer is None or decay is None:
            raise ValueError("relevant initialisation needs a scorer and decay")
        terms = tuple(terms)
        chosen = sorted(
            candidates,
            key=lambda document: (
                scorer.trel(terms, document.vector)
                * decay.at(document.created_at, now)
            ),
            reverse=True,
        )[:k]
    else:
        if scorer is None or decay is None:
            raise ValueError("greedy initialisation needs a scorer and decay")
        # Pre-truncate by relevance so the O(k·m) similarity work stays
        # bounded even with large scan limits.
        if len(candidates) > 4 * k:
            terms_tuple = tuple(terms)
            candidates = sorted(
                candidates,
                key=lambda document: (
                    scorer.trel(terms_tuple, document.vector)
                    * decay.at(document.created_at, now)
                ),
                reverse=True,
            )[: 4 * k]
        chosen = _greedy_max_sum(
            candidates, terms, k, scorer, decay, now, alpha
        )
    return sorted(chosen, key=lambda document: document.doc_id)


def _greedy_max_sum(
    candidates: Sequence[Document],
    terms: Iterable[str],
    k: int,
    scorer: LanguageModelScorer,
    decay: ExponentialDecay,
    now: float,
    alpha: float,
) -> List[Document]:
    terms = tuple(terms)
    coeff = diversity_coefficient(alpha, k)
    relevances = {
        candidate.doc_id: alpha
        * scorer.trel(terms, candidate.vector)
        * decay.at(candidate.created_at, now)
        for candidate in candidates
    }
    selected: List[Document] = []
    remaining = list(candidates)
    # Marginal diversity gain of each remaining candidate w.r.t. the
    # selection so far, updated incrementally as documents are picked.
    diversity_gain = {candidate.doc_id: 0.0 for candidate in candidates}
    while remaining and len(selected) < k:
        best_index = 0
        best_value = float("-inf")
        for index, candidate in enumerate(remaining):
            value = relevances[candidate.doc_id] + coeff * diversity_gain[
                candidate.doc_id
            ]
            if value > best_value:
                best_value = value
                best_index = index
        picked = remaining.pop(best_index)
        selected.append(picked)
        for candidate in remaining:
            diversity_gain[candidate.doc_id] += dissimilarity(
                candidate.vector, picked.vector
            )
    return selected
