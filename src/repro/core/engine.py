"""The DAS publish/subscribe engine (Algorithm 2).

One engine class implements all four of the paper's streaming methods;
the configuration flags select which machinery is active:

================  ==========  ================  ===============
method            use_blocks  use_group_filter  use_agg_weights
================  ==========  ================  ===============
GIFilter (paper)  yes         yes               yes
IFilter           yes         no                yes
BIRT (baseline)   yes         no                no
IRT (baseline)    no          no                no
================  ==========  ================  ===============

Document processing follows Algorithm 2: the postings lists of the
document's terms are traversed document-at-a-time; at each block boundary
the group filtering condition (Lemma 7) may skip the whole block; every
surviving posting goes through the quick relevance bound (Appendix A.1)
and then the individual filtering condition (Definition 3) evaluated via
aggregated term weight summaries (Lemma 6) where enabled.
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.config import METHOD_CONFIGS, EngineConfig
from repro.core.agg_weights import MemoryBudget
from repro.core.events import Notification
from repro.core.filtering import (
    TIE_EPSILON,
    accepts,
    block_similarity_lower_bound,
    block_threshold_lower_bound,
    block_trel_upper_bound,
    group_filters_out,
    quick_relevance_bound,
)
from repro.core.initializer import select_initial_documents
from repro.core.inverted_file import PostingsList, QueryInvertedFile
from repro.core.query import DasQuery
from repro.core.result_set import QueryResultSet
from repro.core.strategies import make_strategy
from repro.errors import (
    DuplicateQueryError,
    QueryOrderError,
    UnknownQueryError,
)
from repro.kernels import resolve_backend
from repro.kernels.adaptive import (
    DEFAULT_MIN_FLAT_BLOCKS,
    _env_threshold,
    choose_flat_commit,
)
from repro.metrics.instrumentation import Counters
from repro.scoring.diversity import diversity_coefficient, dr_score
from repro.scoring.recency import CachedDecay, ExponentialDecay
from repro.scoring.relevance import LanguageModelScorer
from repro.stream.clock import SimulationClock
from repro.stream.document import Document
from repro.stream.document_store import DocumentStore
from repro.telemetry import Telemetry
from repro.text.collection_stats import CollectionStatistics
class DasEngine:
    """Continuous top-k diversity-aware publish/subscribe."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        clock: Optional[SimulationClock] = None,
        stats: Optional[CollectionStatistics] = None,
        store: Optional[DocumentStore] = None,
        counters: Optional[Counters] = None,
        init_strategy: str = "relevant",
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._config = config if config is not None else EngineConfig()
        self._clock = clock if clock is not None else SimulationClock()
        self._stats = stats if stats is not None else CollectionStatistics()
        self._scorer = LanguageModelScorer(
            self._stats, self._config.smoothing_lambda
        )
        self._decay = ExponentialDecay(self._config.decay_base)
        #: Per-publish memo of decay powers (cleared at each publish; the
        #: same handful of age gaps recurs across all evaluated queries).
        self._decay_cache = CachedDecay(self._decay)
        #: Loop-invariant ``(2-2α)/(k-1)`` of Eqs. 12/19/25.
        self._coeff = diversity_coefficient(
            self._config.alpha, self._config.k
        )
        self._kernels = resolve_backend(self._config.backend)
        self._store = (
            store
            if store is not None
            else DocumentStore(self._config.store_capacity)
        )
        self._budget = (
            MemoryBudget(self._config.phi_max)
            if self._config.use_agg_weights
            else None
        )
        self._index = QueryInvertedFile(
            self._config.block_size if self._config.use_blocks else None
        )
        self._queries: Dict[int, DasQuery] = {}
        self._result_sets: Dict[int, QueryResultSet] = {}
        #: query id -> [(term, block)] memberships.  Blocks are
        #: append-only, so a query's block never changes after insertion;
        #: caching avoids a per-update bisect + membership scan.
        self._memberships: Dict[int, List[Tuple[str, object]]] = {}
        self._last_query_id: Optional[int] = None
        #: Columnar mirror of per-query oldest-result summaries (ISSUE 6).
        #: Pure-python engines skip it — the mirror only pays for itself
        #: when block refreshes can reduce over numpy arrays — and
        #: ``REPRO_DISABLE_COLUMNAR=1`` disables it for differential runs.
        self._qcols = None
        if (
            self._config.use_blocks
            and self._kernels.name != "python"
            and os.environ.get("REPRO_DISABLE_COLUMNAR") != "1"
        ):
            try:
                from repro.core.columnar import QuerySummaryColumns

                self._qcols = QuerySummaryColumns()
            except (ImportError, RuntimeError):
                self._qcols = None
        #: Per-micro-batch shape adaptation hook (adaptive backend only).
        self._kernels_begin_batch = getattr(self._kernels, "begin_batch", None)
        self._init_strategy = init_strategy
        self.counters = counters if counters is not None else Counters()
        #: Ranking/expiry strategy seam (DESIGN.md §16).  ``None`` in the
        #: decay mode so the paper's hot path pays no indirection; the
        #: window/spatial strategies fully intercept subscribe/publish/
        #: results while the engine keeps owning query-id bookkeeping.
        self._strategy = make_strategy(self)
        #: Flat postings mirror (ISSUE 9): contiguous per-term arrays so
        #: the Lemma 7 skip decision runs batch-wide in one NumPy pass.
        #: Requires the columnar summary mirror (it stores slot indices
        #: into it); ``REPRO_DISABLE_FLAT_POSTINGS=1`` disables it for
        #: differential runs.
        self._flat = None
        if (
            self._qcols is not None
            and os.environ.get("REPRO_DISABLE_FLAT_POSTINGS") != "1"
        ):
            try:
                from repro.core.flat_postings import FlatPostingsIndex

                self._flat = FlatPostingsIndex(self._qcols, self.counters)
                self._flat.attach(self._index)
            except (ImportError, RuntimeError):
                self._flat = None
        #: Whether the current batch runs the flat prefilter (committed
        #: per micro-batch alongside the kernel mode; fixed backends use
        #: the same block-count policy directly).
        self._flat_min_blocks = _env_threshold(
            "REPRO_FLAT_MIN_BLOCKS", DEFAULT_MIN_FLAT_BLOCKS
        )
        self._flat_active = False
        self.telemetry = telemetry
        #: The active publish's observation; set only while telemetry is
        #: attached and a publish is in flight (hot paths branch on it).
        self._obs = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def for_method(cls, method: str, **config_overrides) -> "DasEngine":
        """Build an engine configured as one of the paper's methods.

        ``method`` is one of ``"GIFilter"``, ``"IFilter"``, ``"BIRT"``,
        ``"IRT"``; extra keyword arguments override config fields.
        """
        try:
            factory = METHOD_CONFIGS[method]
        except KeyError:
            raise ValueError(
                f"unknown method {method!r}; expected one of "
                f"{sorted(METHOD_CONFIGS)}"
            ) from None
        return cls(factory(**config_overrides))

    # -- introspection ------------------------------------------------------

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def clock(self) -> SimulationClock:
        return self._clock

    @property
    def store(self) -> DocumentStore:
        return self._store

    @property
    def stats(self) -> CollectionStatistics:
        return self._stats

    @property
    def scorer(self) -> LanguageModelScorer:
        return self._scorer

    @property
    def decay(self) -> ExponentialDecay:
        return self._decay

    @property
    def kernels(self):
        """The scoring kernel backend selected at construction."""
        return self._kernels

    @property
    def backend_name(self) -> str:
        """Resolved backend: ``"python"`` or ``"numpy"``."""
        return self._kernels.name

    @property
    def query_count(self) -> int:
        return len(self._queries)

    @property
    def strategy(self):
        """The active strategy object, or ``None`` in the decay mode."""
        return self._strategy

    @property
    def method_name(self) -> str:
        cfg = self._config
        if cfg.use_group_filter:
            return "GIFilter"
        if cfg.use_agg_weights:
            return "IFilter" if cfg.use_blocks else "IRT+AW"
        return "BIRT" if cfg.use_blocks else "IRT"

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Attach (or replace) the engine's telemetry instance."""
        self.telemetry = telemetry

    def telemetry_snapshot(self) -> Optional[Dict]:
        """Mergeable telemetry snapshot, or None without telemetry."""
        return self.telemetry.snapshot() if self.telemetry is not None else None

    def results(self, query_id: int) -> List[Document]:
        """Current result set of a query, best/newest first."""
        if self._strategy is not None:
            self._query_of(query_id)
            return self._strategy.results(query_id)
        result_set = self._result_set_of(query_id)
        return result_set.documents_newest_first()

    def iter_term_blocks(self):
        """Every (term, block) pair of the query inverted file.

        Read-only view for invariant checkers (the simulation harness
        audits the Section 5/6 filtering bounds against it); callers
        must not mutate the blocks.
        """
        return self._index.items()

    def current_dr(self, query_id: int) -> float:
        """Score of the live result set under the active strategy.

        Decay mode: reference ``DR(q.R)`` (Eq. 1).  Strategy modes:
        the sum of the members' strategy scores."""
        if self._strategy is not None:
            self._query_of(query_id)
            return self._strategy.current_dr(query_id)
        query = self._query_of(query_id)
        result_set = self._result_sets[query_id]
        return dr_score(
            query.terms,
            result_set.documents(),
            self._scorer,
            self._decay,
            self._clock.now,
            self._config.alpha,
            self._config.k,
        )

    def index_size_report(self) -> Dict[str, int]:
        """Structural index footprint for the Figure 8 experiment."""
        aw_entries = sum(
            result_set.aw_entry_count
            for result_set in self._result_sets.values()
        )
        result_entries = sum(
            result_set.size for result_set in self._result_sets.values()
        )
        report = {
            "terms": self._index.term_count,
            "postings": self._index.posting_count,
            "blocks": self._index.block_count,
            "mcs_documents": self._index.mcs_document_count(),
            "aw_entries": aw_entries,
            "result_entries": result_entries,
            "stored_documents": len(self._store),
        }
        # Rough footprint: a posting is an int (28 B in CPython), a result
        # entry carries two floats and a reference (~72 B), an AW entry is
        # a dict slot (~100 B), an MCS member is a reference (~8 B).
        report["approx_bytes"] = (
            report["postings"] * 28
            + report["result_entries"] * 72
            + report["aw_entries"] * 100
            + report["mcs_documents"] * 8
        )
        return report

    # -- subscription ---------------------------------------------------------

    def subscribe(self, query: DasQuery) -> List[Document]:
        """Register a DAS query; returns its initial results, newest first.

        Query ids must be strictly increasing (the inverted file is
        append-only, Section 4.3).
        """
        if query.query_id in self._queries:
            raise DuplicateQueryError(f"query {query.query_id} already subscribed")
        if (
            self._last_query_id is not None
            and query.query_id <= self._last_query_id
        ):
            raise QueryOrderError(
                f"query id {query.query_id} is not after previous id "
                f"{self._last_query_id}"
            )
        if self._strategy is not None:
            # The strategy owns seeding and result maintenance; the engine
            # keeps owning id bookkeeping so every caller (facade, harness,
            # checkpoints) sees the same ``_queries`` surface in all modes.
            initial = self._strategy.subscribe(query)
            self._queries[query.query_id] = query
            self._last_query_id = query.query_id
            self.counters.queries_subscribed += 1
            return initial
        result_set = QueryResultSet(
            self._config.k,
            budget=self._budget,
            track_aggregated_weights=self._config.use_agg_weights,
            kernels=self._kernels,
        )
        seeds = select_initial_documents(
            self._store,
            query.terms,
            self._config.k,
            self._config.init_scan_limit,
            strategy=self._init_strategy,
            scorer=self._scorer,
            decay=self._decay,
            now=self._clock.now,
            alpha=self._config.alpha,
        )
        for document in seeds:
            trel = self._scorer.trel(query.terms, document.vector)
            sims = result_set.similarities_to(document.vector)
            self.counters.sim_evaluations += len(sims)
            result_set.admit(document, trel, sims)
            self._store.pin(document.doc_id)
        self._queries[query.query_id] = query
        self._result_sets[query.query_id] = result_set
        self._last_query_id = query.query_id
        touched = self._index.insert(query)
        self._memberships[query.query_id] = touched
        if self._qcols is not None:
            self._qcols.update(
                query.query_id, result_set, self._config.alpha, self._coeff
            )
        if self._config.use_group_filter:
            # The paper attributes summary construction to insertion time
            # (Figure 4(b)): build the MCS summaries of touched blocks now.
            for term, block in touched:
                block.rebuild_mcs(term, self._result_sets)
                self.counters.mcs_rebuilds += 1
        self.counters.queries_subscribed += 1
        return result_set.documents_newest_first()

    def unsubscribe(self, query_id: int) -> None:
        query = self._query_of(query_id)
        if self._strategy is not None:
            self._strategy.unsubscribe(query)
            del self._queries[query_id]
            return
        result_set = self._result_sets.pop(query_id)
        del self._queries[query_id]
        for entry in result_set.entries:
            self._store.unpin(entry.document.doc_id)
        result_set.release_budget()
        del self._memberships[query_id]
        self._index.remove(query)
        if self._qcols is not None:
            self._qcols.release(query_id)

    def _query_of(self, query_id: int) -> DasQuery:
        query = self._queries.get(query_id)
        if query is None:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        return query

    def _result_set_of(self, query_id: int) -> QueryResultSet:
        result_set = self._result_sets.get(query_id)
        if result_set is None:
            raise UnknownQueryError(f"query {query_id} is not subscribed")
        return result_set

    # -- document processing (Algorithm 2) ---------------------------------------

    def publish(
        self,
        document: Document,
        decay_cache: Optional[CachedDecay] = None,
    ) -> List[Notification]:
        """Process one stream document; returns the triggered updates.

        ``decay_cache`` lets a multi-shard caller share one decay-power
        memo across shards processing the same document (the powers are
        pure functions of the age gap, so sharing is exact); the caller
        then owns clearing it.  With the default ``None`` the engine's
        own per-publish memo is used.
        """
        if self._strategy is not None:
            return self._strategy.publish(document)
        self._begin_batch(1)
        if decay_cache is None:
            self._decay_cache.clear()
            return self._publish_one(document, {})
        own = self._decay_cache
        self._decay_cache = decay_cache
        try:
            return self._publish_one(document, {})
        finally:
            self._decay_cache = own

    def publish_batch(
        self,
        documents: Iterable[Document],
        decay_cache: Optional[CachedDecay] = None,
    ) -> List[Notification]:
        """Process a micro-batch of stream documents.

        Semantically identical to sequential :meth:`publish` calls —
        each document is processed in order against the collection
        statistics, store and clock state left by its predecessors, and
        the returned list equals the concatenation of the per-document
        notification lists (same order, same counter totals).

        What the batch amortizes is work that cannot change between the
        documents of one batch, because no subscription can interleave:
        term -> postings-list resolution is memoised across the batch,
        and the decay-power memo is cleared once per batch instead of
        once per document (decay powers are pure functions of the age
        gap, so reuse across documents is exact).  A sharded caller may
        pass a shared ``decay_cache`` so sibling shards broadcasting the
        same batch reuse one memo (the caller owns clearing it).
        """
        notifications: List[Notification] = []
        for segment in self.publish_batch_segmented(documents, decay_cache):
            notifications.extend(segment)
        return notifications

    def publish_batch_segmented(
        self,
        documents: Iterable[Document],
        decay_cache: Optional[CachedDecay] = None,
    ) -> List[List[Notification]]:
        """:meth:`publish_batch`, keeping per-document segment boundaries.

        Returns one notification list per input document (possibly
        empty), in input order; :meth:`publish_batch` is exactly the
        concatenation.  Multi-shard mergers need the boundaries: strategy
        modes may emit notifications whose subject is *not* the published
        document (window promotions), so "group by doc id" no longer
        reconstructs which document produced a notification.
        """
        documents = list(documents)
        if not documents:
            return []
        if self._strategy is not None:
            return [
                self._strategy.publish(document) for document in documents
            ]
        self._begin_batch(len(documents))
        if decay_cache is None:
            decay_cache = self._decay_cache
            decay_cache.clear()
        own = self._decay_cache
        self._decay_cache = decay_cache
        try:
            segments: List[List[Notification]] = []
            lists_memo: Dict[str, Optional[PostingsList]] = {}
            for document in documents:
                segments.append(self._publish_one(document, lists_memo))
            return segments
        finally:
            self._decay_cache = own

    def _candidate_blocks(self) -> int:
        """Average blocks per postings list — the per-document group-check
        population a batch will face (O(1) via incremental index totals)."""
        terms = self._index.term_count
        if not terms:
            return 0
        return self._index.block_count // terms

    def _begin_batch(self, batch_size: int) -> None:
        """Per-micro-batch shape adaptation (ISSUE 6 satellite 1).

        The adaptive backend commits the whole batch to one kernel mode
        based on ``batch_size × candidate blocks``; fixed backends just
        account the batch so ``vectorized_batch_fraction`` stays defined
        for every engine shape.
        """
        begin = self._kernels_begin_batch
        if begin is not None:
            mode = begin(
                batch_size,
                self._config.k,
                self._candidate_blocks(),
                aw_shortcut=self._config.use_agg_weights,
                min_flat_blocks=self._flat_min_blocks,
            )
        else:
            mode = "numpy" if self._kernels.name == "numpy" else "python"
        if mode == "numpy":
            self.counters.batches_vectorized += 1
        else:
            self.counters.batches_scalar += 1
        if self._flat is not None:
            # The adaptive backend commits the flat prefilter per batch
            # alongside the kernel mode; fixed numpy backends apply the
            # same block-count policy directly.
            committed = getattr(self._kernels, "flat_committed", None)
            if committed is None:
                committed = choose_flat_commit(
                    self._candidate_blocks(), self._flat_min_blocks
                )
            self._flat_active = committed

    def _publish_one(
        self,
        document: Document,
        lists_memo: Dict[str, Optional[PostingsList]],
    ) -> List[Notification]:
        """Telemetry shell around :meth:`_publish_core`: one publish span
        per document, with per-stage latency attribution and (for sampled
        documents) a counter-delta trace."""
        telemetry = self.telemetry
        if telemetry is None:
            return self._publish_core(document, lists_memo)
        observation = telemetry.begin_publish(document.doc_id, self.counters)
        self._obs = observation
        try:
            notifications = self._publish_core(document, lists_memo)
        except BaseException:
            telemetry.abort_publish(observation)
            raise
        finally:
            self._obs = None
        telemetry.end_publish(observation, self.counters)
        return notifications

    def _publish_core(
        self,
        document: Document,
        lists_memo: Dict[str, Optional[PostingsList]],
    ) -> List[Notification]:
        """Algorithm 2 for one document; ``lists_memo`` caches postings
        lookups for the enclosing batch (the index is frozen while a
        publish call runs)."""
        if document.created_at > self._clock.now:
            self._clock.advance_to(document.created_at)
        self._stats.add(document.vector)
        self._store.add(document)
        self.counters.docs_published += 1
        notifications: List[Notification] = []
        vector = document.vector
        if not vector:
            return notifications
        now = self._clock.now
        ps_cache = {
            term: self._scorer.ps(vector, term) for term in vector.terms()
        }

        # Postings lists of the document's terms that index any query.
        lists: Dict[str, PostingsList] = {}
        for term in vector.terms():
            try:
                postings = lists_memo[term]
            except KeyError:
                postings = self._index.list_for(term)
                lists_memo[term] = postings
            if postings is not None and postings.blocks:
                lists[term] = postings
        if not lists:
            return notifications

        # Batch-wide block-skip prefilter (ISSUE 9): one NumPy pass
        # computes the Eq. 12 thresholds of every candidate block and
        # compares them against the document's universal Eq. 18 upper
        # bound.  A True verdict is a skip the scalar check is
        # guaranteed to take; False falls back to the scalar check.
        flat_rows = None
        if self._flat_active:
            obs = self._obs
            if obs is None:
                flat_rows = self._flat_prepare(lists, ps_cache, now)
            else:
                entered = obs.time()
                flat_rows = self._flat_prepare(lists, ps_cache, now)
                obs.add("group_filter", obs.time() - entered)

        # k-way merge of the postings cursors, cheapest head first.  The
        # heap holds one (current query id, term) pair per unexhausted
        # term, so advancing costs O(log T) instead of the O(T) rescan of
        # min(active, key=...).
        cursors: Dict[str, Tuple[int, int]] = {term: (0, 0) for term in lists}
        evaluated: Set[int] = set()
        heap: List[Tuple[int, str]] = [
            (postings.blocks[0].query_ids[0], term)
            for term, postings in lists.items()
        ]
        heapq.heapify(heap)
        use_blocks = self._config.use_blocks
        while heap:
            _query_id, term = heapq.heappop(heap)
            block_index, offset = cursors[term]
            blocks = lists[term].blocks
            block = blocks[block_index]
            skipped = False
            if offset == 0 and use_blocks:
                obs = self._obs
                entered = obs.time() if obs is not None else 0.0
                # A clean block with a positive batch verdict skips
                # without the scalar check; otherwise the scalar check
                # runs, reusing the batch-computed Eq. 12 threshold.  A
                # block re-dirtied since the batch pass (a result update
                # mid-document) falls back to the full scalar path.
                row = (
                    flat_rows.get(term)
                    if flat_rows is not None and not block.meta_dirty
                    else None
                )
                if row is not None and row[0][block_index]:
                    self._flat_skip_effects(term, block)
                    skip = True
                else:
                    skip = self._try_skip_block(
                        term,
                        block,
                        ps_cache,
                        document,
                        cursors,
                        lists,
                        now,
                        threshold=(
                            row[1][block_index] if row is not None else None
                        ),
                    )
                if obs is not None:
                    obs.add("group_filter", obs.time() - entered)
                if skip:
                    self.counters.blocks_skipped += 1
                    # The group bound covers the filled members only;
                    # warm-up members must still see the document.
                    for query_id in block.unfilled_ids:
                        if query_id not in evaluated:
                            evaluated.add(query_id)
                            self._evaluate_query(
                                query_id, document, ps_cache, now, notifications
                            )
                    block_index += 1
                    offset = 0
                    skipped = True
            if not skipped:
                if offset == 0:
                    self.counters.blocks_visited += 1
                query_id = block.query_ids[offset]
                self.counters.postings_visited += 1
                if query_id not in evaluated:
                    evaluated.add(query_id)
                    self._evaluate_query(
                        query_id, document, ps_cache, now, notifications
                    )
                offset += 1
                if offset >= len(block.query_ids):
                    block_index += 1
                    offset = 0
            cursors[term] = (block_index, offset)
            if block_index < len(blocks):
                heapq.heappush(
                    heap, (blocks[block_index].query_ids[offset], term)
                )
        return notifications

    def _try_skip_block(
        self,
        term: str,
        block,
        ps_cache: Dict[str, float],
        document: Document,
        cursors: Dict[str, Tuple[int, int]],
        lists: Dict[str, PostingsList],
        now: float,
        threshold: Optional[float] = None,
    ) -> bool:
        """Group filtering condition for one block (Lemma 7).

        ``threshold`` carries the batch-computed Eq. 12 value for clean
        blocks (bit-identical to the per-block derivation below); when
        None the block is refreshed if dirty and the threshold derived
        from its summaries.
        """
        self.counters.group_checks += 1
        if threshold is None:
            if block.meta_dirty:
                qcols = self._qcols
                if qcols is not None and block.refresh_from_columns(qcols):
                    self.counters.columnar_refreshes += 1
                else:
                    block.refresh_metadata(
                        self._result_sets, self._config.alpha, self._coeff
                    )
                    self.counters.scalar_refreshes += 1
            threshold = block_threshold_lower_bound(
                block, self._decay_cache, now, self._config.alpha
            )
        # TRel̃_max (Eq. 18): document terms whose cursor has not passed
        # this block yet can still contribute relevance to its queries.
        max_id = block.max_id
        active_ps: List[float] = []
        for other_term, (block_index, offset) in cursors.items():
            blocks = lists[other_term].blocks
            if block_index >= len(blocks):
                continue
            if blocks[block_index].query_ids[offset] <= max_id:
                active_ps.append(ps_cache[other_term])
        trel_upper = block_trel_upper_bound(active_ps)
        sim_lower = 0.0
        if self._config.use_group_filter:
            if block.needs_mcs_rebuild(self._config.delta_s):
                block.rebuild_mcs(term, self._result_sets)
                self.counters.mcs_rebuilds += 1
            sim_lower = block_similarity_lower_bound(
                block,
                document.vector,
                term,
                self._config.k,
                self._config.group_bound_mode,
                kernels=self._kernels,
            )
            if block.mcs_sets:
                self.counters.sim_evaluations += sum(
                    len(cover) for cover in block.mcs_sets
                )
        return group_filters_out(
            trel_upper,
            sim_lower,
            threshold,
            self._config.alpha,
            self._config.k,
            coeff=self._coeff,
        )

    def _flat_prepare(self, lists, ps_cache, now):
        """Run the flat mirror's batch-wide Lemma 7 prefilter (ISSUE 9).

        ``U0`` is Eq. 18 with every document term still active and the
        Eq. 19 similarity bound at its floor 0 — an upper bound on every
        value the scalar check can compute, so a positive verdict is
        exactly a skip the scalar path would take.
        """
        max_ps = max(ps_cache[term] for term in lists)
        upper0_trel = max_ps
        return self._flat.prepare(
            lists,
            self._result_sets,
            self._config.alpha,
            self._coeff,
            self._config.k,
            upper0_trel,
            self._decay_cache,
            now,
            self.counters,
        )

    def _flat_skip_effects(self, term: str, block) -> None:
        """Replicate the scalar side effects of a group-check skip.

        The scalar check maintains MCS summaries *before* deciding, so a
        prefiltered skip must perform the same rebuild (and the same
        counter accounting) to keep the flat-on and flat-off runs on
        identical maintenance schedules.
        """
        self.counters.group_checks += 1
        self.counters.flat_skips += 1
        if self._config.use_group_filter:
            if block.needs_mcs_rebuild(self._config.delta_s):
                block.rebuild_mcs(term, self._result_sets)
                self.counters.mcs_rebuilds += 1
            if block.mcs_sets:
                self.counters.sim_evaluations += sum(
                    len(cover) for cover in block.mcs_sets
                )

    def _evaluate_query(
        self,
        query_id: int,
        document: Document,
        ps_cache: Dict[str, float],
        now: float,
        notifications: List[Notification],
    ) -> None:
        """Individual filtering steps (Section 6.2) for one query.

        Telemetry attribution: time from entry until the admit/replace
        decision counts as ``individual_filter``; the mutation itself
        (result-set update, store pinning, notification, block
        invalidation) counts as ``result_update``.
        """
        self.counters.queries_evaluated += 1
        obs = self._obs
        entered = obs.time() if obs is not None else 0.0
        query = self._queries[query_id]
        result_set = self._result_sets[query_id]
        vector = document.vector
        trel = self._scorer.trel_from_ps(query.terms, ps_cache, vector)
        config = self._config

        if not result_set.is_full:
            # Warm-up: every matching document is admitted until |R| = k.
            if obs is not None:
                mutated = obs.time()
                obs.add("individual_filter", mutated - entered)
                entered = mutated
            sims = result_set.similarities_to(vector)
            self.counters.sim_evaluations += len(sims)
            result_set.admit(document, trel, sims)
            self._store.pin(document.doc_id)
            self.counters.matches += 1
            notifications.append(Notification(query_id, document, None))
            if self._qcols is not None:
                self._qcols.update(query_id, result_set, config.alpha, self._coeff)
            self._mark_blocks_dirty(query)
            if result_set.is_full and config.use_group_filter:
                # The query just left warm-up: existing MCS covers were
                # built over the previously-filled members only and do
                # not cover it, so the group bound would be unsafe.
                # Force a rebuild on next use.
                for _term, block in self._memberships[query_id]:
                    block.mcs_sets = None
                    block.mcs_initial_count = 0
            if obs is not None:
                obs.add("result_update", obs.time() - entered)
            return

        dr_oldest = result_set.dr_oldest(
            now, self._decay_cache, config.alpha, coeff=self._coeff
        )
        if quick_relevance_bound(trel, config.alpha) <= dr_oldest + TIE_EPSILON:
            self.counters.quick_rejections += 1
            if obs is not None:
                obs.add("individual_filter", obs.time() - entered)
            return
        sim_sum, direct, aw_used = result_set.similarity_sum(vector)
        self.counters.sim_evaluations += direct
        self.counters.aw_dot_products += aw_used
        dr_new = (
            config.alpha * trel + self._coeff * ((config.k - 1) - sim_sum)
        )
        if not accepts(dr_new, dr_oldest):
            if obs is not None:
                obs.add("individual_filter", obs.time() - entered)
            return

        if obs is not None:
            mutated = obs.time()
            obs.add("individual_filter", mutated - entered)
            entered = mutated
        sims_kept = result_set.similarities_to_kept(vector)
        self.counters.sim_evaluations += len(sims_kept)
        evicted = result_set.replace(document, trel, sims_kept)
        self._store.unpin(evicted.doc_id)
        self._store.pin(document.doc_id)
        self.counters.matches += 1
        notifications.append(Notification(query_id, document, evicted))
        if self._qcols is not None:
            self._qcols.update(query_id, result_set, config.alpha, self._coeff)
        self._on_result_updated(query, result_set, evicted)
        if obs is not None:
            obs.add("result_update", obs.time() - entered)

    # -- index maintenance (Section 7.1) ------------------------------------------

    def _mark_blocks_dirty(self, query: DasQuery) -> None:
        if not self._config.use_blocks:
            return
        flat = self._flat
        for term, block in self._memberships[query.query_id]:
            block.meta_dirty = True
            if flat is not None:
                flat.note_dirty(term)

    def _on_result_updated(
        self, query: DasQuery, result_set: QueryResultSet, evicted: Document
    ) -> None:
        """Propagate a replacement to every block the query belongs to.

        Both the evicted document and the query's *new* oldest document
        stop counting toward MCS coverage for this query, so any cover
        relying on either must be dropped (conservative superset of the
        paper's Algorithm 2 lines 9-11).
        """
        if not self._config.use_blocks:
            return
        invalidated: Set[int] = {evicted.doc_id}
        oldest = result_set.oldest
        if oldest is not None:
            invalidated.add(oldest.document.doc_id)
        invalidated = frozenset(invalidated)
        flat = self._flat
        for term, block in self._memberships[query.query_id]:
            block.meta_dirty = True
            if flat is not None:
                flat.note_dirty(term)
            if self._config.use_group_filter:
                dropped = block.invalidate_mcs_with(invalidated)
                self.counters.mcs_invalidations += dropped
