"""Core contribution: the DAS query and the filtering pub/sub engine."""

from repro.core.agg_weights import AggregatedTermWeights, MemoryBudget
from repro.core.blocks import PostingsBlock
from repro.core.engine import DasEngine
from repro.core.events import Notification
from repro.core.filtering import (
    TIE_EPSILON,
    accepts,
    block_similarity_lower_bound,
    block_threshold_lower_bound,
    block_trel_upper_bound,
    exact_group_threshold,
    group_filters_out,
    quick_relevance_bound,
)
from repro.core.initializer import select_initial_documents
from repro.core.inverted_file import PostingsList, QueryInvertedFile
from repro.core.mcs import (
    BlockUniverse,
    build_universe,
    greedy_mcs_gen,
    min_similarity_floor,
    verify_cover,
)
from repro.core.query import DasQuery
from repro.core.result_set import QueryResultSet, ResultEntry

__all__ = [
    "AggregatedTermWeights",
    "BlockUniverse",
    "DasEngine",
    "DasQuery",
    "MemoryBudget",
    "Notification",
    "PostingsBlock",
    "PostingsList",
    "QueryInvertedFile",
    "QueryResultSet",
    "ResultEntry",
    "TIE_EPSILON",
    "accepts",
    "block_similarity_lower_bound",
    "block_threshold_lower_bound",
    "block_trel_upper_bound",
    "build_universe",
    "exact_group_threshold",
    "greedy_mcs_gen",
    "group_filters_out",
    "min_similarity_floor",
    "quick_relevance_bound",
    "select_initial_documents",
    "verify_cover",
]
