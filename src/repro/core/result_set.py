"""Query result tables (Table 3) and per-query result maintenance.

Each entry stores the document, its text relevance ``TRel(q, d)`` and its
*accumulated similarity* (Eq. 24) — the sum of similarities to the
strictly newer documents of the result.  Because new results are always
the newest document of the stream, maintenance is append-at-the-end /
evict-at-the-front:

* admitting ``d_n`` adds ``Sim(d_i, d_n)`` to every existing entry's
  accumulated similarity (``d_n`` is newer than all of them);
* evicting the oldest entry changes nobody's accumulated similarity
  (nothing counts similarities to *older* documents).

The oldest entry's closed form (Eq. 25, corrected to include the decay
factor so Lemma 1 holds exactly — see DESIGN.md §2) is then

    dr_q(q.d_e) = α · TRel(q, d_e) · T(d_e)
                + (2-2α)/(k-1) · ((k-1) - Sim_acc(q.R, d_e))

The table also owns the query's aggregated term weight summary (Table 4)
over ``R1 \\ {d_e}`` and the R1/R2 split driven by the shared ``Φ_max``
budget.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.agg_weights import AggregatedTermWeights, MemoryBudget
from repro.kernels import default_kernels
from repro.scoring.diversity import diversity_coefficient
from repro.scoring.recency import ExponentialDecay
from repro.stream.document import Document
from repro.text.vectors import TermVector

#: Sentinel marking the packed member matrix as stale (``None`` is a
#: valid packed value for the pure-Python backend).
_DIRTY = object()


class ResultEntry:
    """One row of the query result table."""

    __slots__ = ("document", "trel", "sim_acc", "in_r1", "aw_resident")

    def __init__(self, document: Document, trel: float) -> None:
        self.document = document
        self.trel = trel
        #: Eq. 24 — similarity mass against strictly newer result documents.
        self.sim_acc = 0.0
        #: True if the entry was granted budget for the AW summary (R1).
        self.in_r1 = False
        #: True while the entry's weights are folded into the AW table
        #: (i.e. it is in R1 and is not the oldest entry).
        self.aw_resident = False


class QueryResultSet:
    """Result table of one DAS query; entries are kept oldest-first."""

    __slots__ = ("k", "_entries", "_aw", "_budget", "_track_aw", "_kernels", "_packed")

    def __init__(
        self,
        k: int,
        budget: Optional[MemoryBudget] = None,
        track_aggregated_weights: bool = True,
        kernels=None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._entries: List[ResultEntry] = []
        self._track_aw = track_aggregated_weights
        self._budget = budget
        self._kernels = kernels if kernels is not None else default_kernels()
        self._aw = (
            AggregatedTermWeights(
                track_ids=getattr(self._kernels, "wants_aw_arrays", False)
            )
            if track_aggregated_weights
            else None
        )
        self._packed = _DIRTY

    # -- inspection --------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.k

    @property
    def entries(self) -> Sequence[ResultEntry]:
        return self._entries

    @property
    def oldest(self) -> Optional[ResultEntry]:
        """``q.d_e``'s entry, or None while empty."""
        return self._entries[0] if self._entries else None

    def documents(self) -> List[Document]:
        """Result documents, oldest first."""
        return [entry.document for entry in self._entries]

    def documents_newest_first(self) -> List[Document]:
        return [entry.document for entry in reversed(self._entries)]

    def __iter__(self) -> Iterator[ResultEntry]:
        return iter(self._entries)

    def __contains__(self, doc_id: int) -> bool:
        return any(entry.document.doc_id == doc_id for entry in self._entries)

    @property
    def aggregated_weights(self) -> Optional[AggregatedTermWeights]:
        return self._aw

    @property
    def aw_entry_count(self) -> int:
        return self._aw.entry_count if self._aw is not None else 0

    # -- thresholds ---------------------------------------------------------

    def static_dr_oldest(
        self, alpha: float, coeff: Optional[float] = None
    ) -> float:
        """Time-independent part of ``dr_q(q.d_e)`` — Eq. 13's per-query term.

        ``α·TRel(q, d_e) + (2-2α)/(k-1) · Σ d(d_e, d_i)`` where the
        dissimilarity sum equals ``(n - 1) - Sim_acc`` over the current
        ``n - 1`` co-resident documents.  ``coeff`` is the diversity
        coefficient, passable to avoid recomputing the loop invariant.
        """
        entry = self._entries[0]
        if coeff is None:
            coeff = diversity_coefficient(alpha, self.k)
        pairs = len(self._entries) - 1
        return alpha * entry.trel + coeff * (pairs - entry.sim_acc)

    def dr_oldest(
        self,
        now: float,
        decay: ExponentialDecay,
        alpha: float,
        coeff: Optional[float] = None,
    ) -> float:
        """``dr_q(q.d_e)`` (Eq. 7 / corrected Eq. 25) at time ``now``."""
        entry = self._entries[0]
        recency = decay.at(entry.document.created_at, now)
        if coeff is None:
            coeff = diversity_coefficient(alpha, self.k)
        pairs = len(self._entries) - 1
        return alpha * entry.trel * recency + coeff * (pairs - entry.sim_acc)

    # -- similarity sums ------------------------------------------------------

    def _packed_entries(self):
        """The backend's packed member matrix, rebuilt when stale."""
        packed = self._packed
        if packed is _DIRTY:
            packed = self._kernels.pack_entries(self._entries)
            self._packed = packed
        return packed

    def similarity_sum(self, vector: TermVector) -> Tuple[float, int, int]:
        """``Σ_{d ∈ R \\ {d_e}} Sim(d, vector)``.

        Uses the aggregated term weight summary for R1 documents
        (Lemma 6) and direct cosines (one kernel call) for R2 documents.
        Returns the sum plus counters ``(direct_similarities,
        aw_lookups)`` so the engine can meter the work performed.
        """
        aw_used = 0
        total = 0.0
        if self._aw is not None:
            total += self._kernels.aw_similarity_sum(self._aw, vector)
            aw_used = 1
            # With every surviving entry folded into the AW summary there
            # are no direct (R2) cosines left — skip the kernel call (and
            # the packing it may trigger) outright.
            if all(entry.aw_resident for entry in self._entries[1:]):
                return total, 0, aw_used
        tail_sum, direct = self._kernels.tail_similarity_sum(
            self._packed_entries(),
            self._entries,
            vector,
            skip_aw_resident=self._aw is not None,
        )
        return total + tail_sum, direct, aw_used

    def similarities_to(self, vector: TermVector) -> List[float]:
        """Per-entry similarities against all current entries, in order."""
        return self._kernels.similarities_to(
            self._packed_entries(), self._entries, vector
        )

    def similarities_to_kept(self, vector: TermVector) -> List[float]:
        """Similarities against the surviving entries (``entries[1:]``).

        The replace path's input: cosines of the candidate document
        against every entry except the oldest, oldest-first.
        """
        return self._kernels.tail_similarities(
            self._packed_entries(), self._entries, vector
        )

    # -- maintenance ----------------------------------------------------------

    def admit(
        self,
        document: Document,
        trel: float,
        sims_to_existing: Sequence[float],
    ) -> None:
        """Warm-up insertion of a matching document while ``|R| < k``.

        ``sims_to_existing`` must align with the current entries
        (oldest-first).  The new document is the stream's newest, so every
        existing entry's accumulated similarity grows by its similarity to
        it.
        """
        if self.is_full:
            raise ValueError("result set is full; use replace()")
        if len(sims_to_existing) != len(self._entries):
            raise ValueError(
                f"expected {len(self._entries)} similarities, "
                f"got {len(sims_to_existing)}"
            )
        for entry, sim in zip(self._entries, sims_to_existing):
            entry.sim_acc += sim
        self._append_entry(document, trel)
        if self._packed is not _DIRTY:
            self._packed = self._kernels.packed_append(
                self._packed, self._entries
            )

    def replace(
        self,
        document: Document,
        trel: float,
        sims_to_kept: Sequence[float],
    ) -> Document:
        """Evict ``d_e``, admit ``document``; returns the evicted document.

        ``sims_to_kept`` aligns with the surviving entries (the current
        entries minus the oldest, oldest-first).
        """
        if not self._entries:
            raise ValueError("cannot replace in an empty result set")
        if len(sims_to_kept) != len(self._entries) - 1:
            raise ValueError(
                f"expected {len(self._entries) - 1} similarities, "
                f"got {len(sims_to_kept)}"
            )
        evicted_entry = self._entries.pop(0)
        # The evicted entry is never AW-resident (the oldest is excluded
        # from the summary), so only its budget-free removal happens here.
        assert not evicted_entry.aw_resident
        self._on_new_oldest()
        for entry, sim in zip(self._entries, sims_to_kept):
            entry.sim_acc += sim
        self._append_entry(document, trel)
        if self._packed is not _DIRTY:
            self._packed = self._kernels.packed_replace(
                self._packed, self._entries
            )
        return evicted_entry.document

    def _on_new_oldest(self) -> None:
        """Exclude the (possibly new) oldest entry from the AW summary."""
        if not self._entries:
            return
        head = self._entries[0]
        if head.aw_resident:
            assert self._aw is not None
            self._aw.remove_document(head.document.vector)
            head.aw_resident = False
            if self._budget is not None:
                self._budget.release(len(head.document.vector))

    def _append_entry(self, document: Document, trel: float) -> None:
        entry = ResultEntry(document, trel)
        if self._entries and self._aw is not None:
            # Only non-oldest entries may join the summary; the very first
            # entry stays out (it *is* the oldest).
            entries = len(document.vector)
            if self._budget is None or self._budget.try_reserve(entries):
                entry.in_r1 = True
                entry.aw_resident = True
                self._aw.add_document(document.vector)
        self._entries.append(entry)

    def release_budget(self) -> None:
        """Return all reserved AW budget (used on unsubscribe)."""
        self._packed = _DIRTY
        if self._budget is None:
            return
        for entry in self._entries:
            if entry.aw_resident:
                self._budget.release(len(entry.document.vector))
                entry.aw_resident = False
