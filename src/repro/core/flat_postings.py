"""Flat contiguous postings arrays + batch-wide block skipping (ISSUE 9).

The PR 6 columnar mirror (:mod:`repro.core.columnar`) vectorized block
*refreshes*, but the DAAT loop itself still walks linked
:class:`~repro.core.blocks.PostingsBlock` objects one at a time and
evaluates the Lemma 7 group bound per block in pure Python.  This module
keeps a second mirror — of the *postings structure* — so the skip
decision runs once per document over every candidate block in a single
NumPy pass:

- per term, parallel arrays of query ids, their
  :class:`~repro.core.columnar.QuerySummaryColumns` slots, and a
  liveness mask.  Inserts append at the tail (the inverted file is
  append-only in query-id order, so the arrays stay block-major
  contiguous); unsubscribes tombstone in place; a tombstone-ratio
  threshold triggers compaction (a rebuild from the linked structure,
  which physically removed the postings).
- per block, cached summary scalars (``dtrel_min``, ``trel_max_de``,
  ``earliest_de``) mirroring the block objects, resynced lazily when any
  block of the term was dirtied.  Dirty all-filled blocks are refreshed
  with one masked ``reduceat`` over the summary columns — the same
  gather the per-block :meth:`PostingsBlock.refresh_from_columns` does,
  amortized across every dirty block of the term.

Bit-identity contract (extends the PR 6 contract):

- Refresh values are min/max reductions over the *identical* float64s
  the scalar refresh reads, so summaries come out bit-identical.
- The batch verdict uses the universal upper bound
  ``U0 = α·max(PS of the document's indexed terms) + coeff·(k-1)`` —
  Eq. 18 with every term still active and Eq. 19 at its floor 0.  Every
  operation from the scalar bound to ``U0`` is monotone in IEEE-754
  arithmetic, so ``U0 <= FT̃_b`` *implies* the scalar Lemma 7 check
  skips too: a positive verdict is always a decision the linked-block
  path would have made, and a negative verdict simply falls back to it.
- The per-block threshold ``FT̃_b`` (Eq. 12) is evaluated with the same
  association order as :func:`repro.core.filtering.threshold_from_summaries`
  and decay powers come from the engine's :class:`CachedDecay` (CPython
  ``pow``, memoized per unique age), never ``np.power`` — elementwise
  mul/sub are exact given identical inputs, a vectorized ``pow`` is not
  guaranteed to be.

The mirror is an acceleration structure only: it requires the columnar
summary mirror, ``REPRO_DISABLE_FLAT_POSTINGS=1`` turns it off for
differential runs, and a checkpoint restore rebuilds it through the
ordinary insert hooks like the PR 6 mirror.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised via engines, not direct import
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

_NEG_INF = float("-inf")
_INITIAL_CAPACITY = 8
#: Compaction policy: rebuild a term once tombstones pass this share of
#: its array (and at least this many absolute, so tiny terms don't churn).
_COMPACT_RATIO = 0.25
_COMPACT_MIN_DEAD = 8


class FlatTermPostings:
    """Contiguous mirror of one term's postings list."""

    __slots__ = (
        "qids",
        "slots",
        "alive",
        "size",
        "dead",
        "starts",
        "s_dtrel",
        "s_trel",
        "s_earliest",
        "summaries_stale",
        "structure_stale",
    )

    def __init__(self) -> None:
        capacity = _INITIAL_CAPACITY
        #: Parallel per-posting arrays; ``size`` entries used, tombstones
        #: included.  ``qids`` ascends (inserts arrive in id order), so
        #: the arrays are block-major contiguous by construction.
        self.qids = np.zeros(capacity, dtype=np.int64)
        self.slots = np.zeros(capacity, dtype=np.intp)
        self.alive = np.zeros(capacity, dtype=np.bool_)
        self.size = 0
        self.dead = 0
        #: Per-block start offsets into the posting arrays.
        self.starts: List[int] = []
        #: Per-block summary cache mirroring the block objects' scalars;
        #: valid only while ``summaries_stale`` is False.
        self.s_dtrel = None
        self.s_trel = None
        self.s_earliest = None
        self.summaries_stale = True
        #: A block deletion shifted ordinals — rebuild before next use.
        self.structure_stale = False

    @property
    def block_count(self) -> int:
        return len(self.starts)

    def _grow(self) -> None:
        capacity = max(len(self.qids) * 2, _INITIAL_CAPACITY)
        for name, dtype in (
            ("qids", np.int64),
            ("slots", np.intp),
            ("alive", np.bool_),
        ):
            old = getattr(self, name)
            grown = np.zeros(capacity, dtype=dtype)
            grown[: self.size] = old[: self.size]
            setattr(self, name, grown)

    def append(self, query_id: int, slot: int, new_block: bool) -> None:
        if self.size >= len(self.qids):
            self._grow()
        if new_block:
            self.starts.append(self.size)
        index = self.size
        self.qids[index] = query_id
        self.slots[index] = slot
        self.alive[index] = True
        self.size += 1
        self.summaries_stale = True

    def tombstone(self, query_id: int) -> bool:
        """Mark ``query_id`` dead in place; returns True if found live."""
        index = int(
            np.searchsorted(self.qids[: self.size], query_id)
        )
        if (
            index >= self.size
            or int(self.qids[index]) != query_id
            or not self.alive[index]
        ):
            return False
        self.alive[index] = False
        # Keep the slot index in-bounds for the masked gathers even
        # after the columnar store recycles it.
        self.slots[index] = 0
        self.dead += 1
        self.summaries_stale = True
        return True

    def needs_compaction(self) -> bool:
        return (
            self.dead >= _COMPACT_MIN_DEAD
            and self.dead * 4 >= self.size
        )

    def live_blocks(self) -> List[List[int]]:
        """Live query ids grouped by block — the audit view the property
        tests compare byte-for-byte against the linked structure."""
        qids = self.qids[: self.size]
        alive = self.alive[: self.size]
        bounds = self.starts + [self.size]
        return [
            [int(q) for q, a in zip(qids[lo:hi], alive[lo:hi]) if a]
            for lo, hi in zip(bounds, bounds[1:])
        ]


class FlatPostingsIndex:
    """Flat mirror of a :class:`QueryInvertedFile` (ISSUE 9 tentpole).

    Attached to the inverted file via :meth:`attach`, so every insert —
    including the ones a checkpoint restore replays directly against the
    index — and every remove flows through the mirror.  The linked
    structure stays the source of truth: structural invalidations
    (a block deletion shifting ordinals, the compaction threshold) are
    repaired by rebuilding the term from its :class:`PostingsList`.
    """

    def __init__(self, columns, counters=None) -> None:
        if np is None:  # pragma: no cover - guarded by engine gating
            raise RuntimeError("FlatPostingsIndex requires numpy")
        self._columns = columns
        self._index = None
        self.counters = counters
        self._terms: Dict[str, FlatTermPostings] = {}
        self.compactions = 0

    def attach(self, index) -> None:
        """Register as ``index``'s mirror (insert/remove hooks)."""
        self._index = index
        index.mirror = self

    # -- maintenance hooks (called by QueryInvertedFile) --------------------

    def on_insert(self, term: str, query_id: int, new_block: bool) -> None:
        state = self._terms.get(term)
        if state is None:
            state = self._terms[term] = FlatTermPostings()
        if state.structure_stale:
            return
        state.append(query_id, self._columns.assign(query_id), new_block)

    def on_remove(
        self, term: str, query_id: int, block_deleted: bool
    ) -> None:
        state = self._terms.get(term)
        if state is None:
            return
        if block_deleted:
            # Ordinals shifted under us; re-derive from the source of
            # truth before the term is used again.
            state.structure_stale = True
            return
        if state.structure_stale:
            return
        state.tombstone(query_id)
        if state.needs_compaction():
            self._rebuild(state, self._index.list_for(term))
            self.compactions += 1
            if self.counters is not None:
                self.counters.postings_compactions += 1

    def on_term_dropped(self, term: str) -> None:
        self._terms.pop(term, None)

    def note_dirty(self, term: str) -> None:
        """A result update dirtied one of the term's blocks.

        The engine calls this alongside ``block.meta_dirty = True`` so
        the per-block summary cache is resynced before its next use —
        a stale cached threshold would make the batch verdict unsound.
        """
        state = self._terms.get(term)
        if state is not None:
            state.summaries_stale = True

    # -- structure ---------------------------------------------------------

    def term_state(self, term: str, postings) -> Optional[FlatTermPostings]:
        """The term's mirror, rebuilt first if structurally stale."""
        state = self._terms.get(term)
        if state is None:
            state = self._terms[term] = FlatTermPostings()
            state.structure_stale = True
        if state.structure_stale:
            self._rebuild(state, postings)
        return state

    def _rebuild(self, state: FlatTermPostings, postings) -> None:
        """Re-derive a term's arrays from its linked postings list.

        Doubles as compaction: the linked structure physically removed
        unsubscribed postings, so a rebuild carries no tombstones.
        """
        qids: List[int] = []
        starts: List[int] = []
        if postings is not None:
            for block in postings.blocks:
                starts.append(len(qids))
                qids.extend(block.query_ids)
        count = len(qids)
        capacity = _INITIAL_CAPACITY
        while capacity < count:
            capacity *= 2
        state.qids = np.zeros(capacity, dtype=np.int64)
        state.slots = np.zeros(capacity, dtype=np.intp)
        state.alive = np.zeros(capacity, dtype=np.bool_)
        if count:
            state.qids[:count] = qids
            slot_of = self._columns.slot_of
            state.slots[:count] = [slot_of[qid] for qid in qids]
            state.alive[:count] = True
        state.size = count
        state.dead = 0
        state.starts = starts
        state.structure_stale = False
        state.summaries_stale = True

    # -- batch skip evaluation (engine hot path) ----------------------------

    def sync_term(
        self,
        state: FlatTermPostings,
        blocks,
        result_sets,
        alpha: float,
        coeff: float,
        counters,
    ) -> None:
        """Refresh the term's dirty blocks and resync the summary cache.

        Dirty blocks whose live members are all filled refresh through
        one masked ``reduceat`` over the summary columns (bit-identical
        to the scalar walk — min/max over the same float64s); blocks
        with warm-up members fall back to the scalar refresh, which
        collects ``unfilled_ids``.  The per-block summary cache is then
        re-gathered from the block objects so it also reflects refreshes
        the scalar path performed since the last sync.
        """
        dirty = [
            index for index, block in enumerate(blocks) if block.meta_dirty
        ]
        if dirty and len(dirty) * 4 < len(blocks):
            # Sparse dirt: the whole-term gather below touches every
            # posting of the term, so for a handful of dirty blocks the
            # per-block columnar refresh (same bit-identity contract)
            # is cheaper.
            columns = self._columns
            for index in dirty:
                block = blocks[index]
                if block.refresh_from_columns(columns):
                    if counters is not None:
                        counters.columnar_refreshes += 1
                else:
                    block.refresh_metadata(result_sets, alpha, coeff)
                    if counters is not None:
                        counters.scalar_refreshes += 1
        elif dirty:
            size = state.size
            starts = np.asarray(state.starts, dtype=np.intp)
            columns = self._columns
            slots = state.slots[:size]
            alive = state.alive[:size]
            filled = columns.filled[slots] & alive
            unfilled_any = np.logical_or.reduceat(
                alive & ~columns.filled[slots], starts
            )
            static = np.where(
                filled, columns.static_dr[slots], np.inf
            )
            trel = np.where(filled, columns.trel_de[slots], -np.inf)
            created = np.where(
                filled, columns.created_de[slots], np.inf
            )
            dtrel_min = np.minimum.reduceat(static, starts)
            trel_max = np.maximum.reduceat(trel, starts)
            earliest = np.minimum.reduceat(created, starts)
            for index in dirty:
                block = blocks[index]
                if unfilled_any[index]:
                    block.refresh_metadata(result_sets, alpha, coeff)
                    if counters is not None:
                        counters.scalar_refreshes += 1
                else:
                    block.dtrel_min = float(dtrel_min[index])
                    # The scalar refresh seeds trel_max at 0.0; clamp to
                    # match (same as QuerySummaryColumns.summarize).
                    block.trel_max_de = max(0.0, float(trel_max[index]))
                    block.earliest_de = float(earliest[index])
                    block.unfilled_ids = []
                    block.has_unfilled = False
                    block.meta_dirty = False
                    if counters is not None:
                        counters.columnar_refreshes += 1
        state.s_dtrel = np.array(
            [block.dtrel_min for block in blocks], dtype=np.float64
        )
        state.s_trel = np.array(
            [block.trel_max_de for block in blocks], dtype=np.float64
        )
        state.s_earliest = np.array(
            [block.earliest_de for block in blocks], dtype=np.float64
        )
        state.summaries_stale = False

    def prepare(
        self,
        lists: Dict[str, object],
        result_sets,
        alpha: float,
        coeff: float,
        k: int,
        max_ps: float,
        decay_cache,
        now: float,
        counters,
    ) -> Optional[Dict[str, Tuple[List[bool], List[float]]]]:
        """One-pass Lemma 7 prefilter over every candidate block.

        Returns per-term ``(verdicts, thresholds)`` rows.  A ``True``
        verdict means the block is *guaranteed* to be skipped by the
        scalar group check (so the engine may take the skip without
        running it); ``False`` means "unknown — run the scalar check",
        which then reuses the precomputed Eq. 12 threshold instead of
        re-deriving it per block (the value is bit-identical: same
        summaries, same association order, same memoized decay powers).
        """
        states: List[Tuple[str, FlatTermPostings]] = []
        for term, postings in lists.items():
            state = self.term_state(term, postings)
            blocks = postings.blocks
            if state.summaries_stale or state.block_count != len(blocks):
                if state.block_count != len(blocks):
                    # Defensive: a structural drift the hooks missed.
                    self._rebuild(state, postings)
                self.sync_term(
                    state, blocks, result_sets, alpha, coeff, counters
                )
            states.append((term, state))
        if not states:
            return None
        counts = [state.block_count for _term, state in states]
        total = sum(counts)
        if total == 0:
            return None
        if len(states) == 1:
            only = states[0][1]
            dtrel, trel, earliest = only.s_dtrel, only.s_trel, only.s_earliest
        else:
            dtrel = np.concatenate(
                [state.s_dtrel for _term, state in states]
            )
            trel = np.concatenate(
                [state.s_trel for _term, state in states]
            )
            earliest = np.concatenate(
                [state.s_earliest for _term, state in states]
            )
        # Decay powers through the shared memo (CPython pow, exact);
        # ``at_age`` memoizes per unique age, so repeats are dict hits —
        # cheaper than deduplicating the tiny array with ``np.unique``.
        at_age = decay_cache.at_age
        recency = np.array(
            [at_age(age) for age in (now - earliest).tolist()],
            dtype=np.float64,
        )
        # Same association order as threshold_from_summaries: blocks
        # with no filled member carry dtrel_min = -inf, so their
        # threshold is -inf and the verdict is False (fall back).
        threshold = dtrel - alpha * trel * (1.0 - recency)
        upper0 = alpha * max_ps + coeff * ((k - 1) - 0.0)
        verdict = upper0 <= threshold
        rows: Dict[str, Tuple[List[bool], List[float]]] = {}
        position = 0
        for (term, _state), count in zip(states, counts):
            rows[term] = (
                verdict[position : position + count].tolist(),
                threshold[position : position + count].tolist(),
            )
            position += count
        return rows

    # -- audit / accounting -------------------------------------------------

    def audit(self) -> Dict[str, List[List[int]]]:
        """Live postings grouped by block, per term (test hook).

        Structurally-stale terms are rebuilt first, so the view is what
        the next batch pass would see.
        """
        view: Dict[str, List[List[int]]] = {}
        index = self._index
        for term, state in self._terms.items():
            if state.structure_stale:
                self._rebuild(
                    state, index.list_for(term) if index is not None else None
                )
            view[term] = state.live_blocks()
        return view

    def term_names(self):
        return self._terms.keys()
