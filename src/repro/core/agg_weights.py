"""Aggregated term weight summaries (Definition 7, Lemma 6) and the
``Φ_max`` memory budget that governs the R1/R2 result split (Section 7.1).

For a document set ``S`` the summary stores, per term,

    AW(w, S) = Σ_{d ∈ S, w ∈ d}  tf_d(w) / ||d||

so that the similarity mass of a new document against the whole set is a
single sparse dot product (Lemma 6):

    Σ_{d ∈ S} Sim(d, d_n) = Σ_{w ∈ d_n} AW(w, S) · tf_n(w) / ||d_n||
"""

from __future__ import annotations

from typing import Dict

from repro.config import UNLIMITED
from repro.text.vectors import TermVector

#: Accumulated float weights below this magnitude are treated as zero and
#: dropped, so add/remove churn does not leak dictionary entries.
_ZERO_TOLERANCE = 1e-12


class AggregatedTermWeights:
    """Incrementally maintained ``AW`` table for one document set."""

    __slots__ = ("_weights",)

    def __init__(self) -> None:
        self._weights: Dict[str, float] = {}

    @property
    def entry_count(self) -> int:
        """Number of (term, weight) entries — the unit ``Φ_max`` meters."""
        return len(self._weights)

    def weight(self, term: str) -> float:
        return self._weights.get(term, 0.0)

    def add_document(self, vector: TermVector) -> None:
        """Fold one document's unit weights into the table."""
        norm = vector.norm
        if norm == 0.0:
            return
        weights = self._weights
        for term, count in vector.items():
            weights[term] = weights.get(term, 0.0) + count / norm

    def remove_document(self, vector: TermVector) -> None:
        """Subtract a previously added document's unit weights."""
        norm = vector.norm
        if norm == 0.0:
            return
        weights = self._weights
        for term, count in vector.items():
            remaining = weights.get(term, 0.0) - count / norm
            if abs(remaining) <= _ZERO_TOLERANCE:
                weights.pop(term, None)
            else:
                weights[term] = remaining

    def similarity_sum(self, vector: TermVector) -> float:
        """Lemma 6: ``Σ_{d∈S} Sim(d, vector)`` in one pass over ``vector``."""
        norm = vector.norm
        if norm == 0.0 or not self._weights:
            return 0.0
        weights = self._weights
        total = 0.0
        for term, count in vector.items():
            aw = weights.get(term)
            if aw is not None:
                total += aw * count
        return total / norm


class MemoryBudget:
    """Engine-wide accountant for aggregated-weight entries (``Φ_max``).

    The budget is shared across all queries of an engine: a document is
    admitted to ``R1`` (summarised) only if its distinct-term count still
    fits, otherwise it goes to ``R2`` and its similarities are computed
    per document (Section 7.1, "Update of Aggregated Term Weight
    Summaries").
    """

    __slots__ = ("_capacity", "_used")

    def __init__(self, capacity: int = UNLIMITED) -> None:
        if capacity != UNLIMITED and capacity < 0:
            raise ValueError(f"capacity must be >= 0 or UNLIMITED, got {capacity}")
        self._capacity = capacity
        self._used = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def used(self) -> int:
        return self._used

    @property
    def unlimited(self) -> bool:
        return self._capacity == UNLIMITED

    def try_reserve(self, entries: int) -> bool:
        """Reserve ``entries`` slots; False (and no change) if they don't fit."""
        if entries < 0:
            raise ValueError(f"entries must be >= 0, got {entries}")
        if self._capacity != UNLIMITED and self._used + entries > self._capacity:
            return False
        self._used += entries
        return True

    def release(self, entries: int) -> None:
        if entries < 0:
            raise ValueError(f"entries must be >= 0, got {entries}")
        if entries > self._used:
            raise ValueError(
                f"releasing {entries} entries but only {self._used} reserved"
            )
        self._used -= entries
