"""Aggregated term weight summaries (Definition 7, Lemma 6) and the
``Φ_max`` memory budget that governs the R1/R2 result split (Section 7.1).

For a document set ``S`` the summary stores, per term,

    AW(w, S) = Σ_{d ∈ S, w ∈ d}  tf_d(w) / ||d||

so that the similarity mass of a new document against the whole set is a
single sparse dot product (Lemma 6):

    Σ_{d ∈ S} Sim(d, d_n) = Σ_{w ∈ d_n} AW(w, S) · tf_n(w) / ||d_n||
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import UNLIMITED
from repro.text.vectors import TermVector

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the image
    np = None  # type: ignore[assignment]

#: Accumulated float weights below this magnitude are treated as zero and
#: dropped, so add/remove churn does not leak dictionary entries.
_ZERO_TOLERANCE = 1e-12


class AggregatedTermWeights:
    """Incrementally maintained ``AW`` table for one document set.

    With ``track_ids=True`` (requested by array-capable kernel backends)
    the table also mirrors itself keyed by interned term id, so
    :meth:`arrays` can expose the summary as sorted contiguous numpy
    columns for a vectorized Lemma 6 dot product.  The mirror stores the
    exact floats the string table stores (both come from
    ``count / norm``), so either representation yields the same sum.
    """

    __slots__ = ("_weights", "_ids", "_arrays")

    def __init__(self, track_ids: bool = False) -> None:
        self._weights: Dict[str, float] = {}
        self._ids: Optional[Dict[int, float]] = (
            {} if (track_ids and np is not None) else None
        )
        #: Cached ``(sorted term-id array, weight array)``; rebuilt lazily.
        self._arrays = None

    @property
    def entry_count(self) -> int:
        """Number of (term, weight) entries — the unit ``Φ_max`` meters."""
        return len(self._weights)

    def weight(self, term: str) -> float:
        return self._weights.get(term, 0.0)

    def add_document(self, vector: TermVector) -> None:
        """Fold one document's unit weights into the table."""
        norm = vector.norm
        if norm == 0.0:
            return
        weights = self._weights
        for term, count in vector.items():
            weights[term] = weights.get(term, 0.0) + count / norm
        ids = self._ids
        if ids is not None:
            # vector.packed() weights are the same count/norm divisions.
            for term_id, weight in zip(*vector.packed()):
                ids[term_id] = ids.get(term_id, 0.0) + weight
            self._arrays = None

    def remove_document(self, vector: TermVector) -> None:
        """Subtract a previously added document's unit weights."""
        norm = vector.norm
        if norm == 0.0:
            return
        weights = self._weights
        for term, count in vector.items():
            remaining = weights.get(term, 0.0) - count / norm
            if abs(remaining) <= _ZERO_TOLERANCE:
                weights.pop(term, None)
            else:
                weights[term] = remaining
        ids = self._ids
        if ids is not None:
            for term_id, weight in zip(*vector.packed()):
                remaining = ids.get(term_id, 0.0) - weight
                if abs(remaining) <= _ZERO_TOLERANCE:
                    ids.pop(term_id, None)
                else:
                    ids[term_id] = remaining
            self._arrays = None

    def similarity_sum(self, vector: TermVector) -> float:
        """Lemma 6: ``Σ_{d∈S} Sim(d, vector)`` in one pass over ``vector``."""
        norm = vector.norm
        if norm == 0.0 or not self._weights:
            return 0.0
        weights = self._weights
        total = 0.0
        for term, count in vector.items():
            aw = weights.get(term)
            if aw is not None:
                total += aw * count
        return total / norm

    def arrays(self):
        """``(term_ids, weights)`` numpy columns sorted by id, or None.

        None when id tracking is off (pure-python engines) or the table
        is empty; callers then fall back to :meth:`similarity_sum`.
        """
        ids = self._ids
        if ids is None or not ids:
            return None
        cached = self._arrays
        if cached is None:
            id_array = np.fromiter(ids.keys(), dtype=np.int64, count=len(ids))
            weight_array = np.fromiter(
                ids.values(), dtype=np.float64, count=len(ids)
            )
            order = np.argsort(id_array, kind="stable")
            cached = (id_array[order], weight_array[order])
            self._arrays = cached
        return cached


class MemoryBudget:
    """Engine-wide accountant for aggregated-weight entries (``Φ_max``).

    The budget is shared across all queries of an engine: a document is
    admitted to ``R1`` (summarised) only if its distinct-term count still
    fits, otherwise it goes to ``R2`` and its similarities are computed
    per document (Section 7.1, "Update of Aggregated Term Weight
    Summaries").
    """

    __slots__ = ("_capacity", "_used")

    def __init__(self, capacity: int = UNLIMITED) -> None:
        if capacity != UNLIMITED and capacity < 0:
            raise ValueError(f"capacity must be >= 0 or UNLIMITED, got {capacity}")
        self._capacity = capacity
        self._used = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def used(self) -> int:
        return self._used

    @property
    def unlimited(self) -> bool:
        return self._capacity == UNLIMITED

    def try_reserve(self, entries: int) -> bool:
        """Reserve ``entries`` slots; False (and no change) if they don't fit."""
        if entries < 0:
            raise ValueError(f"entries must be >= 0, got {entries}")
        if self._capacity != UNLIMITED and self._used + entries > self._capacity:
            return False
        self._used += entries
        return True

    def release(self, entries: int) -> None:
        if entries < 0:
            raise ValueError(f"entries must be >= 0, got {entries}")
        if entries > self._used:
            raise ValueError(
                f"releasing {entries} entries but only {self._used} reserved"
            )
        self._used -= entries
