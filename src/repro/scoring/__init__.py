"""Scoring: relevance, recency, diversity, and Lemma-1 contributions."""

from repro.scoring.contribution import (
    contribution_from_parts,
    dr_of_new,
    dr_of_oldest,
    replacement_improves,
)
from repro.scoring.diversity import (
    diversity_coefficient,
    diversity_score,
    dr_score,
    pairwise_dissimilarity_sum,
    relevance_score,
    sum_similarity_to,
)
from repro.scoring.recency import NO_DECAY, ExponentialDecay
from repro.scoring.relevance import LanguageModelScorer

__all__ = [
    "ExponentialDecay",
    "LanguageModelScorer",
    "NO_DECAY",
    "contribution_from_parts",
    "diversity_coefficient",
    "diversity_score",
    "dr_of_new",
    "dr_of_oldest",
    "dr_score",
    "pairwise_dissimilarity_sum",
    "relevance_score",
    "replacement_improves",
    "sum_similarity_to",
]
