"""Per-document diversity-and-relevance contributions (Lemma 1).

The engines never compare ``DR(q.R')`` with ``DR(q.R)`` directly;
instead, by Lemma 1,

    DR(q.R') - DR(q.R) = dr_q(d_n) - dr_q(q.d_e)

where the two contributions are Eq. 8 and Eq. 7.  This module provides
both the reference O(k) computations over explicit document sets and the
closed forms used by the result tables:

    dr_q(d)  = α · TRel(q, d) · T(d)
             + (2 - 2α)/(k - 1) · ((k - 1) - Σ_{d_i} Sim(d, d_i))

because ``Σ d(d, d_i) = (k - 1) - Σ Sim(d, d_i)`` over ``k - 1`` other
documents.  For a new document ``T(d_n) = 1`` (it was created now).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.scoring.diversity import diversity_coefficient, sum_similarity_to
from repro.scoring.recency import ExponentialDecay
from repro.scoring.relevance import LanguageModelScorer
from repro.stream.document import Document


def contribution_from_parts(
    trel: float,
    recency: float,
    sim_sum: float,
    alpha: float,
    k: int,
) -> float:
    """``dr_q`` from its precomputed parts.

    ``sim_sum`` is ``Σ Sim(d, d_i)`` against the other ``k - 1`` result
    documents; ``recency`` is ``T(d)`` at the evaluation time.
    """
    coeff = diversity_coefficient(alpha, k)
    return alpha * trel * recency + coeff * ((k - 1) - sim_sum)


def dr_of_oldest(
    query_terms: Iterable[str],
    documents: Sequence[Document],
    scorer: LanguageModelScorer,
    decay: ExponentialDecay,
    now: float,
    alpha: float,
    k: int,
) -> float:
    """``dr_q(q.d_e)`` (Eq. 7) computed from scratch.

    ``documents`` is the full result set; the document with the earliest
    creation time is the oldest.  Reference implementation for tests and
    the naive baseline.
    """
    oldest = min(documents, key=lambda d: (d.created_at, d.doc_id))
    rest = [d for d in documents if d.doc_id != oldest.doc_id]
    trel = scorer.trel(query_terms, oldest.vector)
    recency = decay.at(oldest.created_at, now)
    sim_sum = sum_similarity_to(oldest, rest)
    return contribution_from_parts(trel, recency, sim_sum, alpha, k)


def dr_of_new(
    query_terms: Iterable[str],
    new_document: Document,
    kept_documents: Sequence[Document],
    scorer: LanguageModelScorer,
    alpha: float,
    k: int,
) -> float:
    """``dr_q(d_n)`` (Eq. 8): the new document arrives *now*, so T = 1.

    ``kept_documents`` is ``q.R' \\ {d_n} = q.R \\ {q.d_e}``.
    """
    trel = scorer.trel(query_terms, new_document.vector)
    sim_sum = sum_similarity_to(new_document, kept_documents)
    return contribution_from_parts(trel, 1.0, sim_sum, alpha, k)


def replacement_improves(
    query_terms: Iterable[str],
    documents: Sequence[Document],
    new_document: Document,
    scorer: LanguageModelScorer,
    decay: ExponentialDecay,
    now: float,
    alpha: float,
    k: int,
) -> bool:
    """Definition 2's replacement test via Lemma 1 (strict improvement)."""
    terms = tuple(query_terms)
    oldest = min(documents, key=lambda d: (d.created_at, d.doc_id))
    kept = [d for d in documents if d.doc_id != oldest.doc_id]
    dr_new = dr_of_new(terms, new_document, kept, scorer, alpha, k)
    dr_old = dr_of_oldest(terms, documents, scorer, decay, now, alpha, k)
    return dr_new > dr_old
