"""Exponential decay recency (Eq. 4).

``T(d) = B^{-(t_cur - d.t_c)}`` with base ``B >= 1``.  The paper's
experiments parameterise the decay by the *decaying scale*
``B^{-Δt_sim}`` — the recency a document retains after the whole
simulation — which :meth:`ExponentialDecay.from_scale` reproduces.
"""

from __future__ import annotations


class ExponentialDecay:
    """Monotone exponential recency function."""

    __slots__ = ("base",)

    def __init__(self, base: float) -> None:
        if base < 1.0:
            raise ValueError(f"decay base must be >= 1, got {base}")
        self.base = float(base)

    @classmethod
    def from_scale(cls, scale: float, horizon: float) -> "ExponentialDecay":
        """Build a decay whose value after ``horizon`` seconds is ``scale``."""
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        if horizon <= 0.0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        return cls(scale ** (-1.0 / horizon))

    @classmethod
    def from_half_life(cls, half_life: float) -> "ExponentialDecay":
        """Build a decay with value 0.5 after ``half_life`` seconds."""
        return cls.from_scale(0.5, half_life)

    def at_age(self, age: float) -> float:
        """``T`` for a document ``age`` seconds old (clamped at age 0)."""
        if age <= 0.0:
            return 1.0
        return self.base ** (-age)

    def at(self, created_at: float, now: float) -> float:
        """``T(d)`` for a document created at ``created_at``."""
        return self.at_age(now - created_at)

    def __repr__(self) -> str:
        return f"ExponentialDecay(base={self.base!r})"


class CachedDecay:
    """Memoising view over an :class:`ExponentialDecay`.

    ``base ** (-age)`` is a pure function of the age gap, but the pow is
    expensive and document-processing evaluates it for the same handful
    of gaps (the distinct ``q.d_e`` timestamps) thousands of times per
    published document.  The engine clears the cache at the start of
    every publish, so entries never outlive one document's processing.

    Exposes the same ``at`` / ``at_age`` interface as the wrapped decay
    and returns bit-identical values (each power is computed by the
    wrapped decay exactly once per cache lifetime).
    """

    __slots__ = ("_decay", "_cache")

    def __init__(self, decay: ExponentialDecay) -> None:
        self._decay = decay
        self._cache: dict = {}

    @property
    def base(self) -> float:
        return self._decay.base

    def clear(self) -> None:
        self._cache.clear()

    def at_age(self, age: float) -> float:
        value = self._cache.get(age)
        if value is None:
            value = self._decay.at_age(age)
            self._cache[age] = value
        return value

    def at(self, created_at: float, now: float) -> float:
        return self.at_age(now - created_at)


#: Decay that ignores time entirely (``T(d) == 1`` always).
NO_DECAY = ExponentialDecay(1.0)
