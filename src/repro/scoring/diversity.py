"""Max-sum diversity and the combined diversity-and-relevance score.

Implements Eq. 1 (``DR``), Eq. 5 (``D``) and the coefficient
``(2 - 2α)/(k - 1)`` that recurs throughout the filtering machinery.  All
functions take explicit document sequences so they double as the
reference ("textbook") implementations that the optimised engine is
tested against.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.scoring.recency import ExponentialDecay
from repro.scoring.relevance import LanguageModelScorer
from repro.stream.document import Document
from repro.text.vectors import cosine_similarity, dissimilarity


def diversity_coefficient(alpha: float, k: int) -> float:
    """``(2 - 2α)/(k - 1)``; zero when k <= 1 (no pairs to diversify)."""
    if k <= 1:
        return 0.0
    return (2.0 - 2.0 * alpha) / (k - 1)


def pairwise_dissimilarity_sum(documents: Sequence[Document]) -> float:
    """``Σ_{i<j} d(d_i, d_j)`` over the set."""
    total = 0.0
    n = len(documents)
    for i in range(n):
        vec_i = documents[i].vector
        for j in range(i + 1, n):
            total += dissimilarity(vec_i, documents[j].vector)
    return total


def diversity_score(documents: Sequence[Document], k: int) -> float:
    """``D(q.R)`` (Eq. 5) with the paper's ``2/(k-1)`` normalisation."""
    if k <= 1:
        return 0.0
    return 2.0 / (k - 1) * pairwise_dissimilarity_sum(documents)


def relevance_score(
    query_terms: Iterable[str],
    document: Document,
    scorer: LanguageModelScorer,
    decay: ExponentialDecay,
    now: float,
) -> float:
    """``R(q, d) = TRel(q, d) × T(d)`` (Eq. 2)."""
    return scorer.trel(query_terms, document.vector) * decay.at(
        document.created_at, now
    )


def dr_score(
    query_terms: Iterable[str],
    documents: Sequence[Document],
    scorer: LanguageModelScorer,
    decay: ExponentialDecay,
    now: float,
    alpha: float,
    k: int,
) -> float:
    """``DR(q.R)`` (Eq. 1), computed from first principles in O(k²).

    This is the straightforward reference the engines must agree with
    (via Lemma 1); it is also the scoring core of the naive baseline.
    """
    terms = tuple(query_terms)
    relevance = sum(
        relevance_score(terms, document, scorer, decay, now)
        for document in documents
    )
    return alpha * relevance + (1.0 - alpha) * diversity_score(documents, k)


def sum_similarity_to(
    document: Document, others: Iterable[Document]
) -> float:
    """``Σ Sim(d, d_i)`` of one document against a set."""
    vector = document.vector
    return sum(cosine_similarity(vector, other.vector) for other in others)
