"""Language-model text relevance (Eq. 3 and the ``PS`` formula).

``PS(d, w)`` is the Jelinek-Mercer smoothed probability of term ``w``
under the document's language model; ``TRel(q, d)`` is the product over
the query keywords.  The scorer holds a reference to the shared, evolving
:class:`~repro.text.collection_stats.CollectionStatistics`.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.text.collection_stats import CollectionStatistics
from repro.text.vectors import TermVector


class LanguageModelScorer:
    """Smoothed language-model scorer shared by all queries of an engine."""

    __slots__ = ("_stats", "_lambda")

    def __init__(self, stats: CollectionStatistics, smoothing_lambda: float) -> None:
        if not 0.0 <= smoothing_lambda <= 1.0:
            raise ValueError(
                f"smoothing_lambda must be in [0, 1], got {smoothing_lambda}"
            )
        self._stats = stats
        self._lambda = smoothing_lambda

    @property
    def stats(self) -> CollectionStatistics:
        return self._stats

    @property
    def smoothing_lambda(self) -> float:
        return self._lambda

    def ps(self, vector: TermVector, term: str) -> float:
        """``PS(d.v_d, w)`` — smoothed term probability."""
        background = self._lambda * self._stats.probability(term)
        if vector.length == 0:
            return background
        return (
            (1.0 - self._lambda) * vector.frequency(term) / vector.length
            + background
        )

    def background(self, term: str) -> float:
        """``PS`` for a document that does not contain ``term``."""
        return self._lambda * self._stats.probability(term)

    def trel(self, query_terms: Iterable[str], vector: TermVector) -> float:
        """``TRel(q, d)`` — product of ``PS`` over the query keywords."""
        score = 1.0
        for term in query_terms:
            score *= self.ps(vector, term)
        return score

    def trel_from_ps(
        self,
        query_terms: Iterable[str],
        ps_cache: Dict[str, float],
        vector: TermVector,
    ) -> float:
        """``TRel`` reusing per-document ``PS`` values computed earlier.

        ``ps_cache`` maps terms *present in the document* to their ``PS``;
        query keywords missing from the cache fall back to the background
        probability.  This is the hot path of document processing, where
        each document's ``PS`` values are computed once and reused across
        every candidate query.
        """
        score = 1.0
        for term in query_terms:
            value = ps_cache.get(term)
            if value is None:
                if term in vector:
                    value = self.ps(vector, term)
                    ps_cache[term] = value
                else:
                    value = self.background(term)
            score *= value
        return score
