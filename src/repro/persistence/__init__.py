"""Checkpoint/restore of engine state."""

from repro.persistence.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint,
    checkpoint_sharded,
    load,
    restore,
    restore_sharded,
    save,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "checkpoint",
    "checkpoint_sharded",
    "load",
    "restore",
    "restore_sharded",
    "save",
]
