"""Checkpoint/restore of engine state and the op-journal stream."""

from repro.persistence.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint,
    checkpoint_sharded,
    engine_checkpoint,
    load,
    restore,
    restore_payload,
    restore_sharded,
    save,
)
from repro.persistence.journal import (
    ENTRY_KINDS,
    OpJournal,
    publish_entry,
    subscribe_entry,
    unsubscribe_entry,
    validate_entry,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "ENTRY_KINDS",
    "OpJournal",
    "checkpoint",
    "checkpoint_sharded",
    "engine_checkpoint",
    "load",
    "publish_entry",
    "restore",
    "restore_payload",
    "restore_sharded",
    "save",
    "subscribe_entry",
    "unsubscribe_entry",
    "validate_entry",
]
