"""Checkpoint/restore of engine state."""

from repro.persistence.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint,
    load,
    restore,
    save,
)

__all__ = ["CHECKPOINT_VERSION", "checkpoint", "load", "restore", "save"]
