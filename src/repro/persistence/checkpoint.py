"""Engine checkpointing: serialise a live engine to a JSON-safe dict.

A checkpoint captures everything the engine cannot rebuild from code:
configuration, simulated time, collection statistics, the document
store, the subscriptions and each query's result table (document ids,
cached TRel, accumulated similarities, R1 membership).  Derived
structures — the inverted file's block summaries, MCS covers, aggregated
term weight tables — are *not* stored; they are reconstructed on restore
(summaries lazily, AW tables eagerly), which keeps checkpoints small and
forward-compatible.

``restore`` returns an engine whose observable behaviour is identical to
the original: same results, same thresholds, same future decisions
(property-tested in ``tests/test_persistence.py``).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Union

from repro.config import EngineConfig, GroupBoundMode
from repro.core.engine import DasEngine
from repro.core.query import DasQuery
from repro.core.result_set import ResultEntry
from repro.distributed.sharded import ShardedDasEngine
from repro.stream.document import Document
from repro.text.vectors import TermVector

#: Format marker for forward compatibility.
CHECKPOINT_VERSION = 1


def _config_to_dict(config: EngineConfig) -> Dict:
    return {
        "k": config.k,
        "alpha": config.alpha,
        "smoothing_lambda": config.smoothing_lambda,
        "decay_base": config.decay_base,
        "block_size": config.block_size,
        "delta_s": config.delta_s,
        "phi_max": config.phi_max,
        "group_bound_mode": config.group_bound_mode.value,
        "use_blocks": config.use_blocks,
        "use_group_filter": config.use_group_filter,
        "use_agg_weights": config.use_agg_weights,
        "init_scan_limit": config.init_scan_limit,
        "store_capacity": config.store_capacity,
        "backend": config.backend,
        "mode": config.mode,
        "window_size": config.window_size,
        "spatial_cells": config.spatial_cells,
        "spatial_weight": config.spatial_weight,
    }


def _config_from_dict(payload: Dict) -> EngineConfig:
    payload = dict(payload)
    payload["group_bound_mode"] = GroupBoundMode(payload["group_bound_mode"])
    return EngineConfig(**payload)


def checkpoint(engine: DasEngine) -> Dict:
    """Capture the engine's full logical state as a JSON-safe dict."""
    stats = engine.stats
    documents = []
    for document in engine.store:
        record = {
            "id": document.doc_id,
            "tf": dict(document.vector.items()),
            "t": document.created_at,
            "text": document.text,
        }
        if document.location is not None:
            record["loc"] = list(document.location)
        documents.append(record)
    queries = []
    for query_id in sorted(engine._queries):
        query = engine._queries[query_id]
        record = {
            "id": query_id,
            "terms": list(query.terms),
        }
        if query.location is not None:
            record["location"] = list(query.location)
        if query.window is not None:
            record["window"] = query.window
        if engine.strategy is None:
            result_set = engine._result_sets[query_id]
            record["results"] = [
                {
                    "doc": entry.document.doc_id,
                    "trel": entry.trel,
                    "sim_acc": entry.sim_acc,
                    "in_r1": entry.in_r1,
                }
                for entry in result_set.entries
            ]
        queries.append(record)
    payload = {
        "version": CHECKPOINT_VERSION,
        "config": _config_to_dict(engine.config),
        "now": engine.clock.now,
        "stats": {
            "term_counts": dict(stats._term_counts),
            "total_tokens": stats.total_tokens,
            "total_documents": stats.total_documents,
        },
        "documents": documents,
        "queries": queries,
        "counters": engine.counters.as_dict(),
    }
    if engine.strategy is not None:
        # Strategy modes own their result/candidate state; per-query
        # ``results`` rows above are replaced by one strategy blob.
        payload["strategy"] = engine.strategy.checkpoint_state()
    return payload


def restore(payload: Dict) -> DasEngine:
    """Rebuild an engine from a checkpoint dict."""
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version!r} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    engine = DasEngine(_config_from_dict(payload["config"]))

    # Collection statistics are restored wholesale (re-adding documents
    # would double-count documents that were evicted from the store but
    # already folded into the statistics).
    stats = engine.stats
    stats._term_counts = {
        term: int(count)
        for term, count in payload["stats"]["term_counts"].items()
    }
    stats._total_tokens = int(payload["stats"]["total_tokens"])
    stats._total_documents = int(payload["stats"]["total_documents"])

    for record in payload["documents"]:
        engine.store.add(
            Document(
                int(record["id"]),
                TermVector(
                    {term: int(c) for term, c in record["tf"].items()}
                ),
                float(record["t"]),
                record.get("text"),
                record.get("loc"),
            )
        )

    for record in payload["queries"]:
        query = DasQuery(
            int(record["id"]),
            record["terms"],
            location=record.get("location"),
            window=record.get("window"),
        )
        if engine.strategy is not None:
            engine._queries[query.query_id] = query
            engine._last_query_id = query.query_id
            engine.counters.queries_subscribed += 1
        else:
            _restore_query(engine, query, record["results"])
    if engine.strategy is not None:
        engine.strategy.restore_state(payload["strategy"])

    engine.clock.advance_to(float(payload["now"]))

    # Work counters are restored wholesale, *after* rebuilding, so the
    # recovered engine continues the original's accounting instead of
    # re-counting the rebuild as fresh work (the rebuild above bumps
    # e.g. queries_subscribed; without this, a crash-recovered engine
    # double-counts everything that happened before the checkpoint).
    # Pre-counters checkpoints keep the rebuild-produced values.
    if "counters" in payload:
        engine.counters.load(payload["counters"])
    return engine


def _restore_query(engine: DasEngine, query: DasQuery, rows: List[Dict]) -> None:
    """Register a query and rebuild its result table row by row."""
    from repro.core.result_set import QueryResultSet

    result_set = QueryResultSet(
        engine.config.k,
        budget=engine._budget,
        track_aggregated_weights=engine.config.use_agg_weights,
        kernels=engine._kernels,
    )
    entries = []
    for row in rows:
        document = engine.store.get(int(row["doc"]))
        if document is None:
            raise ValueError(
                f"checkpoint references missing document {row['doc']}"
            )
        entry = ResultEntry(document, float(row["trel"]))
        entry.sim_acc = float(row["sim_acc"])
        entry.in_r1 = bool(row["in_r1"])
        entries.append(entry)
        engine.store.pin(document.doc_id)
    result_set._entries = entries
    # Rebuild the aggregated weight table over R1 \ {oldest} and account
    # for its budget.
    aw = result_set.aggregated_weights
    if aw is not None:
        for index, entry in enumerate(entries):
            if index == 0 or not entry.in_r1:
                continue
            size = len(entry.document.vector)
            if engine._budget is None or engine._budget.try_reserve(size):
                aw.add_document(entry.document.vector)
                entry.aw_resident = True
            else:
                entry.in_r1 = False

    engine._queries[query.query_id] = query
    engine._result_sets[query.query_id] = result_set
    engine._last_query_id = query.query_id
    touched = engine._index.insert(query)
    engine._memberships[query.query_id] = touched
    # Columnar summaries are derived state: rebuild them here so legacy
    # checkpoints (written before the columnar layout existed) restore
    # into columnar-enabled engines without any payload change.
    if engine._qcols is not None:
        engine._qcols.update(
            query.query_id, result_set, engine.config.alpha, engine._coeff
        )
    engine.counters.queries_subscribed += 1


def checkpoint_sharded(engine: ShardedDasEngine) -> Dict:
    """Capture a sharded engine: per-shard checkpoints plus routing state.

    The routing table and round-robin cursor are part of the logical
    state — without them a restored engine would route new queries
    differently from the original.
    """
    return {
        "version": CHECKPOINT_VERSION,
        "sharded": True,
        "routing": engine.routing,
        "assignment": {
            str(query_id): shard
            for query_id, shard in sorted(engine._assignment.items())
        },
        "next_round_robin": engine._next_round_robin,
        "shards": [checkpoint(shard) for shard in engine.shards],
    }


def restore_sharded(payload: Dict) -> ShardedDasEngine:
    """Rebuild a sharded engine from a :func:`checkpoint_sharded` dict."""
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version!r} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    restored = [restore(shard) for shard in payload["shards"]]
    shards = iter(restored)
    engine = ShardedDasEngine(
        len(restored),
        routing=payload["routing"],
        engine_factory=lambda: next(shards),
    )
    engine._assignment = {
        int(query_id): int(shard)
        for query_id, shard in payload["assignment"].items()
    }
    engine._next_round_robin = int(payload["next_round_robin"])
    return engine


def engine_checkpoint(engine: object) -> Dict:
    """Checkpoint any engine shape to its JSON-safe payload.

    Dispatches on shape: sharded engines produce the
    ``checkpoint_sharded`` schema, engines with their own ``checkpoint``
    hook (ParallelShardedEngine, duck-typed to avoid importing the
    multiprocessing stack here; the cluster coordinator) fan the call
    out themselves and return the same schema, and a plain
    :class:`DasEngine` produces the single-engine payload.  The cluster
    tier's ``cluster_stats`` checkpoint fetch and :func:`save` share
    this dispatch so every deployment writes interchangeable files.
    """
    if isinstance(engine, ShardedDasEngine):
        return checkpoint_sharded(engine)
    if not isinstance(engine, DasEngine) and hasattr(engine, "checkpoint"):
        return engine.checkpoint()
    return checkpoint(engine)


def restore_payload(payload: Dict) -> Union[DasEngine, ShardedDasEngine]:
    """Restore an in-process engine from any checkpoint payload shape."""
    if payload.get("sharded"):
        return restore_sharded(payload)
    return restore(payload)


def save(
    engine: Union[DasEngine, ShardedDasEngine],
    path: str,
    injector: Optional[object] = None,
) -> None:
    """Checkpoint the engine to a JSON file, atomically.

    The payload is written to a sibling temp file and moved into place
    with ``os.replace``, so a crash mid-write (simulated through the
    ``checkpoint.write`` injection point of ``injector``) leaves any
    previous checkpoint at ``path`` intact.  A ``torn`` fault leaves a
    truncated temp file behind — never a truncated checkpoint.
    """
    payload = engine_checkpoint(engine)
    data = json.dumps(payload)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w") as handle:
        if injector is not None:
            try:
                injector.fire("checkpoint.write")
            except Exception as exc:
                if getattr(exc, "action", "") == "torn":
                    handle.write(data[: len(data) // 2])
                raise
        handle.write(data)
    os.replace(tmp_path, path)


def load(
    path: str, parallel: bool = False
) -> Union[DasEngine, ShardedDasEngine]:
    """Restore an engine from a JSON checkpoint file.

    With ``parallel=True`` a sharded checkpoint comes back as a
    :class:`repro.parallel.ParallelShardedEngine` — one worker process
    per shard entry, each restored from its shard payload (sharded and
    parallel checkpoints share one schema, so either deployment can
    resume the other's file).
    """
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("sharded"):
        if parallel:
            from repro.parallel import ParallelShardedEngine

            return ParallelShardedEngine.from_checkpoint(payload)
        return restore_sharded(payload)
    return restore(payload)
