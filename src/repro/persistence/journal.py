"""Op journal with offsets: the replication stream of the cluster tier.

PR 4's parallel engine kept a per-shard list of accepted ops and
replayed it after a worker crash.  This module generalises that list
into a first-class append-only journal with *offsets*, so the same
entries can also be **streamed**: a coordinator appends every accepted
op, tracks per-consumer applied offsets, ships suffixes to standby
replicas with ``entries_since``, and truncates once every consumer has
moved past an offset (see DESIGN.md §13).

Entries are JSON-safe lists so they cross the NDJSON wire unchanged::

    ["subscribe", query_id, [term, ...]]
    ["unsubscribe", query_id]
    ["publish", [document_payload, ...]]

``publish`` entries carry full wire documents (explicit ``doc_id`` and
``created_at`` from :func:`repro.server.protocol.document_payload`), so
replaying an entry on any replica reproduces the primary's decisions
byte-for-byte — same ids, same timestamps, same term order.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Entry kinds understood by :func:`validate_entry` and the node-side
#: ``replicate`` op.
ENTRY_KINDS = ("subscribe", "unsubscribe", "publish")


def subscribe_entry(
    query_id: int,
    terms: Sequence[str],
    options: Optional[Dict[str, Any]] = None,
) -> List[Any]:
    """``options`` carries the strategy-mode subscribe fields
    (``location``, ``window``); entries without options keep the legacy
    3-element shape so old journals replay unchanged."""
    entry: List[Any] = ["subscribe", int(query_id), [str(term) for term in terms]]
    if options:
        entry.append(dict(options))
    return entry


def unsubscribe_entry(query_id: int) -> List[Any]:
    return ["unsubscribe", int(query_id)]


def publish_entry(documents: Sequence[Dict[str, Any]]) -> List[Any]:
    """A publish entry from already-encoded document payloads."""
    return ["publish", list(documents)]


def validate_entry(entry: Any) -> Tuple:
    """Check one journal entry's shape; returns ``(kind, payload...)``.

    Raises :class:`ReproError` on malformed entries — the node-side
    ``replicate`` op turns that into a structured error reply instead of
    applying half an entry.
    """
    if not isinstance(entry, (list, tuple)) or not entry:
        raise ReproError(f"journal entry must be a non-empty list, got {entry!r}")
    kind = entry[0]
    if kind not in ENTRY_KINDS:
        raise ReproError(
            f"unknown journal entry kind {kind!r}; expected one of {ENTRY_KINDS}"
        )
    if kind == "subscribe":
        if (
            len(entry) not in (3, 4)
            or not isinstance(entry[1], int)
            or not isinstance(entry[2], (list, tuple))
            or (len(entry) == 4 and not isinstance(entry[3], dict))
        ):
            raise ReproError(
                "subscribe entry must be "
                "['subscribe', query_id, [terms]] or "
                "['subscribe', query_id, [terms], {options}]"
            )
        options = dict(entry[3]) if len(entry) == 4 else {}
        return ("subscribe", entry[1], list(entry[2]), options)
    if kind == "unsubscribe":
        if len(entry) != 2 or not isinstance(entry[1], int):
            raise ReproError(
                "unsubscribe entry must be ['unsubscribe', query_id]"
            )
        return ("unsubscribe", entry[1])
    if len(entry) != 2 or not isinstance(entry[1], (list, tuple)):
        raise ReproError("publish entry must be ['publish', [documents]]")
    for payload in entry[1]:
        if not isinstance(payload, dict) or "doc_id" not in payload:
            raise ReproError(
                "publish entry documents must be document payloads "
                "with a 'doc_id'"
            )
    return ("publish", list(entry[1]))


class OpJournal:
    """Append-only op log addressed by monotonically increasing offsets.

    Offsets are *global* positions in the stream, not list indices:
    entry ``i`` keeps offset ``i`` forever, even after older entries are
    dropped by :meth:`truncate_to`.  ``base`` is the offset of the first
    retained entry and ``end`` the offset one past the last.

    With ``path`` set, every appended entry is also written as one JSON
    line (write-ahead; flushed per append), and :meth:`load` rebuilds a
    journal from such a file.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self._base = 0
        self._entries: List[Any] = []
        self._path = path
        self._file = open(path, "a") if path is not None else None

    @property
    def base(self) -> int:
        return self._base

    @property
    def end(self) -> int:
        return self._base + len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, entry: Any) -> int:
        """Append one entry; returns its offset."""
        offset = self.end
        self._entries.append(entry)
        if self._file is not None:
            self._file.write(
                json.dumps({"offset": offset, "entry": entry}) + "\n"
            )
            self._file.flush()
        return offset

    def entries_since(self, offset: int) -> List[Any]:
        """All retained entries at offsets ``>= offset``, in order.

        Raises :class:`ReproError` when ``offset`` precedes ``base`` —
        the caller asked for history that was already truncated and must
        fall back to a checkpoint handoff.
        """
        if offset >= self.end:
            return []
        if offset < self._base:
            raise ReproError(
                f"journal offset {offset} precedes base {self._base}; "
                "a checkpoint handoff is required"
            )
        return list(self._entries[offset - self._base :])

    def truncate_to(self, offset: int) -> int:
        """Drop entries below ``offset``; returns how many were dropped.

        ``offset`` is clamped to ``[base, end]`` — truncating to an
        offset nobody has reached yet would lose unreplicated entries.
        """
        offset = max(self._base, min(offset, self.end))
        dropped = offset - self._base
        if dropped:
            del self._entries[:dropped]
            self._base = offset
        return dropped

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    @classmethod
    def load(cls, path: str) -> "OpJournal":
        """Rebuild a journal from its JSONL file (crash recovery)."""
        journal = cls()
        if not os.path.exists(path):
            return journal
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                offset = int(record["offset"])
                if offset < journal.end:
                    continue  # duplicate flush; idempotent
                if offset > journal.end and not len(journal._entries):
                    journal._base = offset
                journal._entries.append(record["entry"])
        journal._path = path
        # Reattach the write-ahead file so post-recovery appends keep
        # journaling to the same path.
        journal._file = open(path, "a")
        return journal

    def __iter__(self) -> Iterable[Any]:
        return iter(self._entries)
