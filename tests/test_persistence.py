"""Tests for checkpoint/restore: behavioural equivalence after a round trip."""

from __future__ import annotations

import pytest

from repro.core.engine import DasEngine
from repro.persistence import CHECKPOINT_VERSION, checkpoint, load, restore, save
from repro.workloads.corpus import SyntheticTweetCorpus
from repro.workloads.queries import lqd_queries


@pytest.fixture
def live_engine():
    corpus = SyntheticTweetCorpus(vocab_size=150, n_topics=6, seed=12)
    engine = DasEngine.for_method("GIFilter", k=3, block_size=4)
    docs = corpus.documents(120)
    for document in docs[:60]:
        engine.publish(document)
    for query in lqd_queries(corpus, 15, first_id=0):
        engine.subscribe(query)
    for document in docs[60:90]:
        engine.publish(document)
    return engine, corpus, docs


def test_checkpoint_is_json_safe(live_engine):
    import json

    engine, _corpus, _docs = live_engine
    payload = checkpoint(engine)
    text = json.dumps(payload)
    assert json.loads(text)["version"] == CHECKPOINT_VERSION


def test_restore_preserves_observable_state(live_engine):
    engine, _corpus, _docs = live_engine
    clone = restore(checkpoint(engine))
    assert clone.clock.now == engine.clock.now
    assert clone.query_count == engine.query_count
    assert clone.stats.total_tokens == engine.stats.total_tokens
    assert len(clone.store) == len(engine.store)
    for query_id in engine._queries:
        assert [d.doc_id for d in clone.results(query_id)] == [
            d.doc_id for d in engine.results(query_id)
        ]
        assert clone.current_dr(query_id) == pytest.approx(
            engine.current_dr(query_id)
        )


def test_restore_preserves_future_behaviour(live_engine):
    """The restored engine must make identical decisions from here on."""
    engine, _corpus, docs = live_engine
    clone = restore(checkpoint(engine))
    for document in docs[90:]:
        original_notes = engine.publish(document)
        clone_notes = clone.publish(document)
        assert [(n.query_id, n.document.doc_id) for n in original_notes] == [
            (n.query_id, n.document.doc_id) for n in clone_notes
        ]
    for query_id in engine._queries:
        assert [d.doc_id for d in clone.results(query_id)] == [
            d.doc_id for d in engine.results(query_id)
        ]


def test_restore_preserves_subscription_order_constraint(live_engine):
    engine, corpus, _docs = live_engine
    clone = restore(checkpoint(engine))
    # New subscriptions still work and must carry larger ids.
    new_query = lqd_queries(corpus, 1, first_id=10_000)[0]
    clone.subscribe(new_query)
    assert clone.query_count == engine.query_count + 1


def test_save_load_file_roundtrip(live_engine, tmp_path):
    engine, _corpus, _docs = live_engine
    path = tmp_path / "engine.json"
    save(engine, str(path))
    clone = load(str(path))
    for query_id in engine._queries:
        assert [d.doc_id for d in clone.results(query_id)] == [
            d.doc_id for d in engine.results(query_id)
        ]


def test_restore_rejects_bad_version():
    with pytest.raises(ValueError):
        restore({"version": 999})


def test_restore_rejects_missing_document(live_engine):
    engine, _corpus, _docs = live_engine
    payload = checkpoint(engine)
    payload["documents"] = payload["documents"][:1]
    if payload["queries"] and payload["queries"][0]["results"]:
        with pytest.raises(ValueError):
            restore(payload)


def test_budget_accounting_restored():
    corpus = SyntheticTweetCorpus(vocab_size=100, n_topics=4, seed=8)
    engine = DasEngine.for_method("GIFilter", k=3, phi_max=40)
    for document in corpus.documents(60):
        engine.publish(document)
    for query in lqd_queries(corpus, 8, first_id=0):
        engine.subscribe(query)
    clone = restore(checkpoint(engine))
    assert clone._budget.used == engine._budget.used
