"""Slow-consumer policy tests: one stalled subscriber per policy.

The workload is tuned so every post-warm-up publish triggers exactly one
replacement notification per standing query (k=2, alpha=1, fast decay,
each document strictly fresher), making drop/coalesce counters exactly
predictable.  A healthy "control" subscriber with the same keywords
receives the full stream, proving the matcher kept making progress
around the stalled one.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.config import ServerConfig
from repro.core.engine import DasEngine
from repro.server import InProcessClient, ServerRuntime


def run(coroutine, timeout=30.0):
    return asyncio.run(asyncio.wait_for(coroutine, timeout))


def engine():
    # Every publish after warm-up evicts the oldest result: one
    # notification per query per document, deterministically.
    return DasEngine.for_method(
        "GIFilter", k=2, block_size=4, alpha=1.0, decay_base=1.5,
        backend="python",
    )


def make_runtime(**overrides):
    defaults = dict(
        ingest_capacity=64,
        outbound_capacity=2,
        max_batch_size=1,
        drain_timeout=5.0,
    )
    defaults.update(overrides)
    return ServerRuntime(engine(), ServerConfig(**defaults))


async def drain_messages(client, count, timeout=5.0):
    messages = []
    for _ in range(count):
        messages.append(await client.next_message(timeout=timeout))
    return messages


N_DOCS = 8


async def _publish_all(runtime, n=N_DOCS):
    publisher = InProcessClient(runtime, capacity=4)
    for i in range(n):
        await publisher.publish(tokens=["x", f"u{i}"], created_at=float(i))
    await publisher.close()


def test_block_policy_applies_backpressure_without_loss():
    async def scenario():
        runtime = make_runtime()
        await runtime.start()
        stalled = InProcessClient(runtime, policy="block", capacity=2)
        await stalled.subscribe(["x"])
        control = InProcessClient(runtime, policy="block", capacity=64)
        await control.subscribe(["x"])

        control_received = []

        async def consume_control():
            while True:
                message = await control.session.next_message()
                if message is None or message["op"] == "closed":
                    return
                control_received.append(message)

        control_task = asyncio.create_task(consume_control())
        publish_task = asyncio.create_task(_publish_all(runtime))

        # The stalled consumer's queue fills after 2 notifications; the
        # matcher then blocks offering the 3rd — publishing stalls.
        await asyncio.sleep(0.2)
        assert not publish_task.done()
        assert stalled.session.depth == 2
        accepted_while_stalled = runtime.stats()["accepted"]
        assert accepted_while_stalled < N_DOCS  # backpressure reached ingestion

        # The consumer resumes: the matcher unblocks and every
        # notification is delivered — nothing dropped, nothing lost.
        stalled_received = []
        while len(stalled_received) < N_DOCS:
            message = await stalled.next_message(timeout=5.0)
            if message["op"] != "closed":
                stalled_received.append(message)
        await asyncio.wait_for(publish_task, 5.0)
        await runtime.stop()
        await control_task
        return runtime, stalled, stalled_received, control_received

    runtime, stalled, stalled_received, control_received = run(scenario())
    assert [m["document"]["doc_id"] for m in stalled_received] == list(
        range(N_DOCS)
    )
    assert [m["document"]["doc_id"] for m in control_received] == list(
        range(N_DOCS)
    )
    assert stalled.session.dropped == 0
    assert runtime.stats()["policy_drops"]["block"] == 0


def test_drop_oldest_policy_sheds_stalest_notifications():
    async def scenario():
        runtime = make_runtime()
        await runtime.start()
        stalled = InProcessClient(runtime, policy="drop_oldest", capacity=2)
        await stalled.subscribe(["x"])
        control = InProcessClient(runtime, policy="block", capacity=64)
        await control.subscribe(["x"])

        await _publish_all(runtime)  # never blocks: drops absorb the stall

        session = stalled.session
        assert session.depth == 2
        # Exactly one notification per publish was offered; all but the
        # newest `capacity` were dropped.
        assert session.enqueued == N_DOCS
        assert session.dropped == N_DOCS - 2
        kept = await drain_messages(stalled, 2)
        control_messages = await drain_messages(control, N_DOCS)
        stats = runtime.stats()
        await runtime.stop()
        return kept, control_messages, stats

    kept, control_messages, stats = run(scenario())
    # The newest two survive; the control subscriber saw everything.
    assert [m["document"]["doc_id"] for m in kept] == [N_DOCS - 2, N_DOCS - 1]
    assert [m["document"]["doc_id"] for m in control_messages] == list(
        range(N_DOCS)
    )
    assert stats["policy_drops"]["drop_oldest"] == N_DOCS - 2
    assert stats["policy_drops"]["block"] == 0


def test_coalesce_policy_keeps_latest_snapshot_per_query():
    async def scenario():
        runtime = make_runtime(outbound_capacity=4)
        await runtime.start()
        stalled = InProcessClient(runtime, policy="coalesce", capacity=4)
        reply = await stalled.subscribe(["x"])
        query_id = reply["query_id"]

        await _publish_all(runtime)

        session = stalled.session
        # One snapshot offer per publish; all collapsed onto one entry.
        assert session.depth == 1
        assert session.coalesced == N_DOCS - 1
        assert session.dropped == 0
        snapshot = await stalled.next_message(timeout=5.0)
        live_results = await stalled.results(query_id)
        stats = runtime.stats()
        await runtime.stop()
        return query_id, snapshot, live_results, stats

    query_id, snapshot, live_results, stats = run(scenario())
    assert snapshot["op"] == "snapshot"
    assert snapshot["query_id"] == query_id
    assert snapshot["coalesced"] == N_DOCS - 1
    # The delivered snapshot IS the live result set (latest state only).
    assert snapshot["results"] == live_results
    assert [doc["doc_id"] for doc in snapshot["results"]] == [
        N_DOCS - 1,
        N_DOCS - 2,
    ]
    assert stats["coalesced"] == N_DOCS - 1


def test_disconnect_policy_kicks_the_stalled_consumer():
    async def scenario():
        runtime = make_runtime()
        await runtime.start()
        stalled = InProcessClient(runtime, policy="disconnect", capacity=2)
        await stalled.subscribe(["x"])
        control = InProcessClient(runtime, policy="block", capacity=64)
        await control.subscribe(["x"])

        await _publish_all(runtime)  # 3rd offer closes the stalled session

        engine_queries = runtime.engine.query_count
        stats = runtime.stats()
        # The stalled consumer still drains what was queued, then sees
        # the structured close.
        pending = await drain_messages(stalled, 2)
        closed = await stalled.next_message(timeout=5.0)
        control_messages = await drain_messages(control, N_DOCS)
        await runtime.stop()
        return (
            runtime, stalled, stats, engine_queries,
            pending, closed, control_messages,
        )

    (
        runtime, stalled, stats, engine_queries,
        pending, closed, control_messages,
    ) = run(scenario())
    assert stalled.session.closed
    assert stalled.session.close_reason == "slow_consumer"
    assert stats["disconnects"] == 1
    # Its subscription was released; only the control query remains.
    assert engine_queries == 1
    assert [m["document"]["doc_id"] for m in pending] == [0, 1]
    assert closed == {"op": "closed", "reason": "slow_consumer"}
    # The matcher never stopped: the healthy subscriber got everything.
    assert [m["document"]["doc_id"] for m in control_messages] == list(
        range(N_DOCS)
    )


@pytest.mark.parametrize("policy", ["block", "drop_oldest", "coalesce"])
def test_policies_are_noop_for_keeping_consumers(policy):
    """A consumer that keeps up sees identical streams under any
    non-disconnect policy (coalesce delivers snapshots instead)."""

    async def scenario():
        runtime = make_runtime(outbound_capacity=64)
        await runtime.start()
        client = InProcessClient(runtime, policy=policy, capacity=64)
        await client.subscribe(["x"])
        publisher = InProcessClient(runtime)
        messages = []
        for i in range(4):  # consume after every publish: never lags
            await publisher.publish(tokens=["x", f"u{i}"], created_at=float(i))
            messages.append(await client.next_message(timeout=5.0))
        await runtime.stop()
        return messages

    messages = run(scenario())
    if policy == "coalesce":
        assert [m["op"] for m in messages] == ["snapshot"] * 4
        assert [m["coalesced"] for m in messages] == [0] * 4
    else:
        assert [m["document"]["doc_id"] for m in messages] == [0, 1, 2, 3]
