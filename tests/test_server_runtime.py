"""Serving-runtime tests: serialization equivalence, drain, batching.

The correctness bar (ISSUE 2): under any interleaving of concurrent
publishers, the notification stream delivered to each subscriber must be
a serialization consistent with some sequential publish order — asserted
here against a reference engine replaying the server's *accepted* order
(the doc-id order of the publish acks).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.config import ServerConfig
from repro.core.engine import DasEngine
from repro.core.query import DasQuery
from repro.distributed import ShardedDasEngine
from repro.errors import EmptyQueryError, ServerClosedError
from repro.pubsub import PublishSubscribeService
from repro.server import InProcessClient, ServerRuntime
from repro.stream.document import Document


def run(coroutine, timeout=30.0):
    """Run an async scenario with a hard deadline (deadlock guard)."""
    return asyncio.run(asyncio.wait_for(coroutine, timeout))


def small_engine(**overrides):
    defaults = dict(k=3, block_size=4, backend="python")
    defaults.update(overrides)
    return DasEngine.for_method("GIFilter", **defaults)


def triple(message):
    replaced = message["replaced"]
    return (
        message["query_id"],
        message["document"]["doc_id"],
        replaced["doc_id"] if replaced else None,
    )


KEYWORD_SETS = [
    ["coffee", "espresso"],
    ["coffee", "beans"],
    ["tea", "green"],
    ["espresso", "machine"],
]


def token_streams(n_publishers, docs_each):
    """Deterministic per-publisher token-list streams that hit the
    subscriptions above."""
    base = ["coffee", "espresso", "beans", "tea", "green", "machine"]
    streams = []
    for publisher in range(n_publishers):
        stream = []
        for index in range(docs_each):
            term = base[(publisher + index) % len(base)]
            other = base[(publisher * 3 + index * 2 + 1) % len(base)]
            stream.append([term, other, f"u{publisher}_{index}"])
        streams.append(stream)
    return streams


async def _concurrent_scenario(n_publishers, docs_each):
    """Subscribe, publish concurrently, drain; return what's needed for
    the reference replay."""
    runtime = ServerRuntime(
        small_engine(),
        ServerConfig(
            ingest_capacity=16,
            outbound_capacity=4096,
            max_batch_size=8,
            drain_timeout=10.0,
        ),
    )
    await runtime.start()
    subscriber = InProcessClient(runtime)  # block policy: lossless
    query_ids = []
    for keywords in KEYWORD_SETS:
        reply = await subscriber.subscribe(keywords)
        query_ids.append(reply["query_id"])

    received = []

    async def consume():
        while True:
            message = await subscriber.next_message()
            if message is None or message["op"] == "closed":
                return
            received.append(message)

    consumer = asyncio.create_task(consume())

    acks = []

    async def publisher(stream):
        client = InProcessClient(runtime)
        for tokens in stream:
            ack = await client.publish(tokens=tokens)
            acks.append((ack["doc_id"], ack["created_at"], tokens))
        await client.close()

    await asyncio.gather(
        *[publisher(stream) for stream in token_streams(n_publishers, docs_each)]
    )
    stats = await subscriber.stats()
    await runtime.stop()  # graceful drain: flush delivery, then close
    await consumer
    return query_ids, acks, received, stats, subscriber.session


def replay_reference(query_ids, acks):
    """Reference engine replaying the accepted order sequentially."""
    reference = small_engine()
    for query_id, keywords in zip(query_ids, KEYWORD_SETS):
        reference.subscribe(DasQuery(query_id, keywords))
    expected = []
    for doc_id, created_at, tokens in sorted(acks):
        for notification in reference.publish(
            Document.from_tokens(doc_id, tokens, created_at)
        ):
            expected.append(
                (
                    notification.query_id,
                    notification.document.doc_id,
                    notification.replaced.doc_id
                    if notification.replaced
                    else None,
                )
            )
    return expected


@pytest.mark.parametrize("n_publishers", [1, 4])
def test_serialization_equivalence_under_concurrent_publishers(n_publishers):
    query_ids, acks, received, stats, session = run(
        _concurrent_scenario(n_publishers, docs_each=12)
    )
    # Every publish was accepted exactly once, with unique increasing ids.
    doc_ids = sorted(doc_id for doc_id, _ts, _tokens in acks)
    assert doc_ids == list(range(len(doc_ids)))
    assert stats["accepted"] == n_publishers * 12
    # The delivered stream equals the reference replay of the accepted
    # order — same notifications, same global order, nothing lost
    # (graceful shutdown under the block policy).
    assert [triple(message) for message in received] == replay_reference(
        query_ids, acks
    )
    assert session.dropped == 0


def test_graceful_shutdown_flushes_ingestion_and_delivery():
    async def scenario():
        runtime = ServerRuntime(
            small_engine(k=2, alpha=1.0, decay_base=1.5),
            ServerConfig(
                ingest_capacity=64,
                outbound_capacity=512,
                max_batch_size=4,
                drain_timeout=10.0,
            ),
        )
        await runtime.start()
        subscriber = InProcessClient(runtime)
        reply = await subscriber.subscribe(["x"])
        query_id = reply["query_id"]
        # Queue publishes without awaiting acks, then immediately stop:
        # drain must still process every accepted item.
        publish_tasks = [
            asyncio.create_task(
                runtime.publish(tokens=["x", f"u{i}"], created_at=float(i))
            )
            for i in range(12)
        ]
        await asyncio.sleep(0)  # let every put land before the sentinel
        stop_task = asyncio.create_task(runtime.stop())
        messages = []
        while True:
            message = await subscriber.next_message(timeout=5.0)
            if message is None or message["op"] == "closed":
                break
            messages.append(message)
        await stop_task
        acks = await asyncio.gather(*publish_tasks)
        return runtime, query_id, messages, acks

    runtime, query_id, messages, acks = run(scenario())
    assert [ack["doc_id"] for ack in acks] == list(range(12))
    # Every accepted document triggered exactly one notification for the
    # standing query (verified workload shape), none lost on shutdown.
    assert [m["document"]["doc_id"] for m in messages] == list(range(12))
    assert all(m["query_id"] == query_id for m in messages)
    assert runtime.state == "stopped"


def test_rejects_work_after_stop():
    async def scenario():
        runtime = ServerRuntime(small_engine(), ServerConfig())
        await runtime.start()
        client = InProcessClient(runtime)
        await client.subscribe(["x"])
        await runtime.stop()
        with pytest.raises(ServerClosedError):
            await runtime.publish(tokens=["x"])
        with pytest.raises(ServerClosedError):
            runtime.open_session()
        # stats still answer after shutdown (admin surface).
        stats = runtime.stats()
        assert stats["state"] == "stopped"

    run(scenario())


def test_structured_errors_propagate_through_transport():
    async def scenario():
        runtime = ServerRuntime(small_engine(), ServerConfig())
        await runtime.start()
        client = InProcessClient(runtime)
        with pytest.raises(EmptyQueryError):
            await client.subscribe([])
        reply = await runtime.handle_request(
            client.session, {"op": "bogus", "id": 7}
        )
        assert reply["ok"] is False
        assert reply["error"]["type"] == "ProtocolError"
        assert reply["reply_to"] == 7
        await runtime.stop()

    run(scenario())


def test_adaptive_batching_engages_under_backlog():
    async def scenario():
        runtime = ServerRuntime(
            small_engine(),
            ServerConfig(
                ingest_capacity=256, outbound_capacity=1024, max_batch_size=16
            ),
        )
        await runtime.start()
        client = InProcessClient(runtime)
        await client.subscribe(["coffee"])
        # Flood without awaiting: the matcher sees a backlog and must
        # coalesce multiple documents per engine call.
        tasks = [
            asyncio.create_task(
                runtime.publish(tokens=["coffee", f"u{i}"], created_at=float(i))
            )
            for i in range(60)
        ]
        await asyncio.gather(*tasks)
        stats = runtime.stats()
        await runtime.stop()
        return stats

    stats = run(scenario())
    histogram = stats["batches"]
    assert histogram["documents"] == 60
    assert histogram["max_size"] > 1  # batching actually engaged
    assert histogram["batches"] < 60


def test_wraps_sharded_engine_and_service():
    async def scenario(engine):
        runtime = ServerRuntime(engine, ServerConfig(drain_timeout=5.0))
        await runtime.start()
        subscriber = InProcessClient(runtime)
        reply = await subscriber.subscribe(["coffee"])
        ack = await subscriber.publish(
            tokens=["coffee", "fresh"], created_at=1.0
        )
        message = await subscriber.next_message(timeout=5.0)
        results = await subscriber.results(reply["query_id"])
        await runtime.stop()
        assert ack["doc_id"] == 0
        assert message["op"] == "notify"
        assert message["document"]["doc_id"] == 0
        assert [doc["doc_id"] for doc in results] == [0]

    config = DasEngine.for_method("GIFilter", k=3, block_size=4).config
    run(scenario(ShardedDasEngine(2, config)))
    run(scenario(PublishSubscribeService(DasEngine(config))))


def test_matcher_survives_a_poisoned_batch():
    """ISSUE 3 regression (S1): an engine exception mid-batch must fail
    that batch's acks and nothing else — the matcher keeps serving, and
    a later graceful stop drains normally."""
    from repro.errors import InjectedFaultError
    from repro.simulation import FaultPlan

    async def scenario():
        runtime = ServerRuntime(
            small_engine(),
            ServerConfig(
                max_batch_size=1,
                drain_timeout=10.0,
                fault_injector=FaultPlan.parse(
                    "engine.publish_batch@2:raise"
                ).injector(),
            ),
        )
        await runtime.start()
        subscriber = InProcessClient(runtime)
        await subscriber.subscribe(["coffee"])
        first = await runtime.publish(tokens=["coffee", "a"])
        with pytest.raises(InjectedFaultError):
            await runtime.publish(tokens=["coffee", "b"])
        third = await runtime.publish(tokens=["coffee", "c"])
        delivered = []
        for _ in range(2):
            message = await subscriber.next_message(timeout=5.0)
            delivered.append(message["document"]["doc_id"])
        stats = runtime.stats()
        await runtime.stop()
        return first, third, delivered, stats, runtime

    first, third, delivered, stats, runtime = run(scenario())
    assert first["doc_id"] == 0
    assert third["doc_id"] == 2  # the id was spent; the matcher moved on
    assert delivered == [0, 2]
    assert stats["matcher_errors"] == 1
    assert runtime.state == "stopped"


def test_stop_reports_documents_lost_to_a_faulted_drain():
    """ISSUE 3 regression (S1): when the engine raises while stop() is
    draining, stop must still complete, fail the affected acks instead
    of hanging them, and report the loss in its stats."""
    from repro.simulation import FaultPlan

    async def scenario():
        runtime = ServerRuntime(
            small_engine(),
            ServerConfig(
                ingest_capacity=64,
                max_batch_size=1,
                drain_timeout=10.0,
                fault_injector=FaultPlan.parse(
                    "engine.publish_batch@3:raise"
                ).injector(),
            ),
        )
        await runtime.start()
        subscriber = InProcessClient(runtime)
        await subscriber.subscribe(["x"])
        publish_tasks = [
            asyncio.create_task(runtime.publish(tokens=["x", f"u{i}"]))
            for i in range(6)
        ]
        await asyncio.sleep(0)  # let every put land before the sentinel
        await runtime.stop()  # graceful drain hits the injected fault
        acks = await asyncio.gather(*publish_tasks, return_exceptions=True)
        return acks, runtime.stats()

    acks, stats = run(scenario())
    failed = [a for a in acks if isinstance(a, BaseException)]
    succeeded = [a for a in acks if not isinstance(a, BaseException)]
    assert len(failed) == 1  # exactly the poisoned batch, nothing else
    assert len(succeeded) == 5
    assert stats["matcher_errors"] == 1
    assert stats["state"] == "stopped"


def test_doc_ids_continue_after_preloaded_history():
    async def scenario():
        engine = small_engine()
        engine.publish(Document.from_tokens(0, ["coffee"], 0.0))
        engine.publish(Document.from_tokens(1, ["tea"], 1.0))
        runtime = ServerRuntime(engine, ServerConfig())
        await runtime.start()
        client = InProcessClient(runtime)
        ack = await client.publish(tokens=["coffee"], created_at=2.0)
        await runtime.stop()
        return ack

    assert run(scenario())["doc_id"] == 2
