"""Hypothesis chaos tests: invariants hold for *arbitrary* seeds/plans.

The curated scenarios in the default suite pin down known failure
modes; these tests let Hypothesis search the seed and fault-plan space
for new ones.  Example counts are modest (each example is a full
simulated server run) but any failure shrinks to a minimal seed that
reproduces byte-for-byte via ``repro simulate --seed N``.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simulation import (
    FaultPlan,
    SimulationHarness,
    generate_random_plan,
)

CHAOS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@CHAOS
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_any_seed_runs_clean(seed):
    report = SimulationHarness(seed, ops=25).run()
    assert report["ok"], report["violations"]
    assert report["errors"] == []


@CHAOS
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_any_seed_survives_a_random_fault_plan(seed):
    plan = generate_random_plan(random.Random(seed))
    report = SimulationHarness(seed, ops=25, fault_plan=plan).run()
    assert report["ok"], (str(plan), report["violations"])


@CHAOS
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    point=st.sampled_from(
        ["ingest.put", "engine.publish_batch", "engine.doc", "engine.results"]
    ),
    at=st.integers(min_value=1, max_value=10),
    count=st.integers(min_value=1, max_value=3),
)
def test_any_raising_fault_never_corrupts_state(seed, point, at, count):
    plan = f"{point}@{at}:raise*{count}"
    report = SimulationHarness(seed, ops=25, fault_plan=plan).run()
    assert report["ok"], (plan, report["violations"])


@given(
    specs=st.lists(
        st.tuples(
            st.sampled_from(["engine.doc", "ingest.put", "tcp.write"]),
            st.integers(min_value=1, max_value=99),
            st.sampled_from(["raise", "torn", "stall", "delay"]),
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=1, max_value=9),
        ),
        min_size=1,
        max_size=5,
    )
)
def test_fault_plan_dsl_round_trips(specs):
    text = "; ".join(
        f"{point}@{at}:{action}"
        + (f"({arg})" if arg else "")
        + (f"*{count}" if count > 1 else "")
        for point, at, action, arg, count in specs
    )
    plan = FaultPlan.parse(text)
    assert FaultPlan.parse(str(plan)).specs == plan.specs
