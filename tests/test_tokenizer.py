"""Tests for the tokenizer and stop-word handling."""

from __future__ import annotations

from repro.text.tokenizer import DEFAULT_TOKENIZER, Tokenizer, tokenize


def test_lowercases_and_splits():
    assert tokenize("Coffee Espresso") == ["coffee", "espresso"]


def test_strips_punctuation():
    assert tokenize("coffee, espresso!") == ["coffee", "espresso"]


def test_keeps_hashtags_and_mentions():
    tokens = tokenize("#coffee with @barista downtown")
    assert "#coffee" in tokens
    assert "@barista" in tokens
    assert "downtown" in tokens


def test_removes_stopwords():
    assert tokenize("the coffee is on a table") == ["coffee", "table"]


def test_removes_urls():
    assert tokenize("great read https://example.com/a?b=1 wow") == [
        "great",
        "read",
        "wow",
    ]


def test_removes_short_and_numeric_tokens():
    assert tokenize("a x 42 2020 ok") == ["ok"]


def test_min_length_configurable():
    tok = Tokenizer(stopwords=(), min_length=1)
    assert tok.tokenize("x y") == ["x", "y"]


def test_custom_stopwords():
    tok = Tokenizer(stopwords=["coffee"])
    assert tok.tokenize("coffee espresso") == ["espresso"]
    assert "coffee" in tok.stopwords


def test_keep_urls_mode():
    tok = Tokenizer(strip_urls=False)
    tokens = tok.tokenize("see www.example.com now")
    assert "example" in " ".join(tokens)


def test_callable_interface():
    assert DEFAULT_TOKENIZER("espresso time") == ["espresso", "time"]


def test_empty_input():
    assert tokenize("") == []
    assert tokenize("   \n\t ") == []


def test_rt_is_stopword():
    assert tokenize("RT great news") == ["great", "news"]
