"""Property tests for histogram merge algebra (ISSUE 5 satellite 1).

The parallel engine merges per-worker histograms parent-side in whatever
order worker replies land, and the sharded engine merges shard snapshots
in shard order; both are only correct if histogram merge is associative
and commutative and preserves total count and sum under *any* partition
of the observations across shards.  Hypothesis searches for observation
sets and shard splits that break those laws.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import LatencyHistogram, merge_snapshots, merge_wire

#: Durations spanning every default bucket plus the overflow bucket.
durations = st.floats(
    min_value=0.0,
    max_value=10.0,
    allow_nan=False,
    allow_infinity=False,
)


def histogram_of(values):
    histogram = LatencyHistogram()
    for value in values:
        histogram.observe(value)
    return histogram


@st.composite
def observation_sets(draw, max_sets=4):
    """A list of per-shard observation lists (some possibly empty)."""
    n_sets = draw(st.integers(min_value=2, max_value=max_sets))
    return [
        draw(st.lists(durations, max_size=30)) for _ in range(n_sets)
    ]


@settings(max_examples=60, deadline=None)
@given(observation_sets(max_sets=2))
def test_merge_is_commutative(sets):
    a, b = histogram_of(sets[0]), histogram_of(sets[1])
    ab, ba = a + b, b + a
    assert ab.counts == ba.counts
    assert ab.sum == ba.sum  # float addition of two terms commutes exactly


@settings(max_examples=60, deadline=None)
@given(observation_sets(max_sets=3))
def test_merge_is_associative(sets):
    while len(sets) < 3:
        sets.append([])
    a, b, c = (histogram_of(values) for values in sets[:3])
    left = (a + b) + c
    right = a + (b + c)
    # Counts are integers: exact associativity.
    assert left.counts == right.counts
    # Sums are float: associative up to rounding.
    assert abs(left.sum - right.sum) <= 1e-9 * max(1.0, abs(left.sum))


@settings(max_examples=60, deadline=None)
@given(st.lists(durations, max_size=60), st.data())
def test_count_and_sum_preserved_across_arbitrary_splits(values, data):
    """Any partition of the observations across shards merges back to
    the single-histogram totals: no observation is lost or duplicated."""
    n_shards = data.draw(st.integers(min_value=1, max_value=5))
    assignment = [
        data.draw(st.integers(min_value=0, max_value=n_shards - 1))
        for _ in values
    ]
    shards = [LatencyHistogram() for _ in range(n_shards)]
    for value, shard in zip(values, assignment):
        shards[shard].observe(value)

    merged = LatencyHistogram()
    for shard in shards:
        merged.merge(shard)

    reference = histogram_of(values)
    assert merged.counts == reference.counts
    assert merged.count == len(values)
    assert abs(merged.sum - reference.sum) <= 1e-9 * max(
        1.0, abs(reference.sum)
    )


@settings(max_examples=60, deadline=None)
@given(st.lists(durations, max_size=40))
def test_wire_round_trip_is_lossless(values):
    histogram = histogram_of(values)
    back = LatencyHistogram.from_wire(histogram.to_wire())
    assert back == histogram


@settings(max_examples=40, deadline=None)
@given(observation_sets(max_sets=3))
def test_merge_wire_matches_object_merge(sets):
    histograms = [histogram_of(values) for values in sets]
    wire = histograms[0].to_wire()
    for histogram in histograms[1:]:
        wire = merge_wire(wire, histogram.to_wire())
    reference = LatencyHistogram()
    for histogram in histograms:
        reference.merge(histogram)
    assert LatencyHistogram.from_wire(wire).counts == reference.counts


@settings(max_examples=40, deadline=None)
@given(observation_sets(max_sets=4), st.randoms(use_true_random=False))
def test_snapshot_merge_is_order_insensitive(sets, rng):
    """merge_snapshots gives one aggregate regardless of worker order."""
    snapshots = []
    for index, values in enumerate(sets):
        histogram = histogram_of(values)
        snapshots.append(
            {
                "stages": {"individual_filter": histogram.to_wire()},
                "spans": {
                    "started": len(values),
                    "finished": len(values),
                    "aborted": 0,
                    "sampled": 0,
                },
            }
        )
    merged = merge_snapshots(snapshots)
    shuffled = list(snapshots)
    rng.shuffle(shuffled)
    remerged = merge_snapshots(shuffled)
    assert merged["spans"] == remerged["spans"]
    assert (
        merged["stages"]["individual_filter"]["counts"]
        == remerged["stages"]["individual_filter"]["counts"]
    )
    assert merged["spans"]["finished"] == sum(
        len(values) for values in sets
    )
