"""Tests for the document store: ordering, lookup, pinning, eviction."""

from __future__ import annotations

import pytest

from repro.errors import DocumentOrderError, DuplicateDocumentError
from repro.stream.document import Document
from repro.stream.document_store import DocumentStore
from tests.conftest import make_documents


def test_add_and_get():
    store = DocumentStore()
    docs = make_documents([["a"], ["b"]])
    for doc in docs:
        store.add(doc)
    assert store.get(0) is docs[0]
    assert store.get(1) is docs[1]
    assert store.get(99) is None
    assert len(store) == 2
    assert 0 in store and 99 not in store


def test_rejects_duplicate_ids():
    store = DocumentStore()
    store.add(Document.from_tokens(5, ["a"], 0.0))
    with pytest.raises(DuplicateDocumentError):
        store.add(Document.from_tokens(5, ["b"], 1.0))


def test_rejects_out_of_order_ids():
    store = DocumentStore()
    store.add(Document.from_tokens(5, ["a"], 0.0))
    with pytest.raises(DocumentOrderError):
        store.add(Document.from_tokens(4, ["b"], 1.0))


def test_rejects_time_regression():
    store = DocumentStore()
    store.add(Document.from_tokens(0, ["a"], 10.0))
    with pytest.raises(DocumentOrderError):
        store.add(Document.from_tokens(1, ["b"], 5.0))


def test_duplicate_id_error_is_order_error_subtype_or_distinct():
    # Re-adding an id that exists raises DuplicateDocumentError when the
    # store still holds it.
    store = DocumentStore()
    store.add(Document.from_tokens(0, ["a"], 0.0))
    with pytest.raises((DuplicateDocumentError, DocumentOrderError)):
        store.add(Document.from_tokens(0, ["a"], 0.0))


def test_iteration_orders():
    store = DocumentStore()
    docs = make_documents([["a"], ["b"], ["c"]])
    for doc in docs:
        store.add(doc)
    assert [d.doc_id for d in store] == [0, 1, 2]
    assert [d.doc_id for d in store.newest_first()] == [2, 1, 0]


def test_recent_matching_filters_and_orders():
    store = DocumentStore()
    for doc in make_documents([["x"], ["y"], ["x", "z"], ["y"], ["x"]]):
        store.add(doc)
    matches = store.recent_matching(["x"], limit=2)
    assert [d.doc_id for d in matches] == [4, 2]
    matches = store.recent_matching(["x", "y"], limit=10)
    assert [d.doc_id for d in matches] == [4, 3, 2, 1, 0]
    assert store.recent_matching(["missing"], limit=5) == []
    assert store.recent_matching(["x"], limit=0) == []


def test_eviction_drops_oldest_unpinned():
    store = DocumentStore(capacity=3)
    for doc in make_documents([["a"], ["b"], ["c"], ["d"]]):
        store.add(doc)
    assert len(store) == 3
    assert store.get(0) is None
    assert store.get(3) is not None


def test_pinned_documents_survive_eviction():
    store = DocumentStore(capacity=2)
    docs = make_documents([["a"], ["b"], ["c"], ["d"]])
    store.add(docs[0])
    store.pin(0)
    for doc in docs[1:]:
        store.add(doc)
    assert store.get(0) is not None  # pinned
    assert store.get(1) is None  # evicted instead
    assert len(store) <= 3


def test_unpin_releases_refcount():
    store = DocumentStore(capacity=1)
    docs = make_documents([["a"], ["b"], ["c"]])
    store.add(docs[0])
    store.pin(0)
    store.pin(0)
    assert store.pin_count(0) == 2
    store.unpin(0)
    assert store.pin_count(0) == 1
    store.unpin(0)
    assert store.pin_count(0) == 0
    store.add(docs[1])
    store.add(docs[2])
    assert store.get(0) is None


def test_eviction_updates_term_index():
    store = DocumentStore(capacity=1)
    for doc in make_documents([["x"], ["x"], ["y"]]):
        store.add(doc)
    matches = store.recent_matching(["x"], limit=10)
    assert matches == []  # both x-docs evicted
    assert [d.doc_id for d in store.recent_matching(["y"], limit=10)] == [2]


def test_unpin_unknown_is_noop():
    store = DocumentStore()
    store.unpin(42)  # must not raise
    assert store.pin_count(42) == 0
