"""Coverage for the remaining sweep functions at micro scale."""

from __future__ import annotations

import pytest

from repro.experiments import sweeps
from repro.experiments.workload import DAS_METHODS, WorkloadSpec

MICRO = WorkloadSpec(
    n_queries=60, n_history=150, n_settle=20, n_measure=30, k=5
)


def test_query_keywords_sweep():
    fig_a, fig_b = sweeps.query_keywords(MICRO, values=(1, 3))
    for fig in (fig_a, fig_b):
        assert set(fig.series) == set(DAS_METHODS)
        assert fig.param_values == [1, 3]
    assert fig_a.companions  # work tables attached


def test_query_scale_sweep():
    fig_a, fig_b, fig_c = sweeps.query_scale(MICRO, values=(30, 60))
    assert fig_c.unit.startswith("MB")
    for method in DAS_METHODS:
        assert fig_c.series[method][60] >= fig_c.series[method][30]


def test_alpha_effect_sweep():
    fig = sweeps.alpha_effect(MICRO, values=(0.2, 0.8))
    assert fig.param_values == [0.2, 0.8]
    assert set(fig.series) == set(DAS_METHODS)


def test_decay_scale_sweep():
    fig = sweeps.decay_scale(MICRO, values=(0.2, 0.8))
    assert set(fig.series) == set(DAS_METHODS)


def test_phi_max_sweep():
    fig = sweeps.phi_max(MICRO, values=(100, -1))
    assert set(fig.series) == {"IFilter", "GIFilter"}
    # Budget only matters via AW residency; sims/doc companion must show
    # unlimited <= tiny budget for IFilter.
    sims = fig.companions[0].series["IFilter"]
    assert sims[-1] <= sims[100] + 1e-9


def test_delta_s_sweep():
    fig = sweeps.delta_s(MICRO, values=(0.2, 0.8))
    assert list(fig.series) == ["GIFilter"]


def test_doc_terms_sweep():
    fig = sweeps.doc_terms(MICRO, values=(5, 12))
    assert set(fig.series) == set(DAS_METHODS)


def test_sqd_scale_sweep():
    fig = sweeps.sqd_scale(MICRO, values=(20, 40))
    assert set(fig.series) == set(DAS_METHODS)


def test_arrival_rate_sweep():
    fig_a, fig_b = sweeps.arrival_rate(MICRO, values=(10, 20))
    for method in DAS_METHODS:
        assert fig_a.series[method][20] == pytest.approx(
            2 * fig_a.series[method][10]
        )


def test_other_systems_sweep():
    fig_a, fig_b = sweeps.other_systems(MICRO.evolve(n_queries=30))
    for label in DAS_METHODS + ("DisC", "MSInc"):
        assert label in fig_a.series
        assert label in fig_b.series


def test_bound_mode_ablation():
    fig = sweeps.bound_mode_ablation(MICRO)
    assert set(fig.series) == {"paper", "strict"}
    assert fig.series["paper"]["skip%"] >= fig.series["strict"]["skip%"] - 1e-9


def test_agg_weights_ablation():
    fig = sweeps.agg_weights_ablation(MICRO)
    assert (
        fig.series["IFilter (AW)"]["sims/doc"]
        <= fig.series["BIRT (no AW)"]["sims/doc"]
    )


def test_init_strategy_ablation():
    fig = sweeps.init_strategy_ablation(MICRO)
    assert set(fig.series) == {"recent", "relevant", "greedy"}
    for row in fig.series.values():
        assert set(row) == {"insert ms/q", "matches/doc", "ms/doc"}
