"""Hypothesis property tests for GreedyMcsGen and the Eq. 19 bound
(ISSUE 3, S4).

Definition 5 (checked on arbitrary random universes):

1. *covering* — every emitted set covers every query of the block;
2. *minimal* — removing any single member breaks property (1);
3. the emitted sets are pairwise disjoint and drawn from the universe.

Eq. 19/20 soundness (checked on blocks built from real result sets):
``minSim`` never exceeds any actual universe similarity, STRICT-mode
``Sim̃_min`` never exceeds the exact minimum similarity mass, and PAPER
mode is always at least as aggressive as STRICT.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GroupBoundMode
from repro.core.blocks import PostingsBlock
from repro.core.mcs import (
    BlockUniverse,
    CoverSet,
    build_universe,
    greedy_mcs_gen,
    min_similarity_floor,
    verify_cover,
)
from repro.core.result_set import QueryResultSet
from repro.core.filtering import block_similarity_lower_bound
from repro.scoring.relevance import LanguageModelScorer
from repro.stream.document import Document
from repro.text.collection_stats import CollectionStatistics
from repro.text.vectors import TermVector, cosine_similarity

K = 3
ALPHABET = ["w", "a", "b", "c"]


@st.composite
def random_universe(draw):
    """An arbitrary coverage structure: docs -> subsets of queries."""
    n_queries = draw(st.integers(min_value=1, max_value=6))
    query_ids = list(range(n_queries))
    n_docs = draw(st.integers(min_value=1, max_value=10))
    universe = BlockUniverse("w")
    for doc_id in range(n_docs):
        holders = draw(
            st.sets(st.sampled_from(query_ids), min_size=1, max_size=n_queries)
        )
        tf = draw(st.integers(min_value=1, max_value=3))
        universe.documents[doc_id] = Document(
            doc_id, TermVector({"w": tf}), float(doc_id)
        )
        universe.coverage[doc_id] = holders
    universe.min_term_frequency = 1
    universe.max_norm = max(
        doc.vector.norm for doc in universe.documents.values()
    )
    return universe, query_ids


@settings(max_examples=150, deadline=None)
@given(random_universe())
def test_emitted_covers_satisfy_definition_5(case):
    universe, query_ids = case
    covers = greedy_mcs_gen(query_ids, universe)
    all_queries = set(query_ids)
    seen_ids = set()
    for cover in covers:
        # (1) every block query holds at least one member.
        assert verify_cover(cover, universe.coverage, all_queries)
        # (2) minimal: dropping any member breaks the cover.
        if len(cover) > 1:
            for member in cover:
                reduced = [d for d in cover if d.doc_id != member.doc_id]
                assert not verify_cover(
                    CoverSet(reduced), universe.coverage, all_queries
                )
        # disjoint, and drawn from the universe.
        assert not (cover.doc_ids & seen_ids)
        assert cover.doc_ids <= set(universe.documents)
        seen_ids |= cover.doc_ids


@settings(max_examples=150, deadline=None)
@given(random_universe())
def test_greedy_emits_nothing_when_some_query_is_uncoverable(case):
    universe, query_ids = case
    # Add a query no universe document covers: no complete cover can
    # exist, so the greedy pass must emit zero covers (an incomplete
    # "MCS" would make Eq. 19 unsafe).
    uncoverable = max(query_ids) + 1
    covers = greedy_mcs_gen(query_ids + [uncoverable], universe)
    assert covers == []


@settings(max_examples=100, deadline=None)
@given(
    tf_new=st.integers(min_value=1, max_value=5),
    extra_new=st.lists(st.sampled_from(ALPHABET[1:]), max_size=4),
    docs=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=5),
            st.lists(st.sampled_from(ALPHABET[1:]), max_size=4),
        ),
        min_size=1,
        max_size=6,
    ),
)
def test_min_similarity_floor_lower_bounds_every_universe_similarity(
    tf_new, extra_new, docs
):
    """Eq. 20: ``minSim`` <= ``Sim(d_n, d)`` for every universe doc."""
    new_vector = TermVector(
        {"w": tf_new, **{t: extra_new.count(t) for t in set(extra_new)}}
    )
    vectors = [
        TermVector({"w": tf, **{t: extra.count(t) for t in set(extra)}})
        for tf, extra in docs
    ]
    min_tf = min(tf for tf, _extra in docs)
    max_norm = max(vector.norm for vector in vectors)
    floor = min_similarity_floor(min_tf, max_norm, "w", new_vector)
    for vector in vectors:
        assert floor <= cosine_similarity(new_vector, vector) + 1e-12


def fill_result_set(terms, pool, scorer):
    rs = QueryResultSet(K, track_aggregated_weights=False)
    for document in pool:
        if rs.is_full:
            break
        rs.admit(
            document,
            scorer.trel(terms, document.vector),
            rs.similarities_to(document.vector),
        )
    return rs


doc_tokens = st.lists(st.sampled_from(ALPHABET), min_size=1, max_size=5)


@st.composite
def block_case(draw):
    n_queries = draw(st.integers(min_value=1, max_value=4))
    pool_tokens = draw(st.lists(doc_tokens, min_size=K + 2, max_size=K + 6))
    pool = [
        Document.from_tokens(i, tokens + ["w"], float(i))
        for i, tokens in enumerate(pool_tokens)
    ]
    queries = []
    for qid in range(n_queries):
        extra = draw(
            st.lists(st.sampled_from(ALPHABET[1:]), min_size=0, max_size=2)
        )
        queries.append((qid, tuple(sorted(set(["w"] + extra)))))
    new_tokens = draw(doc_tokens)
    new_doc = Document.from_tokens(200, new_tokens + ["w"], float(len(pool)))
    return pool, queries, new_doc


@settings(max_examples=100, deadline=None)
@given(block_case())
def test_build_universe_excludes_the_oldest_entries(case):
    pool, queries, _new_doc = case
    stats = CollectionStatistics()
    for document in pool:
        stats.add(document.vector)
    scorer = LanguageModelScorer(stats, 0.5)
    result_sets = {
        qid: fill_result_set(terms, pool, scorer) for qid, terms in queries
    }
    universe = build_universe("w", [q for q, _t in queries], result_sets)
    eligible = set()
    for qid, _terms in queries:
        for entry in result_sets[qid].entries[1:]:
            eligible.add(entry.document.doc_id)
    assert set(universe.documents) == eligible
    for doc_id, holders in universe.coverage.items():
        for qid in holders:
            assert doc_id in {
                e.document.doc_id for e in result_sets[qid].entries[1:]
            }


@settings(max_examples=100, deadline=None)
@given(block_case())
def test_eq19_strict_is_sound_and_paper_is_at_least_as_aggressive(case):
    pool, queries, new_doc = case
    stats = CollectionStatistics()
    for document in pool + [new_doc]:
        stats.add(document.vector)
    scorer = LanguageModelScorer(stats, 0.5)
    result_sets = {}
    block = PostingsBlock()
    for qid, terms in queries:
        result_sets[qid] = fill_result_set(terms, pool, scorer)
        block.append(qid)
    block.refresh_metadata(result_sets, 0.5)
    block.rebuild_mcs("w", result_sets)
    if block.has_unfilled:
        return
    strict = block_similarity_lower_bound(
        block, new_doc.vector, "w", K, GroupBoundMode.STRICT
    )
    paper = block_similarity_lower_bound(
        block, new_doc.vector, "w", K, GroupBoundMode.PAPER
    )
    exact_min = min(
        sum(
            cosine_similarity(new_doc.vector, entry.document.vector)
            for entry in result_sets[qid].entries[1:]
        )
        for qid in block.query_ids
    )
    # Soundness: a STRICT group skip can never drop a true delivery.
    assert strict <= exact_min + 1e-9
    # PAPER (Eq. 19 verbatim) grants >= the STRICT similarity mass: one
    # more residual slot, floored at minSim >= 0.
    assert paper >= strict - 1e-12
