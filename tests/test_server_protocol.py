"""Unit tests: protocol encoding/validation, adaptive batching, sessions."""

from __future__ import annotations

import asyncio

import pytest

from repro.config import ConfigurationError, ServerConfig
from repro.errors import ProtocolError, UnknownQueryError
from repro.metrics.instrumentation import BatchHistogram
from repro.server.batching import AdaptiveBatcher
from repro.server.protocol import (
    decode_line,
    document_from_payload,
    document_payload,
    encode_line,
    error_reply,
    notification_payload,
    parse_request,
    raise_for_reply,
)
from repro.core.events import Notification
from repro.server.sessions import SubscriberSession
from repro.stream.document import Document


def run(coroutine, timeout=10.0):
    return asyncio.run(asyncio.wait_for(coroutine, timeout))


# -- protocol -------------------------------------------------------------


def test_document_payload_round_trip():
    document = Document.from_tokens(7, ["coffee", "coffee", "beans"], 3.5, "x")
    rebuilt = document_from_payload(document_payload(document))
    assert rebuilt.doc_id == 7
    assert rebuilt.created_at == 3.5
    assert rebuilt.text == "x"
    assert rebuilt.vector == document.vector


def test_ndjson_framing_round_trip():
    payload = notification_payload(
        Notification(3, Document.from_tokens(1, ["a"], 1.0), None)
    )
    assert decode_line(encode_line(payload)) == payload
    assert encode_line(payload).endswith(b"\n")


def test_decode_line_rejects_garbage():
    with pytest.raises(ProtocolError):
        decode_line(b"not json\n")
    with pytest.raises(ProtocolError):
        decode_line(b"[1, 2, 3]\n")


@pytest.mark.parametrize(
    "request_payload",
    [
        "not a dict",
        {"op": "nope"},
        {"op": "subscribe"},
        {"op": "subscribe", "keywords": "coffee"},
        {"op": "unsubscribe"},
        {"op": "results", "query_id": "seven"},
        {"op": "publish"},
        {"op": "publish", "tokens": "coffee"},
        {"op": "publish", "tokens": ["a"], "created_at": "now"},
    ],
)
def test_parse_request_rejects_malformed(request_payload):
    with pytest.raises(ProtocolError):
        parse_request(request_payload)


def test_error_reply_carries_repro_type_and_reraises():
    reply = error_reply(UnknownQueryError("query 9"), reply_to=4)
    assert reply == {
        "ok": False,
        "reply_to": 4,
        "error": {"type": "UnknownQueryError", "message": "query 9"},
    }
    with pytest.raises(UnknownQueryError):
        raise_for_reply(reply)
    assert raise_for_reply({"ok": True, "x": 1}) == {"ok": True, "x": 1}


# -- server config --------------------------------------------------------


def test_server_config_validation():
    with pytest.raises(ConfigurationError):
        ServerConfig(ingest_capacity=0)
    with pytest.raises(ConfigurationError):
        ServerConfig(outbound_capacity=0)
    with pytest.raises(ConfigurationError):
        ServerConfig(max_batch_size=0)
    with pytest.raises(ConfigurationError):
        ServerConfig(slow_consumer_policy="yolo")
    with pytest.raises(ConfigurationError):
        ServerConfig(drain_timeout=0.0)
    with pytest.raises(ConfigurationError):
        ServerConfig(port=70000)
    assert ServerConfig().evolve(port=0).port == 0


# -- adaptive batching ----------------------------------------------------


def test_batch_histogram_buckets():
    histogram = BatchHistogram()
    for size in (1, 2, 3, 4, 7, 8, 9, 64):
        histogram.record(size)
    report = histogram.as_dict()
    assert report["batches"] == 8
    assert report["documents"] == 98
    assert report["max_size"] == 64
    assert report["buckets"] == {
        "1": 1, "2": 1, "3-4": 2, "5-8": 2, "9-16": 1, "33-64": 1,
    }
    with pytest.raises(ValueError):
        histogram.record(0)


def test_adaptive_batcher_grows_under_backlog_and_decays_when_idle():
    batcher = AdaptiveBatcher(max_batch_size=8)
    assert batcher.target == 1
    batcher.record(1, backlog=5)
    assert batcher.target == 2
    batcher.record(2, backlog=5)
    batcher.record(4, backlog=5)
    assert batcher.target == 8
    batcher.record(8, backlog=3)
    assert batcher.target == 8  # capped
    batcher.record(8, backlog=0)
    assert batcher.target == 4  # decays once the queue empties
    for _ in range(5):
        batcher.record(1, backlog=0)
    assert batcher.target == 1


# -- session primitives ---------------------------------------------------


def test_session_rejects_bad_arguments():
    with pytest.raises(ValueError):
        SubscriberSession(0, capacity=0, policy="block")
    with pytest.raises(ValueError):
        SubscriberSession(0, capacity=4, policy="yolo")


def test_session_delivers_queued_then_closed_then_none():
    async def scenario():
        session = SubscriberSession(0, capacity=4, policy="drop_oldest")
        assert await session.offer({"op": "notify", "n": 1}, query_id=0)
        assert await session.offer({"op": "notify", "n": 2}, query_id=0)
        await session.close("shutdown")
        assert not await session.offer({"op": "notify", "n": 3}, query_id=0)
        first = await session.next_message()
        second = await session.next_message()
        closed = await session.next_message()
        after = await session.next_message()
        return first, second, closed, after

    first, second, closed, after = run(scenario())
    assert (first["n"], second["n"]) == (1, 2)
    assert closed == {"op": "closed", "reason": "shutdown"}
    assert after is None
