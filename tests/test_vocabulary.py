"""Tests for the term <-> id vocabulary."""

from __future__ import annotations

import pytest

from repro.text.vocabulary import Vocabulary


def test_add_assigns_dense_ids():
    vocab = Vocabulary()
    assert vocab.add("a") == 0
    assert vocab.add("b") == 1
    assert vocab.add("a") == 0
    assert len(vocab) == 2


def test_lookup_both_directions():
    vocab = Vocabulary(["x", "y"])
    assert vocab.id_of("x") == 0
    assert vocab.term_of(1) == "y"
    assert vocab.id_of("missing") is None
    with pytest.raises(IndexError):
        vocab.term_of(5)


def test_contains_and_iter():
    vocab = Vocabulary(["a", "b"])
    assert "a" in vocab
    assert "c" not in vocab
    assert list(vocab) == ["a", "b"]


def test_encode_decode_roundtrip():
    vocab = Vocabulary()
    ids = vocab.encode(["c", "a", "c", "b"])
    assert ids == [0, 1, 0, 2]
    assert vocab.decode(ids) == ["c", "a", "c", "b"]
