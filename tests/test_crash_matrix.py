"""Crash matrix: kill points × engine shapes, vs an uninterrupted oracle.

Each cell crashes a durable runtime at one pipeline stage and proves
that, after recovery + ``resume``, the subscriber's end-to-end
notification stream is **byte-identical** to an uninterrupted run of
the same schedule (JSON with sorted keys), with no duplicate delivery.

Kill points (where the crash lands relative to one accepted op):

``pre_append``
    Before the op reaches the log: it was never accepted, the driver
    retries it after recovery (classic client retry).
``post_append_pre_match``
    The ``eventlog.match`` injection raises after the append, before
    the engine sees the op: logged-but-unmatched, the at-least-once
    in-doubt window.  No driver retry — replay must surface it.
``post_match_pre_deliver``
    The op matched and its notifications were enqueued, but the client
    never read them before the crash: the retained outbox plus
    ``resume`` must replay exactly the unacked suffix.
``mid_checkpoint``
    The crash tears a checkpoint write (``checkpoint.write`` torn
    fault) after an earlier clean checkpoint: recovery must fall back
    to the older checkpoint and a longer replay.

Shapes: a single DAS engine, an in-process sharded engine, and the
process-parallel deployment (worker subprocesses).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.config import ServerConfig
from repro.core.engine import DasEngine
from repro.distributed import ShardedDasEngine
from repro.errors import ReproError
from repro.server import InProcessClient, ServerRuntime
from repro.simulation.faults import FaultPlan

SHAPES = ("single", "sharded", "parallel")
KILL_POINTS = (
    "pre_append",
    "post_append_pre_match",
    "post_match_pre_deliver",
    "mid_checkpoint",
)

SUB = "matrix"
SUBSCRIPTIONS = [["coffee", "espresso"], ["tea", "green"]]
PUBLISHES = [
    (["coffee", "espresso", "u0"], 1.0),
    (["tea", "green", "u1"], 2.0),
    (["coffee", "beans", "u2"], 3.0),
    (["espresso", "machine", "u3"], 4.0),
    (["tea", "leaves", "u4"], 5.0),
    (["coffee", "espresso", "u5"], 6.0),
]
#: The op the crash lands on (a publish index).
CRASH_AT = 3


def run(coroutine, timeout=120.0):
    return asyncio.run(asyncio.wait_for(coroutine, timeout))


def make_engine(shape):
    base = DasEngine.for_method("GIFilter", k=3, block_size=4, backend="python")
    if shape == "sharded":
        return ShardedDasEngine(2, base.config)
    return base


def make_config(directory, shape, plan=None):
    return ServerConfig(
        inline_matcher=True,
        eventlog_dir=directory,
        eventlog_segment_entries=4,
        outbound_capacity=256,
        parallel_workers=2 if shape == "parallel" else 0,
        fault_injector=FaultPlan.parse(plan).injector() if plan else None,
    )


async def start_runtime(directory, shape, plan=None):
    runtime = ServerRuntime(
        make_engine(shape), make_config(directory, shape, plan)
    )
    await runtime.start()
    return runtime


class Driver:
    """One subscriber connection: drains pushes, acks what it saw."""

    def __init__(self, runtime):
        self.client = InProcessClient(runtime)
        self.received = []
        self.acked = -1

    async def attach(self, offset):
        reply = await self.client.resume(SUB, offset)
        await self.drain()
        return reply

    async def drain(self):
        """Pull every already-enqueued push (inline matcher: a publish
        resolves only after its notifications are enqueued)."""
        while True:
            try:
                message = await self.client.next_message(timeout=0.02)
            except asyncio.TimeoutError:
                return
            if message is None or message.get("op") != "notify":
                continue
            self.received.append(message)

    async def publish(self, tokens, created_at):
        ack = await self.client.publish(
            tokens=tokens, created_at=created_at
        )
        await self.drain()
        return ack

    async def ack_seen(self):
        top = max(
            (note["offset"] for note in self.received), default=-1
        )
        if top > self.acked:
            await self.client.ack(top)
            self.acked = top


def canonical(received):
    return [json.dumps(note, sort_keys=True) for note in received]


async def run_uninterrupted(directory, shape):
    """The oracle: the same schedule with no crash."""
    runtime = await start_runtime(directory, shape)
    driver = Driver(runtime)
    await driver.attach(-1)
    for keywords in SUBSCRIPTIONS:
        await driver.client.subscribe(keywords)
    for tokens, created_at in PUBLISHES:
        await driver.publish(tokens, created_at)
        await driver.ack_seen()
    await driver.client.close()
    await runtime.stop()
    return canonical(driver.received)


async def run_with_crash(directory, shape, kill_point):
    plan = None
    if kill_point == "post_append_pre_match":
        # Arrivals at eventlog.match count publish batches only.
        plan = f"eventlog.match@{CRASH_AT + 1}:raise"
    elif kill_point == "mid_checkpoint":
        plan = "checkpoint.write@2:torn"

    runtime = await start_runtime(directory, shape, plan)
    driver = Driver(runtime)
    await driver.attach(-1)
    for keywords in SUBSCRIPTIONS:
        await driver.client.subscribe(keywords)

    crashed_op_logged = None
    for index, (tokens, created_at) in enumerate(PUBLISHES):
        if index == CRASH_AT:
            if kill_point == "pre_append":
                crashed_op_logged = False  # never submitted: retry it
            elif kill_point == "post_append_pre_match":
                with pytest.raises(ReproError):
                    await driver.publish(tokens, created_at)
                crashed_op_logged = True  # logged, engine untouched
            elif kill_point == "post_match_pre_deliver":
                await driver.client.publish(
                    tokens=tokens, created_at=created_at
                )
                # Enqueued but never read: the crash eats the session
                # queue; only the retained outbox survives.
                crashed_op_logged = True
            elif kill_point == "mid_checkpoint":
                await runtime.checkpoint_eventlog()  # clean (arrival 1)
                await driver.publish(tokens, created_at)
                await driver.ack_seen()
                with pytest.raises(Exception):
                    await runtime.checkpoint_eventlog()  # torn (arrival 2)
                crashed_op_logged = True
            break
        await driver.publish(tokens, created_at)
        await driver.ack_seen()

    # The crash: no drain, no goodbye; durable state only.
    await runtime.stop(drain=False)

    # -- recovery ---------------------------------------------------------
    runtime = await start_runtime(directory, shape)
    driver2 = Driver(runtime)
    driver2.received = driver.received
    driver2.acked = driver.acked
    # The acked floor is already durable via the per-publish ack
    # records, so resume with -1: the outbox replay is exactly the
    # unacked suffix and no extra ack record shifts log offsets
    # relative to the oracle.
    await driver2.attach(-1)
    await driver2.ack_seen()
    resume_index = CRASH_AT if crashed_op_logged is False else CRASH_AT + 1
    for tokens, created_at in PUBLISHES[resume_index:]:
        await driver2.publish(tokens, created_at)
        await driver2.ack_seen()
    await driver2.drain()
    stats = await driver2.client.stats()
    await driver2.client.close()
    await runtime.stop()
    return canonical(driver2.received), stats


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("kill_point", KILL_POINTS)
def test_crash_matrix_stream_is_byte_identical(
    tmp_path, shape, kill_point
):
    oracle = run(run_uninterrupted(str(tmp_path / "oracle"), shape))
    stream, stats = run(
        run_with_crash(str(tmp_path / "crash"), shape, kill_point)
    )
    # Zero accepted-op loss and no duplicate delivery, byte for byte.
    assert stream == oracle
    pairs = [
        (json.loads(note)["offset"], json.loads(note)["query_id"])
        for note in stream
    ]
    assert len(set(pairs)) == len(pairs)
    recovery = stats["eventlog"]["recovery"]
    if kill_point == "mid_checkpoint":
        # The torn candidate was skipped for the older clean checkpoint.
        assert recovery["checkpoint_offset"] >= 0
    assert stats["dlq"]["entries"] == 0
