"""Tests for the delivery layer (service, subscriptions, mailboxes)."""

from __future__ import annotations

import pytest

from repro.core.engine import DasEngine
from repro.core.events import Notification
from repro.errors import UnknownQueryError
from repro.pubsub import Mailbox, PublishSubscribeService
from repro.stream.document import Document


def doc(i, tokens, t=None):
    return Document.from_tokens(i, tokens, float(i) if t is None else t)


# -- Mailbox ------------------------------------------------------------------


def _note(i):
    return Notification(0, Document.from_tokens(i, ["x"], float(i)), None)


def test_mailbox_push_drain_order():
    mailbox = Mailbox(capacity=4)
    for i in range(3):
        mailbox.push(_note(i))
    assert len(mailbox) == 3
    drained = mailbox.drain()
    assert [n.document.doc_id for n in drained] == [0, 1, 2]
    assert len(mailbox) == 0
    assert mailbox.drain() == []


def test_mailbox_drops_oldest_on_overflow():
    mailbox = Mailbox(capacity=2)
    for i in range(5):
        mailbox.push(_note(i))
    assert mailbox.dropped == 3
    assert [n.document.doc_id for n in mailbox.drain()] == [3, 4]


def test_mailbox_capacity_validated():
    with pytest.raises(ValueError):
        Mailbox(capacity=0)


# -- Service ------------------------------------------------------------------


def make_service():
    return PublishSubscribeService(DasEngine.for_method("GIFilter", k=2))


def test_subscribe_with_callback_receives_pushes():
    service = make_service()
    received = []
    subscription = service.subscribe("coffee", callback=received.append)
    service.publish(doc(0, ["coffee"]))
    service.publish(doc(1, ["tea"]))
    assert len(received) == 1
    assert received[0].document.doc_id == 0
    assert subscription.delivered == 1


def test_subscribe_with_mailbox_pull_delivery():
    service = make_service()
    subscription = service.subscribe(["storm"], mailbox_capacity=8)
    service.publish(doc(0, ["storm"]))
    service.publish(doc(1, ["storm", "coast"]))
    pending = subscription.mailbox.drain()
    assert [n.document.doc_id for n in pending] == [0, 1]


def test_initial_results_delivered_as_warmup():
    service = make_service()
    service.publish(doc(0, ["news"]))
    service.publish(doc(1, ["news"]))
    received = []
    service.subscribe("news", callback=received.append)
    assert [n.document.doc_id for n in received] == [0, 1]
    assert all(not n.is_replacement for n in received)


def test_auto_assigned_query_ids_increase():
    service = make_service()
    a = service.subscribe("one")
    b = service.subscribe("two")
    assert b.query_id > a.query_id


def test_cancel_stops_delivery():
    service = make_service()
    received = []
    subscription = service.subscribe("coffee", callback=received.append)
    subscription.cancel()
    assert not subscription.active
    service.publish(doc(0, ["coffee"]))
    assert received == []
    assert service.subscription_count == 0
    subscription.cancel()  # idempotent


def test_unsubscribe_unknown_raises():
    service = make_service()
    with pytest.raises(UnknownQueryError):
        service.unsubscribe(99)


def test_failing_callback_is_isolated():
    service = make_service()

    def explode(_note):
        raise RuntimeError("subscriber bug")

    subscription = service.subscribe("coffee", callback=explode)
    notes = service.publish(doc(0, ["coffee"]))
    assert len(notes) == 1  # publish path unaffected
    assert subscription.callback_errors == 1
    assert subscription.delivered == 1


def test_subscription_results_accessor():
    service = make_service()
    subscription = service.subscribe("coffee")
    service.publish(doc(0, ["coffee"]))
    assert [d.doc_id for d in subscription.results()] == [0]


def test_publish_text_assigns_ids_and_time():
    service = make_service()
    subscription = service.subscribe("coffee", mailbox_capacity=4)
    service.publish_text("great coffee here", created_at=1.0)
    service.publish_text("more coffee talk", created_at=2.0)
    ids = [d.doc_id for d in subscription.results()]
    assert ids == [1, 0]
    assert service.engine.clock.now == 2.0


def test_default_engine_constructed():
    service = PublishSubscribeService()
    assert service.engine.method_name == "GIFilter"


def test_repr():
    service = make_service()
    subscription = service.subscribe("xray")
    assert "active" in repr(subscription)
    subscription.cancel()
    assert "cancelled" in repr(subscription)


# -- batched text publishing (ISSUE 2 satellite) ------------------------------


def small_service():
    return PublishSubscribeService(
        DasEngine.for_method("GIFilter", k=3, block_size=4)
    )


def test_publish_texts_routes_through_batch_pipeline():
    service = small_service()
    subscription = service.subscribe(["coffee"], mailbox_capacity=16)
    notifications = service.publish_texts(
        ["coffee shop", "coffee beans", "tea house"], created_at=1.0
    )
    # Ids are allocated in input order; only the matching docs notify.
    assert [n.document.doc_id for n in notifications] == [0, 1]
    assert service.engine.counters.docs_published == 3
    drained = subscription.mailbox.drain()
    assert [n.document.doc_id for n in drained] == [0, 1]


def test_publish_texts_matches_sequential_publish_text():
    batched = small_service()
    sequential = small_service()
    batched.subscribe(["coffee"], mailbox_capacity=32)
    sequential.subscribe(["coffee"], mailbox_capacity=32)
    texts = [f"coffee update {i}" for i in range(6)]
    batch_notes = batched.publish_texts(texts, created_at=1.0)
    seq_notes = []
    for text in texts:
        seq_notes.extend(sequential.publish_text(text, created_at=1.0))

    def stream(notes):
        return [
            (
                n.query_id,
                n.document.doc_id,
                n.replaced.doc_id if n.replaced else None,
            )
            for n in notes
        ]

    assert stream(batch_notes) == stream(seq_notes)


def test_publish_texts_empty_batch_is_a_noop():
    service = small_service()
    assert service.publish_texts([]) == []
    assert service.engine.counters.docs_published == 0
    # The id counter did not advance: the next text still gets id 0.
    service.publish_texts(["coffee"], created_at=1.0)
    assert service.engine.store._last_id == 0


def test_auto_doc_ids_skip_externally_published_documents():
    """Auto-assigned ids must never collide with ids the caller chose
    when publishing Documents directly (ISSUE 2 satellite)."""
    service = small_service()
    service.subscribe(["coffee"], mailbox_capacity=32)

    first = service.publish_texts(["coffee one"], created_at=1.0)
    assert first[0].document.doc_id == 0

    # External publish with a caller-chosen id far ahead.
    service.publish(doc(5, ["coffee", "external"], t=2.0))

    # The next auto id jumps past the external document instead of
    # colliding with history.
    second = service.publish_texts(["coffee two"], created_at=3.0)
    assert second[0].document.doc_id == 6

    # And the counter stays monotonic even if the engine floor lags.
    third = service.publish_text("coffee three", created_at=4.0)
    assert third[0].document.doc_id == 7


def test_auto_doc_ids_survive_interleaved_batches():
    service = small_service()
    service.publish_texts(["a b", "c d"], created_at=1.0)  # ids 0, 1
    service.publish(doc(2, ["x"], t=2.0))  # external takes the next slot
    service.publish_texts(["e f", "g h"], created_at=3.0)
    assert service.engine.store._last_id == 4  # 0,1,2 then 3,4
