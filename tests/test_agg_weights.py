"""Tests for aggregated term weights (Definition 7, Lemma 6) and Φ_max."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import UNLIMITED
from repro.core.agg_weights import AggregatedTermWeights, MemoryBudget
from repro.text.vectors import TermVector, cosine_similarity

tokens_strategy = st.lists(st.sampled_from("abcde"), min_size=1, max_size=8)


def test_add_accumulates_unit_weights():
    aw = AggregatedTermWeights()
    aw.add_document(TermVector({"a": 3, "b": 4}))  # norm 5
    assert aw.weight("a") == pytest.approx(0.6)
    assert aw.weight("b") == pytest.approx(0.8)
    assert aw.weight("c") == 0.0
    assert aw.entry_count == 2


def test_remove_document_restores_state():
    aw = AggregatedTermWeights()
    first = TermVector({"a": 1, "b": 1})
    second = TermVector({"b": 2})
    aw.add_document(first)
    aw.add_document(second)
    aw.remove_document(second)
    assert aw.weight("b") == pytest.approx(first.unit_weight("b"))
    aw.remove_document(first)
    assert aw.entry_count == 0


def test_empty_vector_is_noop():
    aw = AggregatedTermWeights()
    aw.add_document(TermVector({}))
    aw.remove_document(TermVector({}))
    assert aw.entry_count == 0


@settings(max_examples=60, deadline=None)
@given(st.lists(tokens_strategy, min_size=1, max_size=6), tokens_strategy)
def test_lemma6_similarity_sum(token_lists, new_tokens):
    """AW dot product equals the sum of cosines over the set (Lemma 6)."""
    documents = [TermVector.from_tokens(tokens) for tokens in token_lists]
    new_vector = TermVector.from_tokens(new_tokens)
    aw = AggregatedTermWeights()
    for vector in documents:
        aw.add_document(vector)
    direct = sum(cosine_similarity(vector, new_vector) for vector in documents)
    assert aw.similarity_sum(new_vector) == pytest.approx(direct, abs=1e-9)


def test_similarity_sum_empty_cases():
    aw = AggregatedTermWeights()
    assert aw.similarity_sum(TermVector({"a": 1})) == 0.0
    aw.add_document(TermVector({"a": 1}))
    assert aw.similarity_sum(TermVector({})) == 0.0


def test_budget_reserve_release():
    budget = MemoryBudget(10)
    assert budget.try_reserve(6)
    assert budget.used == 6
    assert not budget.try_reserve(5)
    assert budget.used == 6  # failed reserve leaves state unchanged
    assert budget.try_reserve(4)
    budget.release(10)
    assert budget.used == 0


def test_budget_unlimited():
    budget = MemoryBudget(UNLIMITED)
    assert budget.unlimited
    assert budget.try_reserve(10**9)


def test_budget_validation():
    with pytest.raises(ValueError):
        MemoryBudget(-5)
    budget = MemoryBudget(10)
    with pytest.raises(ValueError):
        budget.try_reserve(-1)
    with pytest.raises(ValueError):
        budget.release(1)  # nothing reserved


def test_budget_zero_capacity_rejects_everything():
    budget = MemoryBudget(0)
    assert budget.try_reserve(0)
    assert not budget.try_reserve(1)
