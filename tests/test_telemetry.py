"""Tests for the unified telemetry layer (ISSUE 5 tentpole).

Covers the metric registry, the fixed-bucket latency histogram and its
wire form, deterministic trace sampling, the per-publish span lifecycle,
the derived filtering-effectiveness gauges, Prometheus text rendering,
engine threading, and the server's ``stats``/``metrics`` surface over
both transports plus the ``repro metrics`` CLI subcommand.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.config import EngineConfig
from repro.core.engine import DasEngine
from repro.core.query import DasQuery
from repro.metrics.instrumentation import Counters
from repro.stream.document import Document
from repro.telemetry import (
    BOUNDED_RATIOS,
    CountingClock,
    DEFAULT_BOUNDS,
    ENGINE_STAGES,
    LatencyHistogram,
    MetricRegistry,
    PIPELINE_STAGES,
    Telemetry,
    TraceSampler,
    effectiveness_gauges,
    empty_snapshot,
    merge_snapshots,
    render_exposition,
)
from repro.text.vectors import TermVector


def doc(doc_id, terms, t=None):
    return Document(
        doc_id, TermVector({term: 1 for term in terms}), float(doc_id if t is None else t)
    )


# -- registry --------------------------------------------------------------


def test_registry_counter_gauge_histogram():
    registry = MetricRegistry()
    counter = registry.counter("reqs", "Requests.")
    counter.inc()
    counter.inc(3)
    assert counter.value == 4
    with pytest.raises(ValueError):
        counter.inc(-1)

    gauge = registry.gauge("depth", "Queue depth.")
    gauge.set(7.5)
    assert gauge.value == 7.5

    histogram = registry.histogram("lat", "Latency.")
    histogram.observe(0.5)
    assert histogram.count == 1

    # Get-or-create: same name returns the same instance.
    assert registry.counter("reqs", "Requests.") is counter
    # ...but a type collision is an error, not a silent overwrite.
    with pytest.raises(ValueError):
        registry.gauge("reqs", "Requests.")
    assert sorted(registry.names()) == ["depth", "lat", "reqs"]
    assert registry.get("missing") is None


# -- histogram -------------------------------------------------------------


def test_histogram_buckets_and_bounds():
    histogram = LatencyHistogram(bounds=(0.1, 1.0, 10.0))
    for value in (0.05, 0.1, 0.5, 5.0, 100.0):
        histogram.observe(value)
    # bisect_left puts a value equal to a bound in that bound's bucket
    # (Prometheus `le` semantics: bucket counts values <= bound).
    assert histogram.counts == [2, 1, 1, 1]
    assert histogram.count == 5
    assert histogram.sum == pytest.approx(105.65)
    assert histogram.cumulative() == [2, 3, 4, 5]
    with pytest.raises(ValueError):
        histogram.observe(-0.1)
    with pytest.raises(ValueError):
        LatencyHistogram(bounds=(1.0, 1.0))
    with pytest.raises(ValueError):
        LatencyHistogram(bounds=())


def test_histogram_merge_and_wire_round_trip():
    a = LatencyHistogram()
    b = LatencyHistogram()
    a.observe(1e-5)
    b.observe(0.5)
    b.observe(3.0)
    merged = a + b
    assert merged.count == 3
    assert merged.sum == pytest.approx(a.sum + b.sum)
    assert a.count == 1  # __add__ does not mutate

    wire = merged.to_wire()
    back = LatencyHistogram.from_wire(wire)
    assert back == merged
    with pytest.raises(ValueError):
        a.merge(LatencyHistogram(bounds=(1.0, 2.0)))
    with pytest.raises(ValueError):
        LatencyHistogram.from_wire(
            {"bounds": [1.0], "counts": [1], "sum": 0.0}
        )


def test_default_bounds_shape():
    assert list(DEFAULT_BOUNDS) == sorted(DEFAULT_BOUNDS)
    assert DEFAULT_BOUNDS[0] <= 1e-6
    assert DEFAULT_BOUNDS[-1] >= 1.0


# -- sampling --------------------------------------------------------------


def test_sampler_is_deterministic_and_rate_bounded():
    sampler = TraceSampler(seed=7, rate=0.25)
    first = [sampler.sampled(doc_id) for doc_id in range(400)]
    second = [
        TraceSampler(seed=7, rate=0.25).sampled(doc_id)
        for doc_id in range(400)
    ]
    assert first == second  # pure function of (seed, doc_id)
    rate = sum(first) / len(first)
    assert 0.1 < rate < 0.45  # crc32 is roughly uniform

    different = [
        TraceSampler(seed=8, rate=0.25).sampled(doc_id)
        for doc_id in range(400)
    ]
    assert first != different  # the seed matters

    assert not any(
        TraceSampler(seed=7, rate=0.0).sampled(i) for i in range(50)
    )
    assert all(
        TraceSampler(seed=7, rate=1.0).sampled(i) for i in range(50)
    )
    with pytest.raises(ValueError):
        TraceSampler(rate=1.5)


def test_counting_clock_is_deterministic():
    clock = CountingClock()
    assert clock() == pytest.approx(1e-6)
    assert clock() == pytest.approx(2e-6)
    other = CountingClock(step=0.001)
    assert other() == pytest.approx(0.001)


# -- effectiveness ---------------------------------------------------------


def test_effectiveness_zero_denominators():
    gauges = effectiveness_gauges(Counters())
    assert all(value == 0.0 for value in gauges.values())
    for name in BOUNDED_RATIOS:
        assert name in gauges


def test_effectiveness_ratios():
    counters = Counters(
        docs_published=10,
        postings_visited=40,
        blocks_visited=6,
        blocks_skipped=2,
        group_checks=8,
        queries_evaluated=20,
        quick_rejections=5,
        sim_evaluations=30,
        matches=10,
    )
    gauges = effectiveness_gauges(counters)
    assert gauges["blocks_skipped_ratio"] == pytest.approx(2 / 8)
    assert gauges["quick_rejection_ratio"] == pytest.approx(5 / 20)
    assert gauges["sim_evals_per_match"] == pytest.approx(3.0)
    assert gauges["postings_per_doc"] == pytest.approx(4.0)
    assert gauges["group_check_skip_ratio"] == pytest.approx(2 / 8)
    assert gauges["match_rate"] == pytest.approx(0.5)
    # A plain dict works too (merged counters cross the wire as dicts).
    assert effectiveness_gauges(counters.as_dict()) == gauges
    for name in BOUNDED_RATIOS:
        assert 0.0 <= gauges[name] <= 1.0


# -- Telemetry lifecycle ---------------------------------------------------


def test_publish_lifecycle_and_trace_capture():
    telemetry = Telemetry(
        time_fn=CountingClock(), sample_rate=1.0, trace_capacity=4
    )
    counters = Counters()
    observation = telemetry.begin_publish(0, counters)
    observation.add("group_filter", 2e-6)
    counters.postings_visited += 3
    counters.matches += 1
    telemetry.end_publish(observation, counters)

    snapshot = telemetry.snapshot()
    assert snapshot["spans"] == {
        "started": 1, "finished": 1, "aborted": 0, "sampled": 1,
    }
    for stage in ENGINE_STAGES:
        assert sum(snapshot["stages"][stage]["counts"]) == 1

    (trace,) = telemetry.traces
    assert trace["doc_id"] == 0
    assert trace["root"] == "publish"
    by_stage = {span["name"]: span["counters"] for span in trace["stages"]}
    assert by_stage["postings_traversal"] == {"postings_visited": 3}
    assert by_stage["result_update"] == {"matches": 1}
    assert by_stage["group_filter"] == {}  # zero deltas are elided


def test_abort_keeps_ledger_balanced():
    telemetry = Telemetry(time_fn=CountingClock(), sample_rate=0.0)
    counters = Counters()
    observation = telemetry.begin_publish(1, counters)
    telemetry.abort_publish(observation)
    spans = telemetry.span_counts()
    assert spans["started"] == spans["finished"] + spans["aborted"] == 1
    # Aborted publishes leave no histogram observation behind.
    assert all(
        sum(wire["counts"]) == 0
        for wire in telemetry.snapshot()["stages"].values()
    )


def test_trace_ring_is_bounded():
    telemetry = Telemetry(
        time_fn=CountingClock(), sample_rate=1.0, trace_capacity=3
    )
    counters = Counters()
    for doc_id in range(10):
        observation = telemetry.begin_publish(doc_id, counters)
        telemetry.end_publish(observation, counters)
    assert len(telemetry.traces) == 3
    assert [trace["doc_id"] for trace in telemetry.traces] == [7, 8, 9]
    assert telemetry.span_counts()["sampled"] == 10


# -- snapshot merge --------------------------------------------------------


def test_merge_snapshots_skips_none_and_adds():
    a = Telemetry(time_fn=CountingClock(), sample_rate=0.0)
    b = Telemetry(time_fn=CountingClock(), sample_rate=0.0)
    counters = Counters()
    for telemetry, count in ((a, 2), (b, 3)):
        for doc_id in range(count):
            observation = telemetry.begin_publish(doc_id, counters)
            telemetry.end_publish(observation, counters)
    merged = merge_snapshots([a.snapshot(), None, b.snapshot()])
    assert merged["spans"]["finished"] == 5
    for stage in ENGINE_STAGES:
        assert sum(merged["stages"][stage]["counts"]) == 5
    assert merge_snapshots([None, None]) == empty_snapshot()
    # Order-insensitive.
    flipped = merge_snapshots([b.snapshot(), a.snapshot(), None])
    assert flipped == merged


# -- Prometheus rendering --------------------------------------------------


def test_render_exposition_format():
    telemetry = Telemetry(time_fn=CountingClock(), sample_rate=0.0)
    counters = Counters(docs_published=4, matches=2, queries_evaluated=8)
    observation = telemetry.begin_publish(0, counters)
    telemetry.end_publish(observation, counters)
    snapshot = telemetry.snapshot()
    text = render_exposition(
        counters.as_dict(),
        snapshot["stages"],
        snapshot["spans"],
        effectiveness_gauges(counters),
        gauges={"repro_sessions_open": 3},
    )
    assert text.endswith("\n")
    lines = text.splitlines()
    assert "repro_engine_docs_published_total 4" in lines
    assert 'repro_publish_spans_total{state="finished"} 1' in lines
    assert 'repro_filtering_effectiveness{ratio="match_rate"} 0.25' in lines
    assert "repro_sessions_open 3" in lines
    assert any(
        line.startswith(
            'repro_stage_latency_seconds_bucket{stage="group_filter",le='
        )
        for line in lines
    )
    assert (
        'repro_stage_latency_seconds_bucket{stage="group_filter",le="+Inf"} 1'
        in lines
    )
    assert 'repro_stage_latency_seconds_count{stage="group_filter"} 1' in lines
    # Two renders of the same snapshot are byte-equal.
    again = render_exposition(
        counters.as_dict(),
        snapshot["stages"],
        snapshot["spans"],
        effectiveness_gauges(counters),
        gauges={"repro_sessions_open": 3},
    )
    assert again == text


# -- engine threading ------------------------------------------------------


def test_engine_observes_every_publish_once():
    telemetry = Telemetry(time_fn=CountingClock(), sample_rate=1.0)
    engine = DasEngine(
        EngineConfig(k=2, block_size=4, backend="python"),
        telemetry=telemetry,
    )
    engine.subscribe(DasQuery(0, ("apple", "banana")))
    engine.subscribe(DasQuery(1, ("apple", "cherry")))
    n_docs = 8
    for doc_id in range(n_docs):
        engine.publish(doc(doc_id, ("apple", "banana", f"w{doc_id % 3}")))
    snapshot = engine.telemetry_snapshot()
    assert snapshot["spans"]["started"] == n_docs
    assert snapshot["spans"]["finished"] == n_docs
    assert snapshot["spans"]["aborted"] == 0
    for stage in ENGINE_STAGES:
        assert sum(snapshot["stages"][stage]["counts"]) == n_docs
    # Traces carry the counter deltas of the engine's actual work.
    assert len(telemetry.traces) == n_docs
    total_matches = sum(
        span["counters"].get("matches", 0)
        for trace in telemetry.traces
        for span in trace["stages"]
    )
    assert total_matches == engine.counters.matches


def test_engine_without_telemetry_snapshots_none():
    engine = DasEngine(EngineConfig(k=2))
    assert engine.telemetry is None
    assert engine.telemetry_snapshot() is None
    engine.attach_telemetry(Telemetry(time_fn=CountingClock()))
    engine.publish(doc(0, ("apple",)))
    assert engine.telemetry_snapshot()["spans"]["finished"] == 1


# -- server surface --------------------------------------------------------


def _publish_workload(client):
    async def inner():
        await client.subscribe(["apple", "banana"])
        for index in range(6):
            await client.publish(tokens=["apple", "banana", f"w{index}"])
    return inner()


def test_stats_and_metrics_in_process():
    from repro.server import ServerRuntime
    from repro.server.inprocess import InProcessClient

    async def scenario():
        runtime = ServerRuntime(DasEngine(EngineConfig(k=3)))
        await runtime.start()
        client = InProcessClient(runtime)
        await _publish_workload(client)
        stats = await client.stats()
        text = await client.metrics()
        await runtime.stop()
        return stats, text

    stats, text = asyncio.run(scenario())
    telemetry = stats["telemetry"]
    # Engine stages and pipeline stages in one unified stats surface.
    for stage in ENGINE_STAGES + PIPELINE_STAGES:
        assert stage in telemetry["stages"]
    for stage in ENGINE_STAGES:
        assert sum(telemetry["stages"][stage]["counts"]) == 6
    assert sum(telemetry["stages"]["ingest_queue"]["counts"]) == 6
    assert telemetry["spans"]["finished"] == 6
    for name in BOUNDED_RATIOS:
        assert 0.0 <= telemetry["effectiveness"][name] <= 1.0
    assert telemetry["effectiveness"]["match_rate"] > 0.0

    assert "repro_engine_docs_published_total 6" in text
    assert 'repro_publish_spans_total{state="finished"} 6' in text
    assert 'stage="ingest_queue"' in text
    assert 'stage="postings_traversal"' in text
    assert "repro_ingest_queue_depth 0" in text


def test_stats_and_metrics_over_tcp():
    from repro.server import NdjsonTcpClient, NdjsonTcpServer, ServerRuntime

    async def scenario():
        runtime = ServerRuntime(DasEngine(EngineConfig(k=3)))
        await runtime.start()
        server = NdjsonTcpServer(runtime)
        host, port = await server.start()
        client = await NdjsonTcpClient.connect(host, port)
        await _publish_workload(client)
        stats = await client.stats()
        text = await client.metrics()
        await client.close()
        await server.stop()
        await runtime.stop()
        return stats, text

    stats, text = asyncio.run(asyncio.wait_for(scenario(), 30.0))
    telemetry = stats["telemetry"]
    # The JSON round trip preserves the full telemetry section.
    for stage in ENGINE_STAGES + PIPELINE_STAGES:
        assert stage in telemetry["stages"]
    assert telemetry["spans"]["finished"] == 6
    assert "repro_filtering_effectiveness" in text
    assert "repro_stage_latency_seconds_bucket" in text
    assert text.endswith("\n")


def test_metrics_cli_subcommand():
    from repro.experiments.cli import _metrics, build_parser, build_serve_runtime

    args = build_parser().parse_args(
        ["serve", "--port", "0", "--method", "GIFilter", "--k", "3"]
    )

    async def scenario():
        runtime, server = build_serve_runtime(args)
        await runtime.start()
        host, port = await server.start()
        client_args = build_parser().parse_args(
            ["metrics", "--host", host, "--port", str(port)]
        )
        text = await _metrics(client_args)
        await server.stop()
        await runtime.stop()
        return text

    text = asyncio.run(asyncio.wait_for(scenario(), 30.0))
    assert "repro_engine_docs_published_total 0" in text
    assert "repro_publish_spans_total" in text


def test_metrics_op_rejected_before_parse_fix():
    from repro.server.protocol import REQUEST_OPS, parse_request

    assert "metrics" in REQUEST_OPS
    assert parse_request({"op": "metrics"}) == {"op": "metrics"}
