"""Flat postings mirror (ISSUE 9 tentpole): structural byte-identity.

The mirror keeps per-term contiguous arrays of the linked
:class:`~repro.core.inverted_file.QueryInvertedFile` structure —
append-at-tail inserts, tombstoned removals, threshold-triggered
compaction — and the batch skip pass is only sound if that mirror never
drifts from the source of truth.  This suite drives random
subscribe/unsubscribe churn through a real engine (Hypothesis), pins
the compaction trigger, proves a checkpoint restore rebuilds the mirror
through the ordinary insert hooks, and crafts a document whose
universal upper bound actually fires the batch verdict so the
prefilter's skip path (not just its fallback) is exercised.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import EngineConfig
from repro.core.engine import DasEngine
from repro.core.query import DasQuery
from repro.persistence.checkpoint import checkpoint, restore
from repro.stream.document import Document

TERMS = ("alpha", "beta", "gamma", "delta")


def _engine(**overrides):
    options = dict(k=2, block_size=2, backend="numpy")
    options.update(overrides)
    engine = DasEngine(EngineConfig(**options))
    if engine._flat is None:
        pytest.skip("flat mirror unavailable")
    return engine


def _linked_view(engine):
    """Live postings grouped by block, from the linked source of truth."""
    return {
        term: [
            list(block.query_ids)
            for block in engine._index.list_for(term).blocks
        ]
        for term in engine._index.terms()
    }


_ACTIONS = st.lists(
    st.one_of(
        st.tuples(
            st.just("sub"),
            st.sets(st.sampled_from(TERMS), min_size=1, max_size=3),
        ),
        st.tuples(st.just("unsub"), st.floats(0.0, 1.0, exclude_max=True)),
    ),
    min_size=1,
    max_size=60,
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(actions=_ACTIONS)
def test_flat_mirror_is_byte_identical_under_churn(actions):
    """After every insert, tombstone, block deletion and compaction the
    mirror's live view equals the linked structure exactly."""
    engine = _engine()
    next_id = 0
    live = []
    for kind, payload in actions:
        if kind == "sub":
            engine.subscribe(DasQuery(next_id, sorted(payload)))
            live.append(next_id)
            next_id += 1
        elif live:
            index = int(payload * len(live))
            engine.unsubscribe(live.pop(index))
        assert engine._flat.audit() == _linked_view(engine)


def test_tombstone_threshold_triggers_compaction():
    """Sparse unsubscribes tombstone in place until the dead share
    crosses the threshold, then the term rebuilds without tombstones."""
    engine = _engine(block_size=4)
    for query_id in range(40):
        engine.subscribe(DasQuery(query_id, ["alpha"]))
    state = engine._flat._terms["alpha"]
    assert state.size == 40 and state.block_count == 10
    # One removal per block: no block empties, so every removal is a
    # pure tombstone until compaction fires at 10 dead (10*4 >= 40).
    for query_id in range(0, 36, 4):
        engine.unsubscribe(query_id)
    assert state.dead == 9
    assert engine.counters.postings_compactions == 0
    engine.unsubscribe(36)
    assert engine.counters.postings_compactions == 1
    assert state.dead == 0 and state.size == 30
    assert engine._flat.audit() == _linked_view(engine)


def test_checkpoint_restore_rebuilds_mirror():
    """The mirror is derived state: restore replays inserts against the
    index and the attached mirror sees every one of them."""
    engine = _engine()
    for query_id in range(6):
        engine.subscribe(
            DasQuery(query_id, [TERMS[query_id % 3], TERMS[3]])
        )
    engine.unsubscribe(2)
    restored = restore(checkpoint(engine))
    assert restored._flat is not None
    # Restore replays the surviving queries in id order, so block
    # boundaries may differ from the churned original — the mirror must
    # match the *restored* linked structure exactly, and the flattened
    # memberships must match the original engine.
    assert restored._flat.audit() == _linked_view(restored)
    assert {
        term: sorted(q for block in blocks for q in block)
        for term, blocks in restored._flat.audit().items()
    } == {
        term: sorted(q for block in blocks for q in block)
        for term, blocks in _linked_view(engine).items()
    }


def _strong_doc(doc_id, flavour):
    # Heavily concentrated on the query term: near-maximal TRel, so the
    # filled result sets are expensive to displace.
    return Document.from_tokens(
        doc_id, ["alpha"] * 10 + [flavour] * 2, created_at=0.0
    )


def test_batch_verdict_fires_and_matches_scalar_decisions(monkeypatch):
    """A weak document against strong filled results trips the U0
    verdict (``flat_skips`` > 0) and the outcome is identical to the
    flat-disabled engine — the verdict only takes guaranteed skips."""

    def drive(engine):
        for query_id in range(4):
            engine.subscribe(DasQuery(query_id, ["alpha"]))
        notes = []
        for doc_id, flavour in enumerate(("beta", "gamma")):
            notes += engine.publish(_strong_doc(doc_id, flavour))
        # PS of "alpha" is diluted to ~1/32: with alpha=0.9 the upper
        # bound sits far below the filled blocks' Eq. 12 thresholds.
        weak = Document.from_tokens(
            2, ["alpha"] + ["zeta"] * 31, created_at=0.0
        )
        notes += engine.publish(weak)
        final = {
            query_id: [d.doc_id for d in engine.results(query_id)]
            for query_id in range(4)
        }
        return sorted(
            (n.query_id, n.document.doc_id) for n in notes
        ), final

    flat_engine = _engine(alpha=0.9)
    flat_notes, flat_final = drive(flat_engine)
    assert flat_engine.counters.flat_skips > 0
    monkeypatch.setenv("REPRO_DISABLE_FLAT_POSTINGS", "1")
    scalar_engine = DasEngine(
        EngineConfig(k=2, block_size=2, backend="numpy", alpha=0.9)
    )
    assert scalar_engine._flat is None
    assert drive(scalar_engine) == (flat_notes, flat_final)
    assert (
        scalar_engine.counters.blocks_skipped
        == flat_engine.counters.blocks_skipped
    )
