"""Tests for postings blocks and the query inverted file."""

from __future__ import annotations

import pytest

from repro.core.blocks import PostingsBlock
from repro.core.inverted_file import PostingsList, QueryInvertedFile
from repro.core.query import DasQuery
from repro.core.result_set import QueryResultSet
from repro.stream.document import Document


def filled_result_set(k, docs, trel=0.2):
    rs = QueryResultSet(k, track_aggregated_weights=False)
    for d in docs:
        rs.admit(d, trel, rs.similarities_to(d.vector))
    return rs


def doc(i, tokens):
    return Document.from_tokens(i, tokens, float(i))


# -- PostingsBlock ---------------------------------------------------------------


def test_block_append_keeps_order():
    block = PostingsBlock()
    block.append(1)
    block.append(5)
    assert block.min_id == 1 and block.max_id == 5
    assert len(block) == 2
    with pytest.raises(ValueError):
        block.append(3)


def test_block_append_invalidates_mcs():
    block = PostingsBlock()
    block.append(1)
    block.mcs_sets = []
    block.mcs_initial_count = 0
    block.append(2)
    assert block.mcs_sets is None


def test_block_remove():
    block = PostingsBlock()
    for qid in (1, 2, 3):
        block.append(qid)
    assert block.remove(2)
    assert block.query_ids == [1, 3]
    assert not block.remove(9)


def test_refresh_metadata_all_filled():
    block = PostingsBlock()
    block.append(0)
    block.append(1)
    result_sets = {
        0: filled_result_set(2, [doc(0, ["w"]), doc(1, ["w"])], trel=0.4),
        1: filled_result_set(2, [doc(2, ["w"]), doc(3, ["x"])], trel=0.1),
    }
    block.refresh_metadata(result_sets, alpha=0.3)
    assert not block.meta_dirty
    assert not block.has_unfilled
    assert block.unfilled_ids == []
    assert block.trel_max_de == pytest.approx(0.4)
    assert block.earliest_de == 0.0
    expected_min = min(
        result_sets[0].static_dr_oldest(0.3), result_sets[1].static_dr_oldest(0.3)
    )
    assert block.dtrel_min == pytest.approx(expected_min)


def test_refresh_metadata_with_unfilled_member():
    block = PostingsBlock()
    block.append(0)
    block.append(1)
    result_sets = {
        0: filled_result_set(2, [doc(0, ["w"]), doc(1, ["w"])]),
        1: filled_result_set(2, [doc(2, ["w"])]),  # only 1 of 2 -> unfilled
    }
    block.refresh_metadata(result_sets, alpha=0.3)
    assert block.has_unfilled
    assert block.unfilled_ids == [1]
    # summaries still cover the filled member
    assert block.dtrel_min == pytest.approx(result_sets[0].static_dr_oldest(0.3))


def test_refresh_metadata_nothing_filled():
    block = PostingsBlock()
    block.append(0)
    result_sets = {0: filled_result_set(2, [doc(0, ["w"])])}
    block.refresh_metadata(result_sets, alpha=0.3)
    assert block.dtrel_min == float("-inf")


def test_rebuild_and_invalidate_mcs():
    block = PostingsBlock()
    block.append(0)
    block.append(1)
    shared = doc(1, ["w"])
    result_sets = {
        0: filled_result_set(2, [doc(0, ["w"]), shared]),
        1: filled_result_set(2, [doc(0, ["w"]), shared]),
    }
    # Admit shared as the newer doc of both; universe = {shared} (oldest
    # excluded).
    block.rebuild_mcs("w", result_sets)
    assert block.mcs_sets and block.mcs_initial_count == 1
    assert block.needs_mcs_rebuild(0.5) is False
    dropped = block.invalidate_mcs_with(frozenset({shared.doc_id}))
    assert dropped == 1
    assert block.mcs_sets == []
    assert block.needs_mcs_rebuild(0.5) is True  # 0/1 < 0.5


def test_needs_rebuild_when_unbuilt():
    assert PostingsBlock().needs_mcs_rebuild(0.5)


def test_invalidate_noop_cases():
    block = PostingsBlock()
    assert block.invalidate_mcs_with(frozenset({1})) == 0
    block.mcs_sets = []
    assert block.invalidate_mcs_with(frozenset()) == 0


# -- PostingsList ------------------------------------------------------------------


def test_postings_list_blocks_split_at_capacity():
    plist = PostingsList("w")
    for qid in range(5):
        plist.append(qid, block_size=2)
    assert len(plist) == 3
    assert [len(b) for b in plist] == [2, 2, 1]
    assert plist.posting_count == 5


def test_postings_list_unbounded_single_block():
    plist = PostingsList("w")
    for qid in range(100):
        plist.append(qid, block_size=None)
    assert len(plist) == 1


def test_find_block():
    plist = PostingsList("w")
    for qid in (0, 2, 4, 6, 8, 10):
        plist.append(qid, block_size=2)
    block = plist.find_block(4)
    assert block is not None and 4 in block.query_ids
    assert plist.find_block(5) is None
    assert plist.find_block(99) is None


def test_postings_list_remove_drops_empty_blocks():
    plist = PostingsList("w")
    for qid in (1, 2, 3):
        plist.append(qid, block_size=1)
    assert plist.remove(2)
    assert len(plist) == 2
    assert not plist.remove(2)


# -- QueryInvertedFile ----------------------------------------------------------------


def test_insert_returns_touched_blocks():
    index = QueryInvertedFile(block_size=4)
    touched = index.insert(DasQuery(0, ["a", "b"]))
    assert {term for term, _ in touched} == {"a", "b"}
    assert index.term_count == 2
    assert index.posting_count == 2


def test_insert_and_find():
    index = QueryInvertedFile(block_size=2)
    for qid in range(4):
        index.insert(DasQuery(qid, ["x"]))
    found = list(index.blocks_for_query(DasQuery(3, ["x"])))
    assert len(found) == 1
    term, block = found[0]
    assert term == "x" and 3 in block.query_ids
    assert index.block_count == 2


def test_remove_query():
    index = QueryInvertedFile(block_size=4)
    q = DasQuery(0, ["a", "b"])
    index.insert(q)
    index.remove(q)
    assert index.term_count == 0
    assert index.posting_count == 0
    index.remove(q)  # idempotent


def test_invalid_block_size():
    with pytest.raises(ValueError):
        QueryInvertedFile(block_size=0)


def test_mcs_document_count():
    index = QueryInvertedFile(block_size=4)
    index.insert(DasQuery(0, ["a"]))
    assert index.mcs_document_count() == 0
