"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "ConfigurationError",
        "DuplicateQueryError",
        "UnknownQueryError",
        "QueryOrderError",
        "DuplicateDocumentError",
        "DocumentOrderError",
        "EmptyQueryError",
        "EvictionError",
    ):
        exc_type = getattr(errors, name)
        assert issubclass(exc_type, errors.ReproError)
        assert issubclass(exc_type, Exception)


def test_single_except_clause_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.DocumentOrderError("out of order")


def test_messages_preserved():
    err = errors.UnknownQueryError("query 7 is not subscribed")
    assert "query 7" in str(err)
