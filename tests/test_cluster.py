"""Cluster tier integration tests (real node subprocesses).

The load-bearing guarantee (ISSUE 7): a :class:`ClusterEngine` over
TCP node processes is *byte-identical* to the in-process engines on
the same op stream — three-way differential against
:class:`ShardedDasEngine` (ordered notifications; same shard count,
routing and merge) and a single :class:`DasEngine` (set equality) —
and stays so across a SIGKILL failover and a checkpoint restore.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterEngine, launch_cluster
from repro.core.engine import DasEngine
from repro.core.query import DasQuery
from repro.distributed.sharded import ShardedDasEngine
from repro.errors import DuplicateQueryError, QueryOrderError
from repro.workloads.corpus import SyntheticTweetCorpus
from repro.workloads.queries import lqd_queries

#: Node processes are launched with (method, k); the in-process oracles
#: must build the exact same config or the differential is void.
METHOD, K = "GIFilter", 3
N_DOCS = 40
N_QUERIES = 6


def _workload():
    corpus = SyntheticTweetCorpus(
        vocab_size=120, n_topics=5, doc_length=(4, 8), seed=23
    )
    return (
        corpus.documents(N_DOCS),
        lqd_queries(corpus, N_QUERIES, first_id=0),
    )


def _config():
    return DasEngine.for_method(METHOD, k=K).config


def _notes(notifications):
    return [
        (
            n.query_id,
            n.document.doc_id,
            n.replaced.doc_id if n.replaced is not None else None,
        )
        for n in notifications
    ]


def _fresh(query):
    return DasQuery(query.query_id, query.terms)


class _Cluster:
    """launch_cluster with guaranteed teardown."""

    def __init__(self, nodes=2, replicas=0, **kwargs):
        self.engine, self.primaries, self.standbys = launch_cluster(
            nodes, replicas=replicas, method=METHOD, k=K, **kwargs
        )

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.engine.close()
        for node in self.primaries + [
            s for s in self.standbys if s is not None
        ]:
            node.stop()


def test_cluster_matches_inprocess_engines():
    documents, queries = _workload()
    sharded = ShardedDasEngine(2, _config(), routing="round_robin")
    single = DasEngine(_config())
    with _Cluster(nodes=2, replicas=0) as deployment:
        cluster = deployment.engine
        for query in queries[:3]:
            expected = [d.doc_id for d in sharded.subscribe(_fresh(query))]
            single.subscribe(_fresh(query))
            got = [d.doc_id for d in cluster.subscribe(_fresh(query))]
            assert got == expected
        cursor = 0
        while cursor < len(documents):
            if cursor == 20:  # late subscribers see non-empty initials
                for query in queries[3:]:
                    expected = [
                        d.doc_id for d in sharded.subscribe(_fresh(query))
                    ]
                    single.subscribe(_fresh(query))
                    got = [
                        d.doc_id for d in cluster.subscribe(_fresh(query))
                    ]
                    assert got == expected
            batch = documents[cursor : cursor + 4]
            cursor += 4
            expected_notes = _notes(sharded.publish_batch(batch))
            single_notes = _notes(single.publish_batch(batch))
            got_notes = _notes(cluster.publish_batch(batch))
            # Ordered identity vs the sharded merge; set identity vs the
            # single engine (its per-doc ordering follows query-table
            # order, not the shard interleave).
            assert got_notes == expected_notes
            assert set(got_notes) == set(single_notes)
        for query in queries:
            query_id = query.query_id
            expected = [d.doc_id for d in sharded.results(query_id)]
            assert [d.doc_id for d in cluster.results(query_id)] == expected
            assert [d.doc_id for d in single.results(query_id)] == expected
        assert cluster.counters.docs_published == len(documents)
        assert cluster.query_count == N_QUERIES


def test_cluster_sequencing_validated_before_journaling():
    _, queries = _workload()
    with _Cluster(nodes=2, replicas=0) as deployment:
        cluster = deployment.engine
        cluster.subscribe(_fresh(queries[1]))
        with pytest.raises(DuplicateQueryError):
            cluster.subscribe(_fresh(queries[1]))
        with pytest.raises(QueryOrderError):
            cluster.subscribe(_fresh(queries[0]))  # id below the floor
        # Rejected ops never reached a journal: both shards are clean.
        stats = cluster.cluster_stats()
        assert sum(s["journal"]["end"] for s in stats["shards"]) == 1


def test_failover_keeps_stream_byte_identical():
    documents, queries = _workload()
    sharded = ShardedDasEngine(2, _config(), routing="round_robin")
    with _Cluster(nodes=2, replicas=1, replica_lag=4) as deployment:
        cluster = deployment.engine
        for query in queries:
            assert [
                d.doc_id for d in cluster.subscribe(_fresh(query))
            ] == [d.doc_id for d in sharded.subscribe(_fresh(query))]
        for batch_start in range(0, 20, 4):
            batch = documents[batch_start : batch_start + 4]
            assert _notes(cluster.publish_batch(batch)) == _notes(
                sharded.publish_batch(batch)
            )
        cluster.flush_replication()
        deployment.primaries[0].kill()
        # The op that discovers the death must promote the standby,
        # replay the journal suffix, and return the same notifications.
        for batch_start in range(20, len(documents), 4):
            batch = documents[batch_start : batch_start + 4]
            assert _notes(cluster.publish_batch(batch)) == _notes(
                sharded.publish_batch(batch)
            )
        stats = cluster.cluster_stats()
        assert stats["failovers"] == 1
        assert stats["shards"][0]["standby"] is None  # consumed
        for query in queries:
            assert [
                d.doc_id for d in cluster.results(query.query_id)
            ] == [d.doc_id for d in sharded.results(query.query_id)]
        # Zero accepted-op loss across the failover.
        assert cluster.counters.docs_published == len(documents)


def test_membership_promotes_idle_shard():
    documents, queries = _workload()
    with _Cluster(nodes=2, replicas=1, replica_lag=2) as deployment:
        cluster = deployment.engine
        for query in queries[:2]:
            cluster.subscribe(_fresh(query))
        cluster.publish_batch(documents[:8])
        cluster.flush_replication()
        monitor = cluster.start_membership(
            interval=0.05, miss_threshold=2
        )
        deployment.primaries[0].kill()
        # No further ops: the heartbeat alone must notice and promote.
        import time

        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            if cluster.cluster_stats()["failovers"] >= 1:
                break
            time.sleep(0.05)
        assert cluster.cluster_stats()["failovers"] == 1
        assert monitor.failovers_triggered == 1
        # The promoted node serves reads immediately.
        assert cluster.results(queries[0].query_id) is not None


def test_checkpoint_restores_onto_fresh_nodes():
    documents, queries = _workload()
    sharded = ShardedDasEngine(2, _config(), routing="round_robin")
    with _Cluster(nodes=2, replicas=0) as deployment:
        cluster = deployment.engine
        for query in queries[:4]:
            cluster.subscribe(_fresh(query))
            sharded.subscribe(_fresh(query))
        cluster.publish_batch(documents[:20])
        sharded.publish_batch(documents[:20])
        payload = cluster.checkpoint()
        assert payload["sharded"] is True and len(payload["shards"]) == 2

    with _Cluster(nodes=2, replicas=0) as fresh:
        # Seat the checkpoint onto brand-new processes via handoff.
        restored = ClusterEngine.from_checkpoint(
            payload, [node.address for node in fresh.primaries]
        )
        try:
            for query in queries[:4]:
                assert [
                    d.doc_id for d in restored.results(query.query_id)
                ] == [d.doc_id for d in sharded.results(query.query_id)]
            # The restored cluster continues the stream byte-identically:
            # same routing cursor, same id floors, same merge.
            for query in queries[4:]:
                assert [
                    d.doc_id for d in restored.subscribe(_fresh(query))
                ] == [d.doc_id for d in sharded.subscribe(_fresh(query))]
            assert _notes(restored.publish_batch(documents[20:])) == _notes(
                sharded.publish_batch(documents[20:])
            )
        finally:
            restored.close()


def test_cluster_crash_suite_smoke():
    from repro.simulation.cluster import run_cluster_crash_suite

    report = run_cluster_crash_suite(seed=3, ops=12, nodes=2)
    assert report["suite"] == "cluster_crash"
    assert report["scenarios"]["primary_kill"]["failovers"] >= 1
    assert report["scenarios"]["partition"]["reconnects"] >= 1
    assert report["ok"], report
