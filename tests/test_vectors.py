"""Unit and property tests for term vectors and similarity measures."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.vectors import (
    EMPTY_VECTOR,
    TermVector,
    angular_distance,
    angular_similarity,
    cosine_similarity,
    dissimilarity,
)

token_lists = st.lists(
    st.sampled_from("abcdefgh"), min_size=0, max_size=20
)


def test_from_tokens_counts_frequencies():
    vector = TermVector.from_tokens(["a", "b", "a", "c", "a"])
    assert vector.frequency("a") == 3
    assert vector.frequency("b") == 1
    assert vector.frequency("missing") == 0
    assert len(vector) == 3
    assert vector.length == 5


def test_norm_is_euclidean():
    vector = TermVector({"a": 3, "b": 4})
    assert vector.norm == pytest.approx(5.0)


def test_zero_frequencies_are_dropped():
    vector = TermVector({"a": 0, "b": 2})
    assert "a" not in vector
    assert len(vector) == 1


def test_negative_frequency_rejected():
    with pytest.raises(ValueError):
        TermVector({"a": -1})


def test_empty_vector_properties():
    assert EMPTY_VECTOR.norm == 0.0
    assert EMPTY_VECTOR.length == 0
    assert not EMPTY_VECTOR
    assert cosine_similarity(EMPTY_VECTOR, TermVector({"a": 1})) == 0.0


def test_cosine_identical_vectors_is_one():
    vector = TermVector({"a": 2, "b": 1})
    assert cosine_similarity(vector, vector) == pytest.approx(1.0)


def test_cosine_orthogonal_vectors_is_zero():
    assert cosine_similarity(TermVector({"a": 1}), TermVector({"b": 1})) == 0.0


def test_cosine_known_value():
    a = TermVector({"x": 1, "y": 1})
    b = TermVector({"y": 1, "z": 1})
    assert cosine_similarity(a, b) == pytest.approx(0.5)


def test_dissimilarity_complements_cosine():
    a = TermVector({"x": 2, "y": 1})
    b = TermVector({"y": 3})
    assert dissimilarity(a, b) == pytest.approx(1.0 - cosine_similarity(a, b))


def test_unit_weight():
    vector = TermVector({"a": 3, "b": 4})
    assert vector.unit_weight("a") == pytest.approx(0.6)
    assert vector.unit_weight("missing") == 0.0
    assert EMPTY_VECTOR.unit_weight("a") == 0.0


def test_equality_and_hash():
    a = TermVector({"a": 1, "b": 2})
    b = TermVector.from_tokens(["b", "a", "b"])
    assert a == b
    assert hash(a) == hash(b)
    assert a != TermVector({"a": 1})


def test_dot_symmetric_iteration():
    a = TermVector({"a": 2})
    b = TermVector({"a": 3, "b": 1, "c": 4})
    assert a.dot(b) == b.dot(a) == 6.0


@given(token_lists, token_lists)
def test_cosine_symmetric(tokens_a, tokens_b):
    a = TermVector.from_tokens(tokens_a)
    b = TermVector.from_tokens(tokens_b)
    assert cosine_similarity(a, b) == pytest.approx(cosine_similarity(b, a))


@given(token_lists, token_lists)
def test_cosine_bounded(tokens_a, tokens_b):
    a = TermVector.from_tokens(tokens_a)
    b = TermVector.from_tokens(tokens_b)
    value = cosine_similarity(a, b)
    assert -1e-12 <= value <= 1.0 + 1e-12


@given(token_lists)
def test_cosine_self_similarity(tokens):
    vector = TermVector.from_tokens(tokens)
    if vector:
        assert cosine_similarity(vector, vector) == pytest.approx(1.0)


@given(token_lists, token_lists)
def test_angular_similarity_bounded(tokens_a, tokens_b):
    a = TermVector.from_tokens(tokens_a)
    b = TermVector.from_tokens(tokens_b)
    value = angular_similarity(a, b)
    assert 0.0 <= value <= 1.0


@given(token_lists, token_lists, token_lists)
def test_angular_distance_triangle_inequality(ta, tb, tc):
    """Angular distance is a metric — the property DisC relies on."""
    a = TermVector.from_tokens(ta)
    b = TermVector.from_tokens(tb)
    c = TermVector.from_tokens(tc)
    ab = angular_distance(a, b)
    bc = angular_distance(b, c)
    ac = angular_distance(a, c)
    assert ac <= ab + bc + 1e-9


def test_angular_similarity_identical():
    vector = TermVector({"a": 1, "b": 2})
    assert angular_similarity(vector, vector) == pytest.approx(1.0)


def test_angular_similarity_orthogonal():
    a = TermVector({"a": 1})
    b = TermVector({"b": 1})
    assert angular_similarity(a, b) == pytest.approx(0.5)


def test_repr_contains_terms():
    assert "a" in repr(TermVector({"a": 1}))
